#!/usr/bin/env python
"""Routing a mixed ECL/TTL board with tesselation separation (Section 10.2).

The board's left half carries ECL logic, the right half TTL (the designer
"can arrange the chips of one or other technology in a compact area").
Each signal layer is tesselated accordingly and the board is routed as two
superimposed problems with fill/unfill passes.

Run:  python examples/mixed_ecl_ttl.py
"""

from repro import LogicFamily
from repro.analysis import format_table
from repro.channels import RoutingWorkspace
from repro.extensions import route_mixed, split_tesselation
from repro.stringer import Stringer
from repro.workloads import BoardSpec, generate_board
from repro.workloads.netlist_gen import NetlistSpec


def main() -> None:
    split_column = 20
    spec = BoardSpec(
        name="mixed_ecl_ttl",
        via_nx=40,
        via_ny=40,
        n_signal_layers=4,
        netlist=NetlistSpec(
            net_fraction=0.8,
            mean_fanout=2.0,
            locality=0.9,
            local_radius=8,
            family_split_column=split_column,
            seed=3,
        ),
        seed=3,
    )
    board = generate_board(spec)
    connections = Stringer(board).string_all()
    by_family = {
        family: [c for c in connections if c.family is family]
        for family in LogicFamily
    }
    print(
        f"{len(connections)} connections: "
        f"{len(by_family[LogicFamily.ECL])} ECL, "
        f"{len(by_family[LogicFamily.TTL])} TTL"
    )

    tesselation = split_tesselation(board, split_column)
    workspace = RoutingWorkspace(board)
    result = route_mixed(board, connections, tesselation, workspace=workspace)

    rows = []
    for family, family_result in result.by_family.items():
        summary = family_result.summary()
        rows.append(
            {
                "family": family.value,
                "conn": summary["connections"],
                "routed": summary["routed"],
                "pct_lee": summary["percent_lee"],
                "rip_ups": summary["rip_ups"],
                "vias": summary["vias_per_conn"],
            }
        )
    print(format_table(rows, title="\nper-family routing passes"))
    print(f"\ncomplete: {result.complete}")

    # Demonstrate the separation guarantee: no routed segment of one
    # family crosses into the other family's tiles.
    split_gx = split_column * board.grid.grid_per_via
    by_id = {c.conn_id: c for c in connections}
    violations = 0
    for conn_id, record in workspace.records.items():
        family = by_id[conn_id].family
        for layer_index, channel, lo, hi in record.segments:
            layer = workspace.layers[layer_index]
            for coord in (lo, hi):
                point = layer.cc_point(channel, coord)
                in_ecl_half = point.gx < split_gx
                if in_ecl_half != (family is LogicFamily.ECL):
                    violations += 1
    print(f"tile violations: {violations}")


if __name__ == "__main__":
    main()
