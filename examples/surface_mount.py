#!/usr/bin/env python
"""Surface-mount parts via dispersion patterns (Section 11).

The paper's grid model assumes through-hole pins on the via grid; SMD pads
sit off-grid and connect only to the top layer.  grr handled them with "a
hand-designed dispersion pattern ... to connect the pads to a regular
array of vias by traces lying only on the top surface.  The router was
told to consider the vias as the end points of the connections."  This
example automates that pattern and routes through it.

Run:  python examples/surface_mount.py
"""

from repro import Board, Connection, GreedyRouter, PinRole
from repro.channels import RoutingWorkspace
from repro.extensions import PadSpec, disperse_pads
from repro.grid.coords import GridPoint
from repro.viz import render_layer


def main() -> None:
    board = Board.create(
        via_nx=24, via_ny=18, n_signal_layers=4, name="smd"
    )
    workspace = RoutingWorkspace(board)

    # An SMD package with 4 pads at off-grid positions (fine pad pitch)
    # on the left, and a second one on the right.
    left_pads = [
        PadSpec(GridPoint(7, 20 + 2 * i), PinRole.OUTPUT if i == 0 else PinRole.UNUSED)
        for i in range(4)
    ]
    right_pads = [
        PadSpec(GridPoint(58, 20 + 2 * i), PinRole.INPUT)
        for i in range(4)
    ]

    left = disperse_pads(board, workspace, left_pads, part_name="u1")
    right = disperse_pads(board, workspace, right_pads, part_name="u2")
    print("dispersion pattern:")
    for d in left + right:
        print(
            f"  pad {tuple(d.pad.position)} -> via {tuple(d.via)} "
            f"({d.trace_cells} top-layer cells)"
        )

    # Wire each left pad's via to the matching right pad's via.
    connections = []
    for i, (a, b) in enumerate(zip(left, right)):
        net = board.add_net([a.pin.pin_id, b.pin.pin_id], name=f"s{i}")
        connections.append(
            Connection(
                i, net.net_id, a.pin.pin_id, b.pin.pin_id, a.via, b.via
            )
        )
    result = GreedyRouter(board, workspace=workspace).route(connections)
    print(
        f"\nrouted {result.routed_count}/{result.total_count} connections "
        f"between dispersed endpoints"
    )

    from repro.grid.geometry import Box

    print("\ntop layer around the left part:")
    print(render_layer(workspace, 0, Box(0, 14, 30, 30)))


if __name__ == "__main__":
    main()
