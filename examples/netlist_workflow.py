#!/usr/bin/env python
"""File-based workflow: board file -> stringer -> router -> route dump.

The real grr consumed stringer output files and produced a wiring
database; this example exercises the equivalent text formats end to end,
including reloading a solution into a fresh workspace (e.g. for a
post-processing or verification step in a larger CAD flow).

Run:  python examples/netlist_workflow.py [work_dir]
"""

import sys
from pathlib import Path

from repro import GreedyRouter
from repro.channels import RoutingWorkspace
from repro.io import (
    load_routes,
    read_board,
    read_connections,
    save_route_dump,
    write_board,
    write_connections,
)
from repro.stringer import Stringer
from repro.workloads import BoardSpec, generate_board


def main(work_dir: str = ".") -> None:
    work = Path(work_dir)
    board_file = work / "demo.board"
    conn_file = work / "demo.conns"
    route_file = work / "demo.routes"

    # 1. A placement tool writes the board description.
    board = generate_board(BoardSpec(name="demo", via_nx=36, via_ny=36, seed=6))
    with open(board_file, "w") as f:
        write_board(board, f)
    print(f"wrote {board_file} ({len(board.parts)} parts, "
          f"{len(board.nets)} nets)")

    # 2. The stringer reads it back and writes the connection list.
    with open(board_file) as f:
        board = read_board(f)
    connections = Stringer(board).string_all()
    with open(conn_file, "w") as f:
        write_connections(connections, f)
    print(f"wrote {conn_file} ({len(connections)} connections)")

    # 3. The router consumes the connection list and dumps the solution.
    with open(conn_file) as f:
        connections = read_connections(f)
    router = GreedyRouter(board)
    result = router.route(connections)
    print(f"routed {result.routed_count}/{result.total_count} "
          f"({result.summary()['cpu_seconds']}s)")
    with open(route_file, "w") as f:
        save_route_dump(router.workspace, f)
    print(f"wrote {route_file}")

    # 4. A downstream tool (photoplot postprocessor, verifier, ...)
    #    reloads the exact wiring into a fresh workspace.
    fresh = RoutingWorkspace(board)
    with open(route_file) as f:
        restored = load_routes(fresh, f)
    assert fresh.used_cells() == router.workspace.used_cells()
    print(f"reloaded {len(restored)} routes; occupancy matches exactly")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".")
