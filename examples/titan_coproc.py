#!/usr/bin/env python
"""The full grr flow on a Titan-coprocessor-style board (paper Appendix).

Generates a scaled synthetic stand-in for the coproc board of Table 1,
strings its nets, routes it, prints the Table 1 row, generates a ground
plane, and writes the Figure 20/21/22 renderings as PPM files.

Run:  python examples/titan_coproc.py [out_dir]
"""

import sys

from repro import GreedyRouter
from repro.analysis import format_table, table1_row
from repro.extensions import generate_power_plane
from repro.extensions.power_plane import FeatureKind
from repro.stringer import Stringer
from repro.viz import render_power_plane, render_problem, render_signal_layer
from repro.workloads import TITAN_CONFIGS, make_titan_board


def main(out_dir: str = ".") -> None:
    config = TITAN_CONFIGS["coproc"]
    print("generating coproc-style board (scale 0.30)...")
    board = make_titan_board("coproc", scale=0.30, seed=1)
    print(
        f"  {board.grid.via_nx}x{board.grid.via_ny} via sites, "
        f"{len(board.parts)} parts, {len(board.pins)} pins, "
        f"{len(board.signal_nets)} signal nets"
    )

    print("stringing (Section 3)...")
    connections = Stringer(board).string_all()
    print(f"  {len(connections)} pin-to-pin connections")

    print("routing (Sections 6-8)...")
    router = GreedyRouter(board)
    result = router.route(connections)
    row = table1_row(board, connections, result)
    paper = config.paper
    print(
        format_table(
            [
                {
                    "source": "paper (full scale)",
                    "layers": paper.layers,
                    "conn": paper.connections,
                    "pct_lee": paper.percent_lee,
                    "rip_ups": paper.rip_ups,
                    "vias": paper.vias_per_conn,
                },
                {
                    "source": "this run (scaled)",
                    "layers": row["layers"],
                    "conn": row["conn"],
                    "pct_lee": row["pct_lee"],
                    "rip_ups": row["rip_ups"],
                    "vias": row["vias"],
                },
            ],
            title="\ncoproc: paper vs reproduction",
        )
    )

    print("\ngenerating ground plane (Appendix)...")
    gnd = board.power_nets[0]
    pattern = generate_power_plane(board, router.workspace, gnd.net_id)
    print(
        f"  {pattern.count(FeatureKind.CLEARANCE)} clearance disks, "
        f"{pattern.count(FeatureKind.THERMAL_RELIEF)} thermal reliefs"
    )

    print("rendering Figures 20/21/22...")
    render_problem(board, connections, path=f"{out_dir}/figure20_problem.ppm")
    render_signal_layer(
        board, router.workspace, 0, path=f"{out_dir}/figure21_layer.ppm"
    )
    render_power_plane(
        board, pattern, path=f"{out_dir}/figure22_plane.ppm"
    )
    print(f"  wrote figure2{{0,1,2}}_*.ppm to {out_dir}/")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".")
