#!/usr/bin/env python
"""The full production flow: route, analyse, improve, verify, profile.

This is the flow a board designer would actually run: route the board,
look at the congestion statistics and CPU profile (the Section 12
development tools), clean up the worst detours, and prove the result
correct with the independent DRC and connectivity checkers.

Run:  python examples/production_flow.py [out_dir]
"""

import sys

from repro import GreedyRouter
from repro.analysis import (
    format_table,
    hotspots,
    percent_chan,
    render_congestion,
    wire_length_stats,
)
from repro.core.improve import improve_routes
from repro.stringer import Stringer
from repro.verify import check_connectivity, run_drc
from repro.workloads import make_titan_board


def main(out_dir: str = ".") -> None:
    board = make_titan_board("nmc_4l", scale=0.30, seed=1)
    connections = Stringer(board).string_all()
    print(
        f"board {board.name}: {len(connections)} connections, "
        f"%chan {percent_chan(board, connections):.1f}"
    )

    # 1. Route.
    router = GreedyRouter(board)
    result = router.route(connections)
    print(f"routed {result.routed_count}/{result.total_count} "
          f"in {result.cpu_seconds:.2f}s")

    # 2. Analyse (Section 12: statistical measures + CPU profile).
    print(format_table(router.profile.rows(), title="\nCPU profile:"))
    stats = wire_length_stats(router.workspace, connections)
    print(
        f"\nwire: {stats['total_wire']} cells for a Manhattan bound of "
        f"{stats['total_manhattan']} (mean detour {stats['mean_detour']:.3f},"
        f" worst {stats['max_detour']:.2f})"
    )
    print("hottest channels:")
    for spot in hotspots(router.workspace, top_n=5):
        print(
            f"  layer {spot.layer_index} channel {spot.channel_index}: "
            f"{spot.occupancy:.0%} occupied"
        )
    render_congestion(
        board, router.workspace, path=f"{out_dir}/congestion.ppm"
    )
    print(f"wrote {out_dir}/congestion.ppm")

    # 3. Improve: re-route the worst detours on the finished board.
    improvement = improve_routes(router, connections, detour_threshold=1.3)
    print(
        f"\nimprovement pass: {improvement.attempted} attempted, "
        f"{improvement.improved} improved, "
        f"{improvement.wire_saved} cells of wire removed"
    )

    # 4. Verify: independent DRC + net connectivity.
    drc = run_drc(board, router.workspace)
    connectivity = check_connectivity(board, router.workspace, connections)
    print(
        f"\nDRC: {len(drc.errors)} errors, {len(drc.warnings)} warnings; "
        f"connectivity: "
        f"{sum(1 for n in connectivity.nets if n.connected)}/"
        f"{len(connectivity.nets)} nets connected"
    )
    verdict = drc.clean and connectivity.fully_connected
    print("VERDICT:", "PASS" if verdict else "FAIL")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".")
