#!/usr/bin/env python
"""Routing a backplane: connector slots and multi-drop buses.

The Titan's thirteen boards include a 15x15 inch backplane (Section 9).
Backplane wiring is dominated by buses that visit every slot in order —
after stringing, each bus becomes a chain of identical slot-to-slot hops,
which compete for the same channels and exercise the channel model's
"irregular crossing connections" trade-off (Section 11).

Run:  python examples/backplane_bus.py [out_dir]
"""

import sys

from repro import GreedyRouter
from repro.analysis import (
    format_table,
    hotspots,
    percent_chan,
    table1_row,
)
from repro.stringer import Stringer
from repro.verify import check_connectivity, run_drc
from repro.viz import render_problem, render_signal_layer
from repro.workloads import BackplaneSpec, generate_backplane


def main(out_dir: str = ".") -> None:
    spec = BackplaneSpec(
        n_slots=6, pin_rows=24, bus_width=12, n_point_to_point=20, seed=2
    )
    board = generate_backplane(spec)
    slots = [p for p in board.parts if p.name.startswith("slot")]
    buses = [n for n in board.signal_nets if n.name.startswith("bus")]
    print(
        f"backplane: {len(slots)} slots, {len(buses)} bus nets, "
        f"{len(board.signal_nets) - len(buses)} other nets"
    )

    connections = Stringer(board).string_all()
    bus_hops = [
        c for c in connections if board.nets[c.net_id].name.startswith("bus")
    ]
    print(
        f"{len(connections)} connections after stringing "
        f"({len(bus_hops)} of them bus hops); "
        f"%chan {percent_chan(board, connections):.1f}"
    )

    router = GreedyRouter(board)
    result = router.route(connections)
    print(format_table([table1_row(board, connections, result)]))

    print("\nhot channels (bus corridors):")
    for spot in hotspots(router.workspace, top_n=5):
        print(
            f"  layer {spot.layer_index} channel {spot.channel_index}: "
            f"{spot.occupancy:.0%}"
        )

    drc = run_drc(board, router.workspace)
    connectivity = check_connectivity(board, router.workspace, connections)
    buses_ok = all(
        n.connected and n.is_chain
        for n in connectivity.nets
        if n.name.startswith("bus")
    )
    print(
        f"\nverify: DRC {'clean' if drc.clean else 'ERRORS'}; "
        f"buses {'all connected as chains' if buses_ok else 'BROKEN'}"
    )

    render_problem(board, connections, path=f"{out_dir}/backplane_problem.ppm")
    render_signal_layer(
        board, router.workspace, 0, path=f"{out_dir}/backplane_layer0.ppm"
    )
    print(f"wrote {out_dir}/backplane_{{problem,layer0}}.ppm")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".")
