#!/usr/bin/env python
"""Clock-tree delay matching by length tuning (Section 10.1, Figure 16).

A buffer fans a clock out to four registers at different distances.  The
raw routes have unequal delays; length tuning stretches the short branches
until every register sees the clock within a 100 ps window — "length tuning
can be used to adjust propagation delays to accuracies of a few hundred
picoseconds".

Run:  python examples/clock_tree_tuning.py
"""

from repro import (
    Board,
    Connection,
    GreedyRouter,
    PinRole,
    ViaPoint,
    sip_package,
)
from repro.extensions import route_delay_ns, tune_connection


def main() -> None:
    board = Board.create(
        via_nx=50, via_ny=40, n_signal_layers=4, name="clock_tree"
    )

    # One buffer output pin, four register clock inputs at varied radii.
    buffer_pin = board.add_part(
        sip_package(1), ViaPoint(25, 20), roles=[PinRole.OUTPUT], name="buf"
    ).pins[0]
    register_positions = [
        ViaPoint(40, 20),  # near
        ViaPoint(10, 22),  # medium
        ViaPoint(25, 35),  # medium
        ViaPoint(44, 36),  # far
    ]
    register_pins = [
        board.add_part(
            sip_package(1), pos, roles=[PinRole.INPUT], name=f"reg{i}"
        ).pins[0]
        for i, pos in enumerate(register_positions)
    ]

    # One clock net over all five pins, hand-strung as a star: the router
    # only ever sees pin-to-pin connections (Section 3), so tree topologies
    # are just a different stringing.
    net = board.add_net(
        [buffer_pin.pin_id] + [r.pin_id for r in register_pins], name="clk"
    )
    connections = [
        Connection(
            i, net.net_id, buffer_pin.pin_id, reg.pin_id,
            buffer_pin.position, reg.position,
        )
        for i, reg in enumerate(register_pins)
    ]

    router = GreedyRouter(board)
    result = router.route(connections)
    assert result.complete, result.failed

    delays = {
        c.conn_id: route_delay_ns(board, router.workspace.records[c.conn_id])
        for c in connections
    }
    print("raw branch delays (ns):")
    for conn_id, delay in sorted(delays.items()):
        print(f"  clk{conn_id}: {delay:.3f}")

    # Match everything to the slowest branch (plus margin).
    target = max(delays.values()) + 0.05
    print(f"\ntuning every branch to {target:.3f} ns (+/- 50 ps)...")
    for conn in connections:
        tuning = tune_connection(
            router.workspace, board, conn,
            target_ns=target, tolerance_ns=0.05,
        )
        print(
            f"  clk{conn.conn_id}: {delays[conn.conn_id]:.3f} -> "
            f"{tuning.achieved_ns:.3f} ns "
            f"({tuning.detours_added} detours, "
            f"{'ok' if tuning.success else 'FAILED: ' + tuning.reason})"
        )

    final = [
        route_delay_ns(board, router.workspace.records[c.conn_id])
        for c in connections
    ]
    skew_ps = (max(final) - min(final)) * 1000
    print(f"\nfinal clock skew: {skew_ps:.0f} ps")


if __name__ == "__main__":
    main()
