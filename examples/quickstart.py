#!/usr/bin/env python
"""Quickstart: build a small board by hand, route it, inspect the result.

Run:  python examples/quickstart.py
"""

from repro import (
    Board,
    Connection,
    GreedyRouter,
    PinRole,
    RouterConfig,
    ViaPoint,
    sip_package,
)
from repro.viz import render_layer


def main() -> None:
    # A 20x15 via-site board (2.0in x 1.5in at 100-mil pitch) with four
    # signal layers (H/V/H/V) and the paper's Figure 1 process rules.
    board = Board.create(
        via_nx=20, via_ny=15, n_signal_layers=4, name="quickstart"
    )

    # Place four single-pin parts and wire them as two nets.  (Real flows
    # use repro.workloads to generate placements and repro.stringer to
    # turn nets into pin-to-pin connections; here we do it by hand.)
    pins = []
    for (x, y), role in [
        ((2, 3), PinRole.OUTPUT),
        ((15, 10), PinRole.INPUT),
        ((3, 12), PinRole.OUTPUT),
        ((16, 2), PinRole.INPUT),
    ]:
        part = board.add_part(sip_package(1), ViaPoint(x, y), roles=[role])
        pins.append(part.pins[0])
    net_a = board.add_net([pins[0].pin_id, pins[1].pin_id], name="sig_a")
    net_b = board.add_net([pins[2].pin_id, pins[3].pin_id], name="sig_b")

    connections = [
        Connection(0, net_a.net_id, pins[0].pin_id, pins[1].pin_id,
                   pins[0].position, pins[1].position),
        Connection(1, net_b.net_id, pins[2].pin_id, pins[3].pin_id,
                   pins[2].position, pins[3].position),
    ]

    # Route with the paper's defaults: radius 1, distance*hops cost,
    # easiest connections first.
    router = GreedyRouter(board, RouterConfig(radius=1))
    result = router.route(connections)

    print(f"routed {result.routed_count}/{result.total_count} connections")
    print(f"strategies: {result.summary()}")
    for conn_id, record in sorted(router.workspace.records.items()):
        hops = " -> ".join(
            f"L{link.layer_index}[{tuple(link.a)}..{tuple(link.b)}]"
            for link in record.links
        )
        print(f"  connection {conn_id}: {hops} vias={record.vias}")

    print("\nlayer 0 (horizontal):")
    print(render_layer(router.workspace, 0))


if __name__ == "__main__":
    main()
