"""Shared GitHub Actions step-summary helper for the perf benchmarks.

Every perf-smoke benchmark reports its gate results (board, measured
value, gate, pass/fail) as a markdown table appended to the file named
by ``$GITHUB_STEP_SUMMARY`` — the runner renders it on the workflow
run page, so a gate failure is readable without digging through logs.

Outside Actions (no ``GITHUB_STEP_SUMMARY`` in the environment) every
call is a silent no-op, so benchmarks behave identically when run by
hand.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Sequence


def gate_mark(ok: bool) -> str:
    """The pass/fail cell: a rendered check or cross."""
    return "✅ pass" if ok else "❌ FAIL"


def append_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    note: Optional[str] = None,
) -> bool:
    """Append one titled markdown table to the step summary.

    Returns True when a summary was written (i.e. running under
    Actions), False when skipped.
    """
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return False
    lines = [f"### {title}", ""]
    lines.append("| " + " | ".join(str(h) for h in headers) + " |")
    lines.append("|" + "---|" * len(headers))
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    if note:
        lines.extend(["", note])
    lines.append("")
    with open(path, "a") as f:
        f.write("\n".join(lines) + "\n")
    return True
