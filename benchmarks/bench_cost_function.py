"""E4 — Section 8.2 Modification 3: the three wavefront cost functions.

Paper: ``cost = cost + 1`` (unit) guarantees minimum vias but "the
algorithm ensures that before any path of length n is examined, all paths
of length n-1 have been examined" — n-via solutions only after every
(n-1)-via solution; ``distance(n, b)`` concentrates effort towards the
target but "can lead to solutions that use many vias to circumvent minor
obstacles"; the shipped compromise is ``distance(n, b) * hops(n, a)``.

Cost functions only differentiate on searches that need several hops, so
the workload is a set of maze boards: walls with offset holes between the
two pins force 3-6-via routes.  Measured: wavefront expansions (search
effort) and vias in the found route (solution quality).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.board.board import Board
from repro.board.nets import Connection
from repro.board.parts import PinRole, sip_package
from repro.channels.workspace import RoutingWorkspace
from repro.core.cost import COST_FUNCTIONS
from repro.core.lee import lee_route
from repro.grid.coords import ViaPoint
from repro.grid.geometry import Box

COSTS = ["unit", "distance", "distance_hops"]
VIA_N = 26
WALLS = [7, 13, 19]
#: Hole via-row per wall, per scenario (offset so the route must zigzag).
SCENARIOS = [
    {7: 4, 13: 21, 19: 6},
    {7: 22, 13: 3, 19: 20},
    {7: 12, 13: 2, 19: 23},
    {7: 20, 13: 11, 19: 2},
]
_stats = {}


def _maze(scenario):
    """Two pins separated by three walls with one hole each."""
    board = Board.create(
        via_nx=VIA_N, via_ny=VIA_N, n_signal_layers=2, name="maze"
    )
    pin_a = board.add_part(
        sip_package(1), ViaPoint(2, 12), roles=[PinRole.OUTPUT]
    ).pins[0]
    pin_b = board.add_part(
        sip_package(1), ViaPoint(23, 12), roles=[PinRole.INPUT]
    ).pins[0]
    board.add_net([pin_a.pin_id, pin_b.pin_id])
    conn = Connection(
        0, 0, pin_a.pin_id, pin_b.pin_id, pin_a.position, pin_b.position
    )
    ws = RoutingWorkspace(board)
    g = board.grid.grid_per_via
    for wall_vx, hole_vy in scenario.items():
        gx = wall_vx * g
        hole_lo = hole_vy * g - 1
        hole_hi = hole_vy * g + 1
        for layer_index in range(ws.n_layers):
            if hole_lo > 0:
                ws.fill_free_space(
                    layer_index, Box(gx, 0, gx, hole_lo - 1)
                )
            ws.fill_free_space(
                layer_index, Box(gx, hole_hi + 1, gx, board.grid.ny - 1)
            )
    return ws, conn


def _run(cost_name):
    expansions = 0
    vias = 0
    routed = 0
    for scenario in SCENARIOS:
        ws, conn = _maze(scenario)
        passable = frozenset(
            (conn.conn_id, -(conn.pin_a + 1), -(conn.pin_b + 1))
        )
        result = lee_route(
            ws,
            conn,
            passable=passable,
            cost_fn=COST_FUNCTIONS[cost_name],
            max_expansions=20000,
        )
        if result.routed:
            routed += 1
            vias += result.record.via_count
        expansions += result.expansions
    return routed, expansions, vias


@pytest.mark.parametrize("cost", COSTS)
def test_cost_function(cost, benchmark, record):
    routed, expansions, vias = benchmark.pedantic(
        lambda: _run(cost), rounds=1, iterations=1
    )
    _stats[cost] = {
        "routed": routed,
        "expansions": expansions,
        "vias": vias,
        "seconds": benchmark.stats.stats.mean,
    }
    if cost == COSTS[-1]:
        _report(record)


def _report(record):
    rows = [
        {
            "cost": cost,
            "routed": s["routed"],
            "expansions": s["expansions"],
            "total_vias": s["vias"],
            "cpu_s": round(s["seconds"], 3),
        }
        for cost, s in _stats.items()
    ]
    record(
        "cost_function",
        format_table(
            rows,
            title=f"E4: Lee cost functions over {len(SCENARIOS)} maze "
            "scenarios (paper: unit = min vias, slow; distance = "
            "goal-greedy; distance*hops = shipped compromise)",
        ),
    )
    unit = _stats["unit"]
    dist = _stats["distance"]
    comp = _stats["distance_hops"]
    assert unit["routed"] == dist["routed"] == comp["routed"] == len(SCENARIOS)
    # The breadth-first guarantee costs a much wider search.
    assert unit["expansions"] > 1.5 * comp["expansions"]
    assert unit["expansions"] > 2 * dist["expansions"]
    # The goal-greedy function circumvents obstacles with extra vias.
    assert dist["vias"] >= comp["vias"]
    # ...in exchange for the fewest vias (small tolerance: bidirectional
    # meeting can add one via over the true optimum).
    assert unit["vias"] <= comp["vias"] + len(SCENARIOS)
    assert unit["vias"] <= dist["vias"] + len(SCENARIOS)
