"""E2 — Section 6 connection sorting: easiest-first vs input order.

Paper: "Attempting the connections in the correct order can make the
difference between success and failure."  Sorted routing should complete
with less desperation (fewer Lee routes and rip-ups) than unsorted routing
of the same problem.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core.router import GreedyRouter, RouterConfig
from repro.stringer import Stringer
from repro.workloads import make_titan_board

NAME, SCALE, SEED = "nmc_4l", 0.30, 1
_results = {}


def _route(sort: bool):
    board = make_titan_board(NAME, scale=SCALE, seed=SEED)
    connections = Stringer(board).string_all()
    # Shuffle the input so "unsorted" is genuinely arbitrary order, not
    # the stringer's net-by-net order (which is already benign).
    import random

    rng = random.Random(99)
    shuffled = list(connections)
    rng.shuffle(shuffled)
    router = GreedyRouter(board, RouterConfig(sort=sort))
    return router.route(shuffled)


@pytest.mark.parametrize("sort", [True, False], ids=["sorted", "unsorted"])
def test_sorting(sort, benchmark, record):
    result = benchmark.pedantic(lambda: _route(sort), rounds=1, iterations=1)
    _results[sort] = result
    if not sort:
        _report(record)


def _report(record):
    rows = [
        {
            "order": "sorted (min/max keys)" if sort else "shuffled input",
            "routed": result.routed_count,
            "total": result.total_count,
            "pct_lee": round(result.percent_lee, 1),
            "rip_ups": result.rip_up_count,
            "lee_expansions": result.lee_expansions,
            "vias": round(result.vias_per_connection, 2),
            "cpu_s": round(result.cpu_seconds, 2),
        }
        for sort, result in sorted(_results.items(), reverse=True)
    ]
    record(
        "sorting",
        format_table(
            rows, title="E2: connection sorting on vs off (Section 6)"
        ),
    )
    ordered, shuffled = _results[True], _results[False]
    assert ordered.complete
    # Sorting must not lose, and should reduce desperation measures.
    assert ordered.completion_rate >= shuffled.completion_rate
    ordered_effort = ordered.rip_up_count + ordered.lee_expansions
    shuffled_effort = shuffled.rip_up_count + shuffled.lee_expansions
    assert ordered_effort <= shuffled_effort
