"""P1 — Parallel wave routing: serial-vs-parallel wall time and parity.

Runs the Table 1 suite (parity: with a fixed seed the parallel router
must complete exactly the set of connections the serial router does, for
every worker count) plus large locality-heavy boards (timing: the wave
phase should approach the core count on hardware that has the cores).

Results land in ``BENCH_parallel.json`` so CI can upload the perf
trajectory from PR 1 onward.  Parity failures always exit non-zero;
the wall-clock speedup assertion is opt-in (``--assert-speedup``)
because it is meaningless on single-core runners — the JSON records the
measured speedup and the core count either way.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py --smoke
    PYTHONPATH=src python benchmarks/bench_parallel.py --out BENCH_parallel.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

try:
    import repro  # noqa: F401 - probe whether src/ is importable
except ImportError:  # direct script run without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.board.board import Board
from repro.board.nets import Connection
from repro.core.router import GreedyRouter, RouterConfig, make_router
from repro.stringer import Stringer
from repro.workloads import (
    TITAN_CONFIGS,
    BoardSpec,
    NetlistSpec,
    generate_board,
    make_titan_board,
)

#: Scale of the Table 1 parity suite (matches bench_table1.py).
SUITE_SCALE = 0.30

#: Worker counts the parity criterion quantifies over.
WORKER_COUNTS = (1, 2, 4)


def _titan_problem(name: str, scale: float) -> Callable:
    def build() -> Tuple[Board, List[Connection]]:
        board = make_titan_board(name, scale=scale, seed=1)
        return board, Stringer(board).string_all()

    return build


def _local_problem(name: str, via_n: int, radius: int) -> Callable:
    spec = BoardSpec(
        name=name,
        via_nx=via_n,
        via_ny=via_n,
        n_signal_layers=6,
        netlist=NetlistSpec(locality=0.9, local_radius=radius, seed=7),
        seed=7,
    )

    def build() -> Tuple[Board, List[Connection]]:
        board = generate_board(spec)
        return board, Stringer(board).string_all()

    return build


def suite_boards(smoke: bool) -> List[Tuple[str, Callable]]:
    """(name, problem-builder) pairs; the last entry is the largest."""
    boards = [
        (name, _titan_problem(name, SUITE_SCALE)) for name in TITAN_CONFIGS
    ]
    boards.append(("wavelocal_120", _local_problem("wavelocal", 120, 10)))
    if not smoke:
        boards.append(("wavelocal_200", _local_problem("wavelocal", 200, 12)))
    return boards


def run_board(
    name: str, build: Callable, worker_counts: Sequence[int]
) -> Dict:
    """Serial-vs-parallel comparison for one board."""
    board, connections = build()
    started = time.perf_counter()
    serial_result = GreedyRouter(board).route(connections)
    serial_seconds = time.perf_counter() - started
    serial_completed = set(serial_result.routed_by)
    row: Dict = {
        "board": name,
        "connections": len(connections),
        "serial": {
            "seconds": round(serial_seconds, 3),
            "routed": len(serial_completed),
            "complete": serial_result.complete,
        },
        "parallel": {},
    }
    for workers in worker_counts:
        board_n, connections_n = build()
        router = make_router(board_n, RouterConfig(workers=workers))
        started = time.perf_counter()
        result = router.route(connections_n)
        seconds = time.perf_counter() - started
        completed = set(result.routed_by)
        row["parallel"][str(workers)] = {
            "seconds": round(seconds, 3),
            "routed": len(completed),
            "complete": result.complete,
            "waves": result.waves,
            "demoted": result.demoted,
            "fallback_serial": result.fallback_serial,
            "parity": completed == serial_completed,
            "speedup": round(serial_seconds / seconds, 3)
            if seconds > 0
            else None,
        }
    return row


def run_benchmark(
    smoke: bool = False,
    worker_counts: Sequence[int] = WORKER_COUNTS,
) -> Dict:
    """The whole benchmark; returns the JSON-ready report dict."""
    rows = []
    for name, build in suite_boards(smoke):
        row = run_board(name, build, worker_counts)
        serial = row["serial"]
        status = " ".join(
            f"x{w}={p['seconds']}s"
            f"{'' if p['parity'] else ' PARITY-MISMATCH'}"
            for w, p in row["parallel"].items()
        )
        print(
            f"{name:14s} conns={row['connections']:5d} "
            f"serial={serial['seconds']}s {status}",
            flush=True,
        )
        rows.append(row)
    largest = rows[-1]
    top_workers = str(max(worker_counts))
    parity_all = all(
        p["parity"] for row in rows for p in row["parallel"].values()
    )
    speedup = largest["parallel"][top_workers]["speedup"]
    return {
        "experiment": "parallel_wave_routing",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "affinity_count": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count(),
        "suite_scale": SUITE_SCALE,
        "worker_counts": list(worker_counts),
        "boards": rows,
        "summary": {
            "parity_all": parity_all,
            "largest_board": largest["board"],
            "largest_serial_seconds": largest["serial"]["seconds"],
            "largest_speedup_at_max_workers": speedup,
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small boards only (the CI perf-smoke configuration)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_parallel.json",
        help="artifact path (default: BENCH_parallel.json)",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless the largest board shows >= X speedup at the "
        "highest worker count (only meaningful on multi-core hosts)",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(smoke=args.smoke)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    summary = report["summary"]
    print(
        f"wrote {args.out}: largest={summary['largest_board']} "
        f"speedup={summary['largest_speedup_at_max_workers']} "
        f"parity_all={summary['parity_all']} "
        f"(cores available: {report['affinity_count']})"
    )
    if not summary["parity_all"]:
        print("FAIL: parallel/serial completion parity broken", file=sys.stderr)
        return 1
    if args.assert_speedup is not None:
        measured = summary["largest_speedup_at_max_workers"]
        if measured is None or measured < args.assert_speedup:
            print(
                f"FAIL: speedup {measured} < {args.assert_speedup}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
