"""P1/P5 — Parallel wave routing: wall time, parity, and pool telemetry.

Runs the Table 1 suite (parity: with a fixed seed the parallel router
must complete exactly the set of connections the serial router does, for
every worker count) plus large locality-heavy boards (timing: the wave
phase should approach the core count on hardware that has the cores).

Since PR 5 the parallel router runs a persistent worker pool with
incremental delta sync and auto-serials boards too small to pay for it,
so every parallel leg also records the pool's phase breakdown
(``pool_spawn`` / ``wave`` / ``merge`` / ``delta_sync`` / ``residue``),
its byte counters (snapshot and delta payloads), and the size
heuristic's verdict.  The largest board gets one extra forced-pool leg
(``pool_auto_serial=False``) so the breakdown is populated even on
hosts where the heuristic auto-serials everything.

Results land in ``BENCH_parallel.json`` so CI can upload the perf
trajectory from PR 1 onward.  Parity failures always exit non-zero; the
wall-clock gates are opt-in flags because raw speedup is meaningless on
single-core runners:

* ``--gate-large X`` — boards whose serial time is >= 1s must finish at
  the top worker count within ``X * serial`` (plus a fixed noise grace).
* ``--gate-small Y`` — all other boards must stay within ``Y * serial``.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py --smoke
    PYTHONPATH=src python benchmarks/bench_parallel.py \\
        --smoke --gate-large 1.0 --gate-small 1.15
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

try:
    import repro  # noqa: F401 - probe whether src/ is importable
except ImportError:  # direct script run without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

try:
    from benchmarks.ci_summary import append_table, gate_mark
except ImportError:  # run as a script: benchmarks/ is sys.path[0]
    from ci_summary import append_table, gate_mark

from repro.board.board import Board
from repro.board.nets import Connection
from repro.core.router import GreedyRouter, RouterConfig, make_router
from repro.obs import RingBufferSink
from repro.stringer import Stringer
from repro.workloads import (
    TITAN_CONFIGS,
    BoardSpec,
    NetlistSpec,
    generate_board,
    make_titan_board,
)

#: Scale of the Table 1 parity suite (matches bench_table1.py).
SUITE_SCALE = 0.30

#: Worker counts the parity criterion quantifies over.
WORKER_COUNTS = (1, 2, 4)

#: Phases attributable to the pool machinery, reported per leg.
POOL_PHASES = (
    "pool_spawn", "partition", "wave", "merge", "delta_sync", "residue"
)

#: Pool byte/event counters folded into the master profile.
POOL_COUNTERS = (
    "snapshot_bytes",
    "delta_bytes",
    "delta_ops",
    "worker_steals",
    "worker_respawns",
)

#: Serial time at/above which a board counts as "large" for the gates.
LARGE_SERIAL_SECONDS = 1.0

#: Absolute wall-clock allowance on every gate: at the ~1s scale the
#: gates operate on, run-to-run scheduler noise is a few tens of ms and
#: would otherwise flake a ratio of exactly 1.0.
GATE_GRACE_SECONDS = 0.08

#: Timing legs on sub-second boards keep the best of this many runs.
SMALL_BOARD_REPEATS = 3


def _titan_problem(name: str, scale: float) -> Callable:
    def build() -> Tuple[Board, List[Connection]]:
        board = make_titan_board(name, scale=scale, seed=1)
        return board, Stringer(board).string_all()

    return build


def _local_problem(name: str, via_n: int, radius: int) -> Callable:
    spec = BoardSpec(
        name=name,
        via_nx=via_n,
        via_ny=via_n,
        n_signal_layers=6,
        netlist=NetlistSpec(locality=0.9, local_radius=radius, seed=7),
        seed=7,
    )

    def build() -> Tuple[Board, List[Connection]]:
        board = generate_board(spec)
        return board, Stringer(board).string_all()

    return build


def suite_boards(smoke: bool) -> List[Tuple[str, Callable]]:
    """(name, problem-builder) pairs; the last entry is the largest."""
    boards = [
        (name, _titan_problem(name, SUITE_SCALE)) for name in TITAN_CONFIGS
    ]
    boards.append(("wavelocal_120", _local_problem("wavelocal", 120, 10)))
    if not smoke:
        boards.append(("wavelocal_200", _local_problem("wavelocal", 200, 12)))
    return boards


def _breakdown(router) -> Dict:
    """Pool phase timings and counters out of the router's profile."""
    profile = getattr(router, "profile", None)
    if profile is None:
        return {}
    return {
        "phases": {
            phase: round(timing.seconds, 4)
            for phase, timing in profile.phases.items()
            if phase in POOL_PHASES
        },
        "counters": {
            counter: profile.counters.get(counter, 0)
            for counter in POOL_COUNTERS
        },
    }


def _parallel_leg(
    build: Callable,
    workers: int,
    serial_completed: set,
    repeats: int,
    forced: bool = False,
) -> Dict:
    """One timed parallel leg; keeps the fastest of ``repeats`` runs."""
    best = None
    for _ in range(repeats):
        board, connections = build()
        sink = RingBufferSink()
        config = RouterConfig(workers=workers, pool_auto_serial=not forced)
        router = make_router(board, config, sink=sink)
        started = time.perf_counter()
        result = router.route(connections)
        seconds = time.perf_counter() - started
        if best is not None and seconds >= best["seconds"]:
            continue
        auto_events = sink.by_kind("auto_serial")
        best = {
            "seconds": round(seconds, 3),
            "routed": len(result.routed_by),
            "complete": result.complete,
            "waves": result.waves,
            "demoted": result.demoted,
            "fallback_serial": result.fallback_serial,
            "auto_serial": result.auto_serial,
            "heuristic": {
                "reason": auto_events[0].reason,
                "demand": auto_events[0].demand,
                "utilization": round(auto_events[0].utilization, 4),
            }
            if auto_events
            else None,
            "parity": set(result.routed_by) == serial_completed,
            "breakdown": _breakdown(router),
        }
    best["repeats"] = repeats
    best["speedup"] = None
    return best


def run_board(
    name: str, build: Callable, worker_counts: Sequence[int], forced: bool
) -> Dict:
    """Serial-vs-parallel comparison for one board."""
    board, connections = build()
    started = time.perf_counter()
    serial_result = GreedyRouter(board).route(connections)
    serial_seconds = time.perf_counter() - started
    serial_completed = set(serial_result.routed_by)
    # Sub-second boards are dominated by measurement noise; keep the
    # best of a few runs there, a single run where routing takes long
    # enough to swamp the noise.
    repeats = (
        1 if serial_seconds >= LARGE_SERIAL_SECONDS else SMALL_BOARD_REPEATS
    )
    for _ in range(repeats - 1):
        board_r, connections_r = build()
        started = time.perf_counter()
        GreedyRouter(board_r).route(connections_r)
        serial_seconds = min(
            serial_seconds, time.perf_counter() - started
        )
    row: Dict = {
        "board": name,
        "connections": len(connections),
        "serial": {
            "seconds": round(serial_seconds, 3),
            "routed": len(serial_completed),
            "complete": serial_result.complete,
            "repeats": repeats,
        },
        "parallel": {},
    }
    for workers in worker_counts:
        leg = _parallel_leg(build, workers, serial_completed, repeats)
        if leg["seconds"] > 0:
            leg["speedup"] = round(serial_seconds / leg["seconds"], 3)
        row["parallel"][str(workers)] = leg
    if forced:
        # One pool-forced leg so the delta/merge breakdown is populated
        # even when the size heuristic auto-serials the whole suite
        # (e.g. on a single-core CI runner).  Never gated on time.
        row["forced_pool"] = _parallel_leg(
            build, max(worker_counts), serial_completed, repeats=1,
            forced=True,
        )
    return row


def evaluate_gates(
    report: Dict,
    gate_large: Optional[float],
    gate_small: Optional[float],
) -> List[str]:
    """Wall-clock gate violations at the top worker count (empty = pass)."""
    violations = []
    top = str(max(report["worker_counts"]))
    for row in report["boards"]:
        serial_seconds = row["serial"]["seconds"]
        leg = row["parallel"].get(top)
        if leg is None:
            continue
        large = serial_seconds >= LARGE_SERIAL_SECONDS
        ratio = gate_large if large else gate_small
        if ratio is None:
            continue
        limit = ratio * serial_seconds + GATE_GRACE_SECONDS
        if leg["seconds"] > limit:
            violations.append(
                f"{row['board']}: x{top}={leg['seconds']}s exceeds "
                f"{ratio}x serial ({serial_seconds}s) "
                f"+ {GATE_GRACE_SECONDS}s grace"
            )
    return violations


def run_benchmark(
    smoke: bool = False,
    worker_counts: Sequence[int] = WORKER_COUNTS,
) -> Dict:
    """The whole benchmark; returns the JSON-ready report dict."""
    rows = []
    boards = suite_boards(smoke)
    for index, (name, build) in enumerate(boards):
        row = run_board(
            name, build, worker_counts, forced=index == len(boards) - 1
        )
        serial = row["serial"]
        status = " ".join(
            f"x{w}={leg['seconds']}s"
            f"{'(auto-serial)' if leg['auto_serial'] else ''}"
            f"{'' if leg['parity'] else ' PARITY-MISMATCH'}"
            for w, leg in row["parallel"].items()
        )
        if "forced_pool" in row:
            forced = row["forced_pool"]
            status += (
                f" pool={forced['seconds']}s"
                f"{'' if forced['parity'] else ' PARITY-MISMATCH'}"
            )
        print(
            f"{name:14s} conns={row['connections']:5d} "
            f"serial={serial['seconds']}s {status}",
            flush=True,
        )
        rows.append(row)
    largest = rows[-1]
    top_workers = str(max(worker_counts))
    parity_all = all(
        leg["parity"]
        for row in rows
        for leg in list(row["parallel"].values())
        + ([row["forced_pool"]] if "forced_pool" in row else [])
    )
    speedup = largest["parallel"][top_workers]["speedup"]
    return {
        "experiment": "parallel_wave_routing",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "affinity_count": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count(),
        "suite_scale": SUITE_SCALE,
        "worker_counts": list(worker_counts),
        "gate_grace_seconds": GATE_GRACE_SECONDS,
        "boards": rows,
        "summary": {
            "parity_all": parity_all,
            "largest_board": largest["board"],
            "largest_serial_seconds": largest["serial"]["seconds"],
            "largest_speedup_at_max_workers": speedup,
            "forced_pool_seconds": largest["forced_pool"]["seconds"]
            if "forced_pool" in largest
            else None,
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small boards only (the CI perf-smoke configuration)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_parallel.json",
        help="artifact path (default: BENCH_parallel.json)",
    )
    parser.add_argument(
        "--gate-large",
        type=float,
        default=None,
        metavar="X",
        help="fail if a board with serial time >= "
        f"{LARGE_SERIAL_SECONDS}s runs slower than X * serial at the "
        "top worker count (plus the fixed noise grace)",
    )
    parser.add_argument(
        "--gate-small",
        type=float,
        default=None,
        metavar="Y",
        help="same gate for every other (sub-second) board",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless the largest board shows >= X speedup at the "
        "highest worker count (only meaningful on multi-core hosts)",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(smoke=args.smoke)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    summary = report["summary"]
    print(
        f"wrote {args.out}: largest={summary['largest_board']} "
        f"speedup={summary['largest_speedup_at_max_workers']} "
        f"parity_all={summary['parity_all']} "
        f"(cores available: {report['affinity_count']})"
    )
    violations = evaluate_gates(report, args.gate_large, args.gate_small)
    top = str(max(report["worker_counts"]))
    append_table(
        "Parallel wave routing (bench_parallel)",
        ("board", "serial", f"x{top}", "speedup", "gate", "status"),
        (
            (
                row["board"],
                f"{row['serial']['seconds']}s",
                f"{row['parallel'][top]['seconds']}s",
                row["parallel"][top]["speedup"],
                (
                    f"<= {args.gate_large}x"
                    if row["serial"]["seconds"] >= LARGE_SERIAL_SECONDS
                    and args.gate_large is not None
                    else f"<= {args.gate_small}x"
                    if args.gate_small is not None
                    else "—"
                ),
                gate_mark(
                    row["parallel"][top]["parity"]
                    and not any(
                        v.startswith(f"{row['board']}:")
                        for v in violations
                    )
                ),
            )
            for row in report["boards"]
        ),
        note=f"parity_all={summary['parity_all']}",
    )
    if not summary["parity_all"]:
        print("FAIL: parallel/serial completion parity broken", file=sys.stderr)
        return 1
    if violations:
        for violation in violations:
            print(f"FAIL: {violation}", file=sys.stderr)
        return 1
    if args.assert_speedup is not None:
        measured = summary["largest_speedup_at_max_workers"]
        if measured is None or measured < args.assert_speedup:
            print(
                f"FAIL: speedup {measured} < {args.assert_speedup}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
