"""E8 — Section 10.1 length tuning: detour stretching vs cost-mod Lee.

Paper: the shipped implementation "starts from a path created by the
standard method, and then attempts to stretch it by adding a detour ...
This algorithm leads to acceptable performance if there are a few tens of
length-tuned wires on a board."  The first attempt — a delay-targeted Lee
cost function — "was overwhelmed with false solutions" and "turned out to
be unacceptably slow".

The workload tunes a batch of clock-style wires to a common target delay
with both implementations and compares success rate and cost.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.board.board import Board
from repro.board.nets import Connection
from repro.board.parts import PinRole, sip_package
from repro.core.router import GreedyRouter
from repro.extensions.length_tuning import (
    route_delay_ns,
    tune_connection,
    tune_with_cost_mod,
)
from repro.grid.coords import ViaPoint

N_WIRES = 12
TARGET_NS = 0.9
_stats = {}


def _clock_board():
    """A sparse board with N_WIRES two-pin nets of varying length."""
    board = Board.create(
        via_nx=60, via_ny=44, n_signal_layers=4, name="clock"
    )
    connections = []
    for i in range(N_WIRES):
        y = 3 + i * 3
        length = 10 + (i * 7) % 25
        pin_a = board.add_part(
            sip_package(1), ViaPoint(4, y), roles=[PinRole.OUTPUT]
        ).pins[0]
        pin_b = board.add_part(
            sip_package(1), ViaPoint(4 + length, y), roles=[PinRole.INPUT]
        ).pins[0]
        net = board.add_net([pin_a.pin_id, pin_b.pin_id])
        connections.append(
            Connection(
                i, net.net_id, pin_a.pin_id, pin_b.pin_id,
                pin_a.position, pin_b.position,
            )
        )
    return board, connections


def _run_detour():
    board, connections = _clock_board()
    router = GreedyRouter(board)
    result = router.route(connections)
    assert result.complete
    ok = 0
    detours = 0
    for conn in connections:
        tuning = tune_connection(
            router.workspace, board, conn,
            target_ns=TARGET_NS, tolerance_ns=0.05,
        )
        ok += int(tuning.success)
        detours += tuning.detours_added
    return ok, detours


def _run_cost_mod():
    board, connections = _clock_board()
    from repro.channels.workspace import RoutingWorkspace

    ws = RoutingWorkspace(board)
    ok = 0
    attempts = 0
    for conn in connections:
        tuning = tune_with_cost_mod(
            ws, board, conn,
            target_ns=TARGET_NS, tolerance_ns=0.05, max_candidates=8,
        )
        ok += int(tuning.success)
        attempts += tuning.candidates_tried
        if not ws.is_routed(conn.conn_id) and tuning.success:
            pass
        # Leave successful routes installed; failed ones were ripped by
        # the tuner itself.
    return ok, attempts


@pytest.mark.parametrize("method", ["detour", "cost_mod"])
def test_length_tuning(method, benchmark, record):
    run = _run_detour if method == "detour" else _run_cost_mod
    ok, effort = benchmark.pedantic(run, rounds=1, iterations=1)
    _stats[method] = {
        "tuned_ok": ok,
        "effort": effort,
        "seconds": benchmark.stats.stats.mean,
    }
    if method == "cost_mod":
        _report(record)


def _report(record):
    rows = [
        {
            "method": method,
            "tuned_ok": f"{s['tuned_ok']}/{N_WIRES}",
            "detours_or_candidates": s["effort"],
            "cpu_s": round(s["seconds"], 3),
        }
        for method, s in _stats.items()
    ]
    record(
        "length_tuning",
        format_table(
            rows,
            title=f"E8: tuning {N_WIRES} wires to {TARGET_NS} ns "
            "(paper: detours acceptable for tens of wires; "
            "cost-mod Lee overwhelmed by false solutions)",
        ),
    )
    detour = _stats["detour"]
    cost_mod = _stats["cost_mod"]
    # The shipped method tunes everything.
    assert detour["tuned_ok"] == N_WIRES
    # The cost-mod variant does strictly worse (fewer successes, or the
    # same successes bought with many candidate re-routes).
    assert (
        cost_mod["tuned_ok"] < detour["tuned_ok"]
        or cost_mod["effort"] > 2 * N_WIRES
    )
