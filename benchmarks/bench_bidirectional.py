"""E6 — Section 8.2 Modification 2: bidirectional vs single wavefront.

Paper: "the common case is that one of the ends of the connection is
heavily congested and can reach only one or two free vias.  The other end
... can reach most other points on the circuit board.  If the marking
starts from the free end, the blockage will be detected only after marking
a very large number of points."

The workload walls one pin into a small box: the single-front search
(from the free end) floods the board before concluding the connection is
blocked; the bidirectional search dies on the walled side after marking a
handful of points.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.board.board import Board
from repro.board.nets import Connection
from repro.board.parts import PinRole, sip_package
from repro.channels.workspace import RoutingWorkspace
from repro.core.lee import lee_route
from repro.grid.coords import ViaPoint
from repro.grid.geometry import Box

VIA_N = 30
_stats = {}


def _walled_problem():
    """Pin b sealed inside a 5x5-via box on every layer."""
    board = Board.create(
        via_nx=VIA_N, via_ny=VIA_N, n_signal_layers=2, name="walled"
    )
    pin_a = board.add_part(
        sip_package(1), ViaPoint(3, 15), roles=[PinRole.OUTPUT]
    ).pins[0]
    pin_b = board.add_part(
        sip_package(1), ViaPoint(24, 15), roles=[PinRole.INPUT]
    ).pins[0]
    board.add_net([pin_a.pin_id, pin_b.pin_id])
    conn = Connection(
        0, 0, pin_a.pin_id, pin_b.pin_id, pin_a.position, pin_b.position
    )
    ws = RoutingWorkspace(board)
    g = board.grid.grid_per_via
    b = ws.grid.via_to_grid(conn.b)
    lo_x, hi_x = b.gx - 2 * g, b.gx + 2 * g
    lo_y, hi_y = b.gy - 2 * g, b.gy + 2 * g
    for layer_index in range(ws.n_layers):
        ws.fill_free_space(layer_index, Box(lo_x, lo_y, hi_x, lo_y))
        ws.fill_free_space(layer_index, Box(lo_x, hi_y, hi_x, hi_y))
        ws.fill_free_space(layer_index, Box(lo_x, lo_y + 1, lo_x, hi_y - 1))
        ws.fill_free_space(layer_index, Box(hi_x, lo_y + 1, hi_x, hi_y - 1))
    return ws, conn


def _run(single_front: bool):
    ws, conn = _walled_problem()
    passable = frozenset(
        (conn.conn_id, -(conn.pin_a + 1), -(conn.pin_b + 1))
    )
    result = lee_route(
        ws,
        conn,
        passable=passable,
        max_expansions=50000,
        single_front=single_front,
    )
    assert not result.routed and result.blocked
    return result


@pytest.mark.parametrize(
    "mode", ["single_front", "bidirectional"]
)
def test_blocked_detection(mode, benchmark, record):
    single = mode == "single_front"
    result = benchmark.pedantic(
        lambda: _run(single), rounds=1, iterations=1
    )
    _stats[mode] = {
        "marked": result.marked,
        "expansions": result.expansions,
        "seconds": benchmark.stats.stats.mean,
    }
    if mode == "bidirectional":
        _report(record)


def _report(record):
    rows = [
        {
            "wavefronts": mode,
            "points_marked": s["marked"],
            "expansions": s["expansions"],
            "cpu_s": round(s["seconds"], 4),
        }
        for mode, s in _stats.items()
    ]
    record(
        "bidirectional",
        format_table(
            rows,
            title="E6: blocked-connection detection, walled-in pin "
            "(paper: spread from both ends; the congested end "
            "exhausts almost immediately)",
        ),
    )
    single = _stats["single_front"]
    dual = _stats["bidirectional"]
    # The single wavefront must pop (expand) nearly every reachable point
    # before concluding the connection is blocked; the dual search stops
    # as soon as the walled side exhausts.  (Points *marked* are similar
    # in both modes because the free end's first cross-shaped expansion
    # already marks most of the board — Figure 11.)
    assert dual["expansions"] * 4 < single["expansions"]
    assert dual["seconds"] < single["seconds"]
