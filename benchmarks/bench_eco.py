"""P6 — Incremental ECO re-routing versus routing from scratch.

For each Table 1 board: cold-route it, apply a k-net perturbation (cut
k signal nets, then re-add the same pin groups so both legs face the
identical mutated problem), and measure

* ``eco`` — an :class:`repro.eco.EcoSession` rerouting only what the
  perturbation invalidated, on the warm workspace;
* ``full`` — a fresh router solving the same mutated problem from
  scratch.

Both legs must finish **bit-identically connected**: same completed
connection set, full net connectivity on both workspaces (asserted on
every run, never opt-in).  The wall-clock ratio ``eco / full`` is the
payoff of the delta substrate; CI gates it on one pinned board so a
regression that makes incremental rerouting pointless fails the build:

    PYTHONPATH=src python benchmarks/bench_eco.py --smoke \\
        --gate-ratio 0.5 --gate-board kdj11_2l

Results land in ``BENCH_eco.json`` (and, under Actions, a gate table in
the step summary).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

try:
    import repro  # noqa: F401 - probe whether src/ is importable
except ImportError:  # direct script run without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

try:
    from benchmarks.ci_summary import append_table, gate_mark
except ImportError:  # run as a script: benchmarks/ is sys.path[0]
    from ci_summary import append_table, gate_mark

from repro.board.parts import PinRole
from repro.core.router import GreedyRouter
from repro.eco import EcoSession
from repro.stringer import Stringer
from repro.verify import check_connectivity
from repro.workloads import TITAN_CONFIGS, make_titan_board

#: Scale of the suite.  Slightly above the 0.30 the other benches use:
#: 0.32 is the largest scale at which every Table 1 board (including
#: the hard 2-layer kdj11_2l) still cold-routes to completion with
#: seed 1, which the parity criterion requires, while keeping the gate
#: board's full-reroute time comfortably above measurement noise.
SUITE_SCALE = 0.32

#: Signal nets cut-and-readded per perturbation.
DEFAULT_K = 5

#: Boards in the CI smoke tier (small, sub-second, representative).
SMOKE_BOARDS = ("kdj11_2l", "nmc_4l", "tna")

#: Both legs keep the best of this many runs (sub-second boards are
#: dominated by scheduler noise otherwise).
REPEATS = 3

#: Absolute allowance on the ratio gate — at sub-second full-reroute
#: times a pure ratio flakes on tens-of-ms noise.  Deliberately below
#: the gate board's full-reroute wall so an incremental path that
#: degenerated into routing from scratch still fails the gate.
GATE_GRACE_SECONDS = 0.05


def _perturbation_nets(board, k: int) -> List[int]:
    """The k nets the perturbation cuts: spread across the board."""
    live = [n for n in board.signal_nets if len(n.pin_ids) >= 2]
    step = max(1, len(live) // k)
    return [n.net_id for n in live[::step][:k]]


def _run_board(name: str, k: int) -> Dict:
    """One board's eco-vs-full comparison; raises on parity failure.

    Both sides of the ratio keep their best measured time across the
    repeats — comparing one leg's best against the other's worst would
    bias the gate whichever way the scheduler happened to hiccup.
    """
    samples = [_run_once(name, k) for _ in range(REPEATS)]
    row = samples[-1]
    row["eco_seconds"] = round(min(s["eco_seconds"] for s in samples), 3)
    row["full_seconds"] = round(min(s["full_seconds"] for s in samples), 3)
    row["ratio"] = (
        round(row["eco_seconds"] / row["full_seconds"], 3)
        if row["full_seconds"] > 0
        else None
    )
    row["repeats"] = REPEATS
    return row


def _run_once(name: str, k: int) -> Dict:
    board = make_titan_board(name, scale=SUITE_SCALE, seed=1)
    connections = Stringer(board).string_all()
    router = GreedyRouter(board)
    started = time.perf_counter()
    cold_result = router.route(connections)
    cold_seconds = time.perf_counter() - started
    if not cold_result.complete:
        raise SystemExit(f"{name}: cold route incomplete; bad baseline")

    with EcoSession(
        board,
        connections,
        workspace=router.workspace,
        routed_by=cold_result.routed_by,
    ) as session:
        nets = _perturbation_nets(board, k)
        groups = []
        for net_id in nets:
            net = board.nets[net_id]
            groups.append(
                [
                    p
                    for p in net.pin_ids
                    if board.pins[p].role is not PinRole.TERMINATOR
                ]
            )
            session.cut_nets([net_id])
        for group in groups:
            session.add_nets([group])
        invalidated = len(session.pending)
        started = time.perf_counter()
        response = session.reroute()
        eco_seconds = time.perf_counter() - started
        eco_completed = set(session.workspace.records)
        eco_connected = check_connectivity(
            board, session.workspace, session.connections
        ).fully_connected
        final_connections = list(session.connections)

    # Full leg: the identical mutated problem, from scratch.
    full_router = GreedyRouter(board)
    started = time.perf_counter()
    full_result = full_router.route(final_connections)
    full_seconds = time.perf_counter() - started
    full_completed = set(full_router.workspace.records)
    full_connected = check_connectivity(
        board, full_router.workspace, final_connections
    ).fully_connected

    parity = (
        eco_completed == full_completed
        and eco_connected
        and full_connected
        and response.result.complete == full_result.complete
    )
    if not parity:
        raise SystemExit(
            f"{name}: ECO/full parity broken — eco routed "
            f"{len(eco_completed)} (connected={eco_connected}), full "
            f"routed {len(full_completed)} (connected={full_connected})"
        )
    return {
        "board": name,
        "connections": len(final_connections),
        "k": k,
        "cold_seconds": round(cold_seconds, 3),
        "eco_seconds": eco_seconds,
        "full_seconds": full_seconds,
        "invalidated": invalidated,
        "reused": response.counters["eco_reused"],
        "rerouted": response.counters["eco_rerouted"],
        "parity": True,
    }


def run_benchmark(smoke: bool, k: int) -> Dict:
    """The whole suite; returns the JSON-ready report dict."""
    names = SMOKE_BOARDS if smoke else tuple(TITAN_CONFIGS)
    rows = []
    for name in names:
        row = _run_board(name, k)
        print(
            f"{name:12s} conns={row['connections']:5d} "
            f"cold={row['cold_seconds']}s eco={row['eco_seconds']}s "
            f"full={row['full_seconds']}s ratio={row['ratio']} "
            f"(reused {row['reused']}, rerouted {row['rerouted']})",
            flush=True,
        )
        rows.append(row)
    return {
        "experiment": "eco_incremental_reroute",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "suite_scale": SUITE_SCALE,
        "k": k,
        "gate_grace_seconds": GATE_GRACE_SECONDS,
        "boards": rows,
        "summary": {
            "parity_all": all(r["parity"] for r in rows),
            "worst_ratio": max(
                (r["ratio"] for r in rows if r["ratio"] is not None),
                default=None,
            ),
        },
    }


def evaluate_gate(
    report: Dict, gate_ratio: Optional[float], gate_board: str
) -> Tuple[List[str], List[Tuple]]:
    """Gate violations plus step-summary rows for every board."""
    violations = []
    summary_rows = []
    for row in report["boards"]:
        gated = gate_ratio is not None and row["board"] == gate_board
        ok = True
        if gated:
            limit = gate_ratio * row["full_seconds"] + GATE_GRACE_SECONDS
            ok = row["eco_seconds"] <= limit
            if not ok:
                violations.append(
                    f"{row['board']}: eco={row['eco_seconds']}s exceeds "
                    f"{gate_ratio}x full ({row['full_seconds']}s) "
                    f"+ {GATE_GRACE_SECONDS}s grace"
                )
        summary_rows.append(
            (
                row["board"],
                f"{row['eco_seconds']}s",
                f"{row['full_seconds']}s",
                row["ratio"],
                f"<= {gate_ratio}x + grace" if gated else "—",
                gate_mark(ok and row["parity"]),
            )
        )
    return violations, summary_rows


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small boards only (the CI perf-smoke configuration)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_eco.json",
        help="artifact path (default: BENCH_eco.json)",
    )
    parser.add_argument(
        "-k",
        type=int,
        default=DEFAULT_K,
        help=f"nets cut and re-added per perturbation (default {DEFAULT_K})",
    )
    parser.add_argument(
        "--gate-ratio",
        type=float,
        default=None,
        metavar="X",
        help="fail if the gate board's incremental reroute is slower "
        "than X * its full reroute (plus the fixed noise grace)",
    )
    parser.add_argument(
        "--gate-board",
        default="kdj11_2l",
        help="board the ratio gate applies to (default kdj11_2l)",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(smoke=args.smoke, k=args.k)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    summary = report["summary"]
    print(
        f"wrote {args.out}: worst_ratio={summary['worst_ratio']} "
        f"parity_all={summary['parity_all']}"
    )
    violations, summary_rows = evaluate_gate(
        report, args.gate_ratio, args.gate_board
    )
    append_table(
        "ECO incremental reroute (bench_eco)",
        ("board", "eco", "full", "ratio", "gate", "status"),
        summary_rows,
        note=f"k={args.k} nets perturbed; parity (bit-identical final "
        "connectivity) asserted on every leg.",
    )
    if violations:
        for violation in violations:
            print(f"FAIL: {violation}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
