"""Shared benchmark fixtures and the experiment-results collector.

Every benchmark writes its paper-vs-measured comparison into
``benchmarks/out/<experiment>.txt`` so the numbers quoted in
EXPERIMENTS.md can be regenerated with a single command:

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> Path:
    """Directory for benchmark artifacts (tables, figure renders)."""
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def record(out_dir):
    """Append a named experiment report to its artifact file."""

    def _record(experiment: str, text: str) -> None:
        path = out_dir / f"{experiment}.txt"
        with open(path, "a") as f:
            f.write(text.rstrip() + "\n")

    # Truncate all report files once per session.
    for stale in out_dir.glob("*.txt"):
        stale.unlink()
    return _record


def routed_problem(name: str, scale: float = 0.30, seed: int = 1):
    """Generate-and-string one Titan-style problem (not yet routed)."""
    from repro.stringer import Stringer
    from repro.workloads import make_titan_board

    board = make_titan_board(name, scale=scale, seed=seed)
    connections = Stringer(board).string_all()
    return board, connections
