"""K1 — KiCad interchange: the round-trip gate over the fixture boards.

For every checked-in ``.kicad_pcb`` fixture:

* **route** — import must yield a routable problem and the router must
  complete it.  Always asserted.
* **round trip** — import -> route -> export -> re-import must restore
  every routed connection into an identical canonical workspace, and a
  second export must be byte-identical to the first (the exporter never
  disturbs content it did not write).  Always asserted.
* **connectivity** — the re-imported board passes the independent
  connectivity verifier with no broken connections.  Always asserted.

Timings for the import/route/export legs are recorded in the JSON for
the CI artifact trail; they are not gated (fixture boards are small and
shared-runner wall clocks are noisy).

Usage::

    PYTHONPATH=src python benchmarks/bench_kicad.py --smoke
    PYTHONPATH=src python benchmarks/bench_kicad.py --export-dir exports
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

try:
    import repro  # noqa: F401 - probe whether src/ is importable
except ImportError:  # direct script run without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

try:
    from benchmarks.ci_summary import append_table, gate_mark
except ImportError:  # run as a script: benchmarks/ is sys.path[0]
    from ci_summary import append_table, gate_mark

from repro.core.router import make_router
from repro.io import kicad
from repro.verify.connectivity import check_connectivity

FIXTURES = Path(__file__).resolve().parents[1] / "tests" / "fixtures"


def run_fixture(path: Path, export_dir: Optional[Path]) -> Dict:
    name = path.stem

    started = time.perf_counter()
    imp = kicad.load_file(str(path))
    import_seconds = time.perf_counter() - started

    router = make_router(imp.board, workspace=imp.workspace)
    started = time.perf_counter()
    result = router.route(imp.connections)
    route_seconds = time.perf_counter() - started

    started = time.perf_counter()
    exported = kicad.export_document(imp, router.workspace)
    export_seconds = time.perf_counter() - started

    re_imp = kicad.import_board(exported, path=str(path))
    identical = (
        re_imp.workspace.canonical_state()
        == router.workspace.canonical_state()
    )
    idempotent = (
        kicad.export_document(re_imp, re_imp.workspace) == exported
    )
    report = check_connectivity(
        re_imp.board, re_imp.workspace, re_imp.connections
    )

    if export_dir is not None:
        export_dir.mkdir(parents=True, exist_ok=True)
        out = export_dir / f"{name}.routed.kicad_pcb"
        out.write_text(exported, encoding="utf-8")

    row = {
        "fixture": name,
        "connections": len(imp.connections),
        "routed": result.routed_count,
        "complete": result.complete,
        "dispersed_pads": sum(1 for p in imp.pads if p.dispersed),
        "restored": len(re_imp.restored),
        "import_seconds": round(import_seconds, 4),
        "route_seconds": round(route_seconds, 4),
        "export_seconds": round(export_seconds, 4),
        "round_trip_identical": identical,
        "reexport_idempotent": idempotent,
        "fully_connected": report.fully_connected,
    }
    row["ok"] = (
        result.complete
        and identical
        and idempotent
        and report.fully_connected
        and len(re_imp.restored) == len(imp.connections)
    )
    print(
        f"{name:14s} routed={result.routed_count}/{len(imp.connections)} "
        f"import={import_seconds:.3f}s route={route_seconds:.3f}s "
        f"round-trip={'ok' if identical else 'MISMATCH'} "
        f"idempotent={'ok' if idempotent else 'MISMATCH'} "
        f"connected={'ok' if report.fully_connected else 'BROKEN'}",
        flush=True,
    )
    return row


def run_benchmark(export_dir: Optional[Path]) -> Dict:
    fixtures = sorted(FIXTURES.glob("*.kicad_pcb"))
    if not fixtures:
        raise SystemExit(f"no .kicad_pcb fixtures under {FIXTURES}")
    rows = [run_fixture(path, export_dir) for path in fixtures]
    return {
        "experiment": "kicad_interchange",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "rows": rows,
        "summary": {
            "fixtures": len(rows),
            "round_trip_all": all(r["ok"] for r in rows),
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="accepted for CI symmetry; the fixture suite is already "
        "smoke-sized",
    )
    parser.add_argument(
        "--out",
        default="BENCH_kicad.json",
        help="artifact path (default: BENCH_kicad.json)",
    )
    parser.add_argument(
        "--export-dir",
        default=None,
        help="write the exported .routed.kicad_pcb documents here "
        "(CI uploads them as artifacts)",
    )
    args = parser.parse_args(argv)
    export_dir = Path(args.export_dir) if args.export_dir else None
    report = run_benchmark(export_dir)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    summary = report["summary"]
    print(
        f"wrote {args.out}: fixtures={summary['fixtures']} "
        f"round_trip_all={summary['round_trip_all']}"
    )
    append_table(
        "KiCad interchange (bench_kicad)",
        ("fixture", "routed", "round trip", "status"),
        [
            (
                r["fixture"],
                f"{r['routed']}/{r['connections']}",
                "identical + idempotent"
                if r["round_trip_identical"] and r["reexport_idempotent"]
                else "MISMATCH",
                gate_mark(r["ok"]),
            )
            for r in report["rows"]
        ],
        note="Gate: complete routing, identical canonical workspace "
        "after re-import, byte-idempotent re-export, clean "
        "connectivity.",
    )
    return 0 if summary["round_trip_all"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
