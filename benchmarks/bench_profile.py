"""E12 — Section 8.2's profile claim: Lee dominates CPU on hard boards.

Paper: "After 90% of the connections are completed with optimal zero- and
one-via solutions, hundreds of connections may remain.  Finding solutions
for these represents well over 90% of CPU time for difficult boards."

The per-phase router profile (Section 12's own tooling, rebuilt) is
measured on an easy board and on a difficult one; the Lee share of CPU
must be small on the former and dominant on the latter even though Lee
routes only a minority of connections.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core.router import GreedyRouter
from repro.stringer import Stringer
from repro.workloads import make_titan_board

BOARDS = [("easy", "dcache"), ("difficult", "kdj11_2l")]
_stats = {}


def _run(name):
    board = make_titan_board(name, scale=0.30, seed=1)
    connections = Stringer(board).string_all()
    router = GreedyRouter(board)
    result = router.route(connections)
    return result, router.profile


@pytest.mark.parametrize("label,name", BOARDS)
def test_profile(label, name, benchmark, record):
    result, profile = benchmark.pedantic(
        lambda: _run(name), rounds=1, iterations=1
    )
    _stats[label] = {
        "board": name,
        "pct_lee_conns": result.percent_lee,
        "lee_cpu_share": profile.fraction("lee"),
        "rows": profile.rows(),
    }
    if label == BOARDS[-1][0]:
        _report(record)


def _report(record):
    lines = []
    for label, s in _stats.items():
        lines.append(
            format_table(
                s["rows"],
                title=f"E12 profile — {label} board ({s['board']}): "
                f"{s['pct_lee_conns']:.1f}% of connections routed by Lee",
            )
        )
    record("profile", "\n\n".join(lines))
    easy = _stats["easy"]
    hard = _stats["difficult"]
    # Lee routes a small minority of connections everywhere...
    assert easy["pct_lee_conns"] < 30
    # ...but dominates CPU on the difficult board (the paper's "well over
    # 90%"; the rip-up/putback machinery is driven by Lee failures too).
    assert hard["lee_cpu_share"] > 0.5
    assert hard["lee_cpu_share"] > easy["lee_cpu_share"]
