"""E9 — Section 10.2 ECL/TTL separation: two-pass fill routing.

Paper: "In the boards routed to date, this method of separating ECL and
TTL has worked well, with little effort required on the part of the board
designer or the programmer."

The benchmark routes a mixed board both ways — ignoring families (the
unsafe flat route) and with tesselation (two superimposed passes) — and
verifies the tesselated run completes with zero cross-family tile
violations at modest extra cost.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.board.technology import LogicFamily
from repro.channels.workspace import RoutingWorkspace
from repro.core.router import GreedyRouter
from repro.extensions.tesselation import route_mixed, split_tesselation
from repro.stringer import Stringer
from repro.workloads import BoardSpec, generate_board
from repro.workloads.netlist_gen import NetlistSpec

SPLIT = 20
_stats = {}


def _problem():
    spec = BoardSpec(
        name="mixed",
        via_nx=40,
        via_ny=40,
        n_signal_layers=4,
        netlist=NetlistSpec(
            net_fraction=0.9,
            mean_fanout=2.2,
            locality=0.8,
            local_radius=8,
            family_split_column=SPLIT,
            seed=3,
        ),
        seed=3,
    )
    board = generate_board(spec)
    connections = Stringer(board).string_all()
    return board, connections


def _violations(board, workspace, connections):
    split_gx = SPLIT * board.grid.grid_per_via
    by_id = {c.conn_id: c for c in connections}
    count = 0
    for conn_id, record in workspace.records.items():
        family = by_id[conn_id].family
        for layer_index, channel, lo, hi in record.segments:
            layer = workspace.layers[layer_index]
            for coord in (lo, hi):
                point = layer.cc_point(channel, coord)
                if (point.gx < split_gx) != (family is LogicFamily.ECL):
                    count += 1
    return count


def _run_flat():
    board, connections = _problem()
    ws = RoutingWorkspace(board)
    result = GreedyRouter(board, workspace=ws).route(connections)
    return board, ws, connections, result.routed_count, result.total_count


def _run_tesselated():
    board, connections = _problem()
    ws = RoutingWorkspace(board)
    result = route_mixed(
        board, connections, split_tesselation(board, SPLIT), workspace=ws
    )
    return board, ws, connections, result.routed_count, result.total_count


@pytest.mark.parametrize("mode", ["flat", "tesselated"])
def test_tesselation(mode, benchmark, record):
    run = _run_flat if mode == "flat" else _run_tesselated
    board, ws, connections, routed, total = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    _stats[mode] = {
        "routed": routed,
        "total": total,
        "violations": _violations(board, ws, connections),
        "seconds": benchmark.stats.stats.mean,
    }
    if mode == "tesselated":
        _report(record)


def _report(record):
    rows = [
        {
            "mode": mode,
            "routed": f"{s['routed']}/{s['total']}",
            "tile_violations": s["violations"],
            "cpu_s": round(s["seconds"], 3),
        }
        for mode, s in _stats.items()
    ]
    record(
        "tesselation",
        format_table(
            rows,
            title="E9: mixed ECL/TTL board, flat vs tesselated two-pass "
            "routing (Section 10.2)",
        ),
    )
    tess = _stats["tesselated"]
    assert tess["routed"] == tess["total"]
    # The whole point: zero cross-family violations under tesselation.
    assert tess["violations"] == 0
    # And it must not cost an order of magnitude over the flat route.
    assert tess["seconds"] < 10 * max(_stats["flat"]["seconds"], 1e-3)
