"""P7 — ``grr serve``: request latency, warm-session payoff, overload.

Runs an in-process :class:`repro.serve.RoutingServer` and measures the
service the way a client sees it, over real HTTP round trips:

* ``cold``     — sequential ``POST /route`` of the gate board
  (p50/p99 request latency);
* ``burst``    — the same board routed N times concurrently
  (throughput under admission control);
* ``warm``     — a named ECO session absorbing cut+re-add
  perturbations (each cycle cuts the nets the previous cycle added,
  using the ``net_ids`` the mutate response reports): ``POST
  /eco/mutate`` + ``POST /eco/reroute`` cycles (p50/p99 reroute
  latency).  The CI gate: warm reroute p50 must stay
  under ``--gate-warm-ratio`` x the cold-route p50 (plus a fixed noise
  grace) — a warm session that reroutes no faster than a cold route
  makes the server pointless;
* ``overload`` — a burst against ``max_concurrent=1, queue_depth=0``:
  the server must answer 429 with a Retry-After hint, never queue
  without bound;
* ``smoke``    — a real ``python -m repro.cli serve`` subprocess:
  route one board over HTTP, open a pooled warm session, SIGTERM, and
  assert exit 0 with every worker process dead (no orphans).

    PYTHONPATH=src python benchmarks/bench_serve.py --smoke \\
        --gate-warm-ratio 0.5

Results land in ``BENCH_serve.json`` (and, under Actions, a gate table
in the step summary).
"""

from __future__ import annotations

import argparse
import asyncio
import io
import json
import os
import platform
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

try:
    import repro  # noqa: F401 - probe whether src/ is importable
except ImportError:  # direct script run without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

try:
    from benchmarks.ci_summary import append_table, gate_mark
except ImportError:  # run as a script: benchmarks/ is sys.path[0]
    from ci_summary import append_table, gate_mark

from repro.board.parts import PinRole
from repro.io import write_board, write_connections
from repro.serve import RoutingServer, ServeConfig
from repro.stringer import Stringer
from repro.workloads import make_titan_board

#: Matches bench_eco: largest scale at which every board cold-routes
#: to completion, keeping the gated times above measurement noise.
SUITE_SCALE = 0.32

#: The gated board (same one the ECO and cache benches pin).
GATE_BOARD = "kdj11_2l"

#: Signal nets cut and re-added per warm perturbation cycle (matches
#: bench_eco, whose CI gate proves this perturbation reroutes to
#: completion on every smoke board).
PERTURB_K = 5

#: Sequential cold routes measured for the latency baseline.
COLD_REQUESTS = 5

#: Warm mutate+reroute cycles measured.
WARM_CYCLES = 5

#: Concurrent requests in the throughput and overload bursts.
BURST = 4

#: Absolute allowance on the warm gate — sub-second requests flake on
#: tens-of-ms scheduler noise under a pure ratio.
GATE_GRACE_SECONDS = 0.05


def _percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _board_problem(name: str) -> Tuple[str, str, List[int], List[List[int]]]:
    """Board + connection texts and the perturbation's nets/pin groups."""
    board = make_titan_board(name, scale=SUITE_SCALE, seed=1)
    connections = Stringer(board).string_all()
    bbuf, cbuf = io.StringIO(), io.StringIO()
    write_board(board, bbuf)
    write_connections(connections, cbuf)
    live = [n for n in board.signal_nets if len(n.pin_ids) >= 2]
    step = max(1, len(live) // PERTURB_K)
    nets = [n.net_id for n in live[::step][:PERTURB_K]]
    groups = [
        [
            p
            for p in board.nets[net_id].pin_ids
            if board.pins[p].role is not PinRole.TERMINATOR
        ]
        for net_id in nets
    ]
    return bbuf.getvalue(), cbuf.getvalue(), nets, groups


# ----------------------------------------------------------------------
# minimal HTTP client (one request per connection, like the server)
# ----------------------------------------------------------------------


async def _request(host, port, verb, path, body=None):
    reader, writer = await asyncio.open_connection(host, port)
    payload = b"" if body is None else json.dumps(body).encode()
    writer.write(
        f"{verb} {path} HTTP/1.1\r\nHost: bench\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n".encode() + payload
    )
    await writer.drain()
    data = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body_bytes = data.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(body_bytes) if body_bytes else {}


async def _timed_route(host, port, body) -> float:
    started = time.perf_counter()
    status, _, payload = await _request(host, port, "POST", "/route", body)
    elapsed = time.perf_counter() - started
    if status != 200 or not payload["result"]["complete"]:
        raise SystemExit(
            f"cold route failed: status={status} "
            f"state={payload.get('state')} error={payload.get('error')}"
        )
    return elapsed


# ----------------------------------------------------------------------
# legs
# ----------------------------------------------------------------------


async def _run_latency_legs(board_text, conn_text, nets, groups):
    """Cold latency, concurrent throughput, warm reroute cycles."""
    server = RoutingServer(ServeConfig(port=0, max_concurrent=2))
    host, port = await server.start()
    route_body = {"board": board_text, "connections": conn_text}
    try:
        cold = [
            await _timed_route(host, port, route_body)
            for _ in range(COLD_REQUESTS)
        ]

        started = time.perf_counter()
        await asyncio.gather(
            *(_timed_route(host, port, route_body) for _ in range(BURST))
        )
        burst_seconds = time.perf_counter() - started

        status, _, payload = await _request(
            host, port, "POST", "/eco/begin",
            {"session": "bench", **route_body},
        )
        if status != 200 or not payload["result"]["complete"]:
            raise SystemExit(f"eco/begin failed: status={status}")
        warm = []
        reused = rerouted = 0
        current = list(nets)
        for _ in range(WARM_CYCLES):
            ops = [{"op": "cut_nets", "nets": current}] + [
                {"op": "add_nets", "pin_groups": [group]}
                for group in groups
            ]
            status, _, payload = await _request(
                host, port, "POST", "/eco/mutate",
                {"session": "bench", "ops": ops},
            )
            if status != 200:
                raise SystemExit(
                    f"eco/mutate failed: status={status} {payload}"
                )
            # Next cycle cuts the nets this one created.
            current = [
                net_id
                for stats in payload["applied"]
                if stats["op"] == "add_nets"
                for net_id in stats["net_ids"]
            ]
            if len(current) != len(groups):
                raise SystemExit(
                    f"mutate reported {len(current)} new nets, "
                    f"expected {len(groups)}"
                )
            started = time.perf_counter()
            status, _, payload = await _request(
                host, port, "POST", "/eco/reroute", {"session": "bench"}
            )
            warm.append(time.perf_counter() - started)
            result = payload.get("result") or {}
            if status != 200 or not result.get("complete"):
                raise SystemExit(
                    f"eco/reroute failed: status={status} "
                    f"error={payload.get('error')}"
                )
            reused = result["counters"]["eco_reused"]
            rerouted = result["counters"]["eco_rerouted"]
        pids = server.worker_pids()
    finally:
        await server.shutdown()
    if server.worker_pids():
        raise SystemExit("worker pids survived server shutdown")
    return {
        "cold": cold,
        "burst_seconds": burst_seconds,
        "warm": warm,
        "reused": reused,
        "rerouted": rerouted,
        "session_pids": pids,
    }


async def _run_overload_leg(board_text: str, conn_text: str) -> Dict:
    """One slot, no queue: the burst must draw 429s, never pile up."""
    server = RoutingServer(
        ServeConfig(port=0, max_concurrent=1, max_queue_depth=0)
    )
    host, port = await server.start()
    try:
        async def attempt():
            return await _request(
                host, port, "POST", "/route",
                {"board": board_text, "connections": conn_text},
            )

        outcomes = await asyncio.gather(*(attempt() for _ in range(BURST)))
        rejected = [o for o in outcomes if o[0] == 429]
        completed = [o for o in outcomes if o[0] == 200]
        if len(rejected) + len(completed) != BURST:
            raise SystemExit(
                f"unexpected statuses: {[o[0] for o in outcomes]}"
            )
        if not rejected:
            raise SystemExit("overload burst produced no 429")
        retry_hints = []
        for _, headers, _ in rejected:
            if "retry-after" not in headers:
                raise SystemExit("429 without a Retry-After header")
            retry_hints.append(int(headers["retry-after"]))
        status, _, health = await _request(host, port, "GET", "/healthz")
        if health["admission"]["queued"] > 0:
            raise SystemExit("queue not drained after the burst")
    finally:
        await server.shutdown()
    return {
        "requests": BURST,
        "completed": len(completed),
        "rejected": len(rejected),
        "retry_after_min": min(retry_hints),
        "server_rejected_counter": health["admission"]["rejected"],
    }


def _run_subprocess_smoke(board_text, conn_text, nets, groups):
    """A real ``grr serve`` process: route, warm pool, clean SIGTERM."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--max-concurrent", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        banner = proc.stdout.readline().strip()
        host, port = banner.rsplit("http://", 1)[1].split(":")
        port = int(port)

        async def drive():
            status, _, payload = await _request(
                host, port, "POST", "/route",
                {"board": board_text, "connections": conn_text},
            )
            if status != 200 or not payload["result"]["complete"]:
                raise SystemExit(f"subprocess route failed: {status}")
            status, _, _ = await _request(
                host, port, "POST", "/eco/begin",
                {
                    "session": "smoke",
                    "board": board_text,
                    "connections": conn_text,
                    "workers": 2,
                    "pool_auto_serial": False,
                },
            )
            if status != 200:
                raise SystemExit(f"subprocess eco/begin failed: {status}")
            ops = [{"op": "cut_nets", "nets": nets}] + [
                {"op": "add_nets", "pin_groups": [group]}
                for group in groups
            ]
            status, _, _ = await _request(
                host, port, "POST", "/eco/mutate",
                {"session": "smoke", "ops": ops},
            )
            if status != 200:
                raise SystemExit(f"subprocess eco/mutate failed: {status}")
            status, _, payload = await _request(
                host, port, "POST", "/eco/reroute", {"session": "smoke"}
            )
            if status != 200:
                raise SystemExit(f"subprocess eco/reroute failed: {status}")
            status, _, health = await _request(host, port, "GET", "/healthz")
            return health["worker_pids"]

        pids = asyncio.run(drive())
        if not pids:
            raise SystemExit("warm session kept no worker pool")
        proc.send_signal(signal.SIGTERM)
        exit_code = proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
    # Worker pids must be gone: the pool dies with its session at
    # shutdown.  ESRCH (ProcessLookupError) is the passing outcome.
    orphans = []
    for pid in pids:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            continue
        except PermissionError:
            orphans.append(pid)  # alive under another uid: still alive
        else:
            orphans.append(pid)
    if orphans:
        raise SystemExit(f"orphaned worker processes after SIGTERM: {orphans}")
    if exit_code != 0:
        raise SystemExit(f"grr serve exited {exit_code} on SIGTERM")
    return {
        "exit_code": exit_code,
        "worker_pids": pids,
        "orphans": 0,
    }


def run_benchmark(smoke: bool) -> Dict:
    """The whole suite; returns the JSON-ready report dict."""
    board_text, conn_text, nets, groups = _board_problem(GATE_BOARD)
    legs = asyncio.run(
        _run_latency_legs(board_text, conn_text, nets, groups)
    )
    cold_p50 = round(_percentile(legs["cold"], 0.5), 3)
    cold_p99 = round(_percentile(legs["cold"], 0.99), 3)
    warm_p50 = round(_percentile(legs["warm"], 0.5), 3)
    warm_p99 = round(_percentile(legs["warm"], 0.99), 3)
    throughput = round(BURST / legs["burst_seconds"], 2)
    print(
        f"{GATE_BOARD:12s} cold p50={cold_p50}s p99={cold_p99}s | "
        f"burst {BURST} in {legs['burst_seconds']:.2f}s "
        f"({throughput} req/s) | warm p50={warm_p50}s p99={warm_p99}s "
        f"(reused {legs['reused']}, rerouted {legs['rerouted']})",
        flush=True,
    )
    overload = asyncio.run(_run_overload_leg(board_text, conn_text))
    print(
        f"overload     {overload['rejected']}/{overload['requests']} "
        f"rejected with 429, retry-after >= "
        f"{overload['retry_after_min']}s",
        flush=True,
    )
    smoke_leg = _run_subprocess_smoke(board_text, conn_text, nets, groups)
    print(
        f"subprocess   exit={smoke_leg['exit_code']} "
        f"pool_pids={smoke_leg['worker_pids']} orphans=0",
        flush=True,
    )
    return {
        "experiment": "serve_latency",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "suite_scale": SUITE_SCALE,
        "board": GATE_BOARD,
        "perturb_k": PERTURB_K,
        "gate_grace_seconds": GATE_GRACE_SECONDS,
        "cold": {
            "requests": COLD_REQUESTS,
            "p50_seconds": cold_p50,
            "p99_seconds": cold_p99,
        },
        "burst": {
            "concurrent": BURST,
            "seconds": round(legs["burst_seconds"], 3),
            "requests_per_second": throughput,
        },
        "warm": {
            "cycles": WARM_CYCLES,
            "p50_seconds": warm_p50,
            "p99_seconds": warm_p99,
            "reused": legs["reused"],
            "rerouted": legs["rerouted"],
        },
        "overload": overload,
        "subprocess_smoke": smoke_leg,
        "summary": {
            "warm_over_cold_p50": (
                round(warm_p50 / cold_p50, 3) if cold_p50 > 0 else None
            ),
        },
    }


def evaluate_gate(
    report: Dict, gate_warm_ratio: Optional[float]
) -> Tuple[List[str], List[Tuple]]:
    """Gate violations plus step-summary rows."""
    violations = []
    cold_p50 = report["cold"]["p50_seconds"]
    warm_p50 = report["warm"]["p50_seconds"]
    warm_ok = True
    if gate_warm_ratio is not None:
        limit = gate_warm_ratio * cold_p50 + GATE_GRACE_SECONDS
        warm_ok = warm_p50 <= limit
        if not warm_ok:
            violations.append(
                f"warm reroute p50={warm_p50}s exceeds {gate_warm_ratio}x "
                f"cold p50 ({cold_p50}s) + {GATE_GRACE_SECONDS}s grace"
            )
    rows = [
        (
            "cold /route",
            f"{cold_p50}s",
            f"{report['cold']['p99_seconds']}s",
            "baseline",
            gate_mark(True),
        ),
        (
            "warm /eco/reroute",
            f"{warm_p50}s",
            f"{report['warm']['p99_seconds']}s",
            f"<= {gate_warm_ratio}x cold p50 + grace"
            if gate_warm_ratio is not None
            else "—",
            gate_mark(warm_ok),
        ),
        (
            "overload 429",
            f"{report['overload']['rejected']}/"
            f"{report['overload']['requests']} rejected",
            f">= {report['overload']['retry_after_min']}s retry-after",
            "bounded queue",
            gate_mark(True),
        ),
        (
            "subprocess SIGTERM",
            f"exit {report['subprocess_smoke']['exit_code']}",
            f"{len(report['subprocess_smoke']['worker_pids'])} pool pids",
            "no orphans",
            gate_mark(True),
        ),
    ]
    return violations, rows


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="the CI perf-smoke configuration (currently identical to a "
        "full run; kept for symmetry with the other benches)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_serve.json",
        help="artifact path (default: BENCH_serve.json)",
    )
    parser.add_argument(
        "--gate-warm-ratio",
        type=float,
        default=None,
        metavar="X",
        help="fail if the warm reroute p50 is slower than X * the cold "
        "route p50 (plus the fixed noise grace)",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(smoke=args.smoke)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(
        f"wrote {args.out}: warm/cold p50 = "
        f"{report['summary']['warm_over_cold_p50']}"
    )
    violations, summary_rows = evaluate_gate(report, args.gate_warm_ratio)
    append_table(
        "Routing service (bench_serve)",
        ("leg", "p50 / outcome", "p99 / detail", "gate", "status"),
        summary_rows,
        note=f"board={GATE_BOARD} scale={SUITE_SCALE}; warm cycles "
        f"cut and re-add {PERTURB_K} nets each; overload leg runs "
        "max_concurrent=1, queue_depth=0.",
    )
    if violations:
        for violation in violations:
            print(f"FAIL: {violation}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
