"""E7 — Section 12 channel data-structure ablation: list vs binary tree.

Paper: "In earlier versions, each channel was represented as a binary tree
of segments, since binary trees have better performance for random probes.
In reality, however, the access pattern to a channel is far from random.
It is localized to a small part of the channel when routing any given
connection.  The change from binary tree to doubly linked list with a
moving head-of-list pointer halved the running time on most problems."

The workload is the *authentic* access pattern: every channel operation
(free-gap probe, overlap scan, add, remove) issued while routing a real
board is recorded through an instrumented channel, then replayed against
each structure.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from repro.analysis import format_table
from repro.channels.alternatives import MovingHeadChannel, TreeChannel
from repro.channels.channel import Channel
from repro.channels.workspace import RoutingWorkspace
from repro.core.router import GreedyRouter
from repro.stringer import Stringer
from repro.workloads import make_titan_board

#: Shared operation log: (channel_key, op, args...).
_TRACE: List[Tuple] = []
_trace_counter = [0]


class _RecordingChannel(Channel):
    """Production channel that journals every call for replay."""

    def __init__(self) -> None:
        super().__init__()
        self._key = _trace_counter[0]
        _trace_counter[0] += 1

    def free_gaps(self, lo, hi, passable=frozenset()):
        _TRACE.append((self._key, "free_gaps", lo, hi, passable))
        return super().free_gaps(lo, hi, passable)

    def is_free(self, lo, hi, passable=frozenset()):
        _TRACE.append((self._key, "is_free", lo, hi, passable))
        return super().is_free(lo, hi, passable)

    def overlapping_list(self, lo, hi):
        return list(super().overlapping(lo, hi))

    def add(self, lo, hi, owner, passable=frozenset()):
        _TRACE.append((self._key, "add", lo, hi, owner, passable))
        return super().add(lo, hi, owner, passable)

    def remove(self, lo, hi, owner):
        _TRACE.append((self._key, "remove", lo, hi, owner))
        return super().remove(lo, hi, owner)


def _record_trace() -> List[Tuple]:
    """Route a real board once through recording channels."""
    if _TRACE:
        return _TRACE
    board = make_titan_board("kdj11_2l", scale=0.30, seed=1)
    connections = Stringer(board).string_all()
    ws = RoutingWorkspace(board, channel_factory=_RecordingChannel)
    GreedyRouter(board, workspace=ws).route(connections)
    return _TRACE


def _replay(factory) -> Tuple[int, int]:
    """Run the recorded trace against fresh instances of a structure."""
    trace = _record_trace()
    channels: Dict[int, object] = {}
    probes = 0
    checksum = 0
    for entry in trace:
        key, op = entry[0], entry[1]
        channel = channels.get(key)
        if channel is None:
            channel = factory()
            channels[key] = channel
        if op == "free_gaps":
            _, _, lo, hi, passable = entry
            checksum += len(channel.free_gaps(lo, hi, passable))
            probes += 1
        elif op == "is_free":
            _, _, lo, hi, passable = entry
            checksum += int(channel.is_free(lo, hi, passable))
            probes += 1
        elif op == "add":
            _, _, lo, hi, owner, passable = entry
            channel.add(lo, hi, owner, passable)
        else:
            _, _, lo, hi, owner = entry
            channel.remove(lo, hi, owner)
    return probes, checksum


STRUCTURES = {
    "moving_head_list": MovingHeadChannel,
    "binary_tree": TreeChannel,
    "bisect_array (production)": Channel,
}
_stats = {}


@pytest.mark.parametrize("name", list(STRUCTURES))
def test_channel_structure(name, benchmark, record):
    _record_trace()  # ensure recording happens outside the timed region
    probes, checksum = benchmark(lambda: _replay(STRUCTURES[name]))
    _stats[name] = {
        "probes": probes,
        "checksum": checksum,
        "seconds": benchmark.stats.stats.mean,
    }
    if name == list(STRUCTURES)[-1]:
        _report(record)


def _report(record):
    rows = [
        {
            "structure": name,
            "ops_replayed": len(_TRACE),
            "probes": s["probes"],
            "mean_s": round(s["seconds"], 4),
        }
        for name, s in _stats.items()
    ]
    record(
        "channel_structure",
        format_table(
            rows,
            title="E7: channel structures replaying the recorded access "
            "trace of a real kdj11_2l route "
            "(paper: tree -> moving-head list halved run time)",
        ),
    )
    # All structures must agree on every probe result.
    checksums = {s["checksum"] for s in _stats.values()}
    assert len(checksums) == 1
    # The moving-head list must beat the binary tree on the real,
    # localized pattern.
    assert (
        _stats["moving_head_list"]["seconds"]
        < _stats["binary_tree"]["seconds"]
    )
