"""E10 — Section 8.1's rejected strategy: divide-and-conquer two-via.

Paper: "It is tempting to consider extending this method to two-via
solutions, and in fact this strategy was tried early in the development of
grr. ... Unfortunately there are usually too many possibilities to examine
exhaustively.  The problem is that the large number of candidate vias is
tried in a pre-determined order without concern for local congestion.  The
approach becomes combinatorially intractable for three-via solutions."

The benchmark sweeps connection spans: the two-via candidate enumeration
grows with the bounding rectangle, while the congestion-aware Lee search's
frontier stays small.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.board.board import Board
from repro.board.nets import Connection
from repro.board.parts import PinRole, sip_package
from repro.channels.workspace import RoutingWorkspace
from repro.core.lee import lee_route
from repro.core.optimal import TwoViaStats, try_two_via, two_via_candidates
from repro.grid.coords import ViaPoint

SPANS = [6, 12, 20, 30]
_stats = {}


def _problem(span: int):
    board = Board.create(
        via_nx=span + 6, via_ny=16, n_signal_layers=2, name="span"
    )
    pin_a = board.add_part(
        sip_package(1), ViaPoint(2, 4), roles=[PinRole.OUTPUT]
    ).pins[0]
    pin_b = board.add_part(
        sip_package(1), ViaPoint(2 + span, 11), roles=[PinRole.INPUT]
    ).pins[0]
    board.add_net([pin_a.pin_id, pin_b.pin_id])
    conn = Connection(
        0, 0, pin_a.pin_id, pin_b.pin_id, pin_a.position, pin_b.position
    )
    return RoutingWorkspace(board), conn


def _run(span: int):
    ws, conn = _problem(span)
    passable = frozenset((conn.conn_id, -1, -2))
    stats = TwoViaStats()
    record = try_two_via(ws, conn, 1, passable, stats=stats)
    candidates_total = len(two_via_candidates(ws, conn.a, conn.b, 1))
    if record is not None:
        ws.remove_connection(conn.conn_id)
    search = lee_route(ws, conn, radius=1, passable=passable)
    return candidates_total, stats, search


@pytest.mark.parametrize("span", SPANS)
def test_two_via_vs_lee(span, benchmark, record):
    candidates_total, stats, search = benchmark.pedantic(
        lambda: _run(span), rounds=1, iterations=1
    )
    _stats[span] = {
        "candidates_total": candidates_total,
        "examined": stats.candidates,
        "lee_expansions": search.expansions,
        "lee_routed": search.routed,
    }
    if span == SPANS[-1]:
        _report(record)


def _report(record):
    rows = [
        {
            "span_vias": span,
            "two_via_candidates": s["candidates_total"],
            "examined_until_hit": s["examined"],
            "lee_expansions": s["lee_expansions"],
        }
        for span, s in sorted(_stats.items())
    ]
    record(
        "two_via",
        format_table(
            rows,
            title="E10: rejected two-via enumeration vs Lee "
            "(paper: too many candidates, no congestion awareness)",
        ),
    )
    # The candidate space grows linearly+ with span...
    first, last = _stats[SPANS[0]], _stats[SPANS[-1]]
    assert (
        last["candidates_total"] > 2 * first["candidates_total"]
    )
    # ...while the Lee frontier stays flat (within a small constant).
    assert last["lee_expansions"] <= first["lee_expansions"] + 10
    assert all(s["lee_routed"] for s in _stats.values())
