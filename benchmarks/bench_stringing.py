"""E1 — Section 3 stringing experiment: ordered vs random stringing.

Paper: "The router completed both problems successfully, but there was
[a] factor of 25 difference in the run times.  The random problem took 50
minutes of CPU time, and the better ordered problem took 2 minutes."

The reproduction routes the same board twice: once with the greedy
nearest-neighbor stringer, once with the random baseline.  The shape to
reproduce: both complete (or the random one degrades), and the random
stringing costs several times more CPU, wire and Lee effort.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table, percent_chan
from repro.core.router import GreedyRouter
from repro.stringer import Stringer, random_stringing
from repro.workloads import make_titan_board

NAME, SCALE, SEED = "nmc_6l", 0.30, 1
_results = {}


def _route(kind):
    board = make_titan_board(NAME, scale=SCALE, seed=SEED)
    if kind == "greedy":
        connections = Stringer(board).string_all()
    else:
        connections = random_stringing(board, seed=SEED)
    router = GreedyRouter(board)
    result = router.route(connections)
    return board, connections, result


@pytest.mark.parametrize("kind", ["greedy", "random"])
def test_stringing(kind, benchmark, record):
    board, connections, result = benchmark.pedantic(
        lambda: _route(kind), rounds=1, iterations=1
    )
    _results[kind] = (board, connections, result)
    if kind == "random":
        _report(record)


def _report(record):
    rows = []
    for kind in ("greedy", "random"):
        board, connections, result = _results[kind]
        rows.append(
            {
                "stringing": kind,
                "conn": len(connections),
                "pct_chan": round(percent_chan(board, connections), 1),
                "routed": result.routed_count,
                "pct_lee": round(result.percent_lee, 1),
                "rip_ups": result.rip_up_count,
                "lee_expansions": result.lee_expansions,
                "cpu_s": round(result.cpu_seconds, 2),
            }
        )
    record(
        "stringing",
        format_table(
            rows,
            title="E1: ordered vs random stringing "
            "(paper: same problem, 2 min vs 50 min = 25x)",
        ),
    )
    g_board, g_conns, greedy = _results["greedy"]
    r_board, r_conns, rand = _results["random"]
    # Random stringing presents a much harder problem...
    assert percent_chan(r_board, r_conns) > 1.5 * percent_chan(
        g_board, g_conns
    )
    # ...which costs far more routing effort.
    assert rand.cpu_seconds > 2.0 * greedy.cpu_seconds
    assert rand.percent_lee > greedy.percent_lee
    # The greedy-strung problem completes.
    assert greedy.complete
