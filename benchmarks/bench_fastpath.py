"""Fastpath backend: numpy-vs-python wall time under a parity assertion.

Routes Table 1 boards twice per round at ``workers=1`` — once with
``backend="python"`` (the zero-dependency default) and once with
``backend="numpy"`` (the :mod:`repro.core.fastpath` kernels) — and
records the wall-time ratio.  Every pair of runs must produce
*bit-identical* results: same ``routed_by``, same canonical workspace
state, same via-map probe count, same Lee expansion and cap-hit
counters.  Any divergence exits non-zero regardless of flags — parity
is not an opt-in gate.

Timing discipline matches ``bench_gap_cache.py``: rounds alternate
which backend goes first (ABBA), each leg keeps its best-of-N wall
time, and cyclic GC is disabled around the measured region.  CI's gate
(``--gate-ratio R --gate-board B``) fails the run when numpy wall time
exceeds ``R`` times python wall time on board ``B``.

Without numpy installed the benchmark reports a skip and exits zero —
the numpy backend is the optional ``pip install repro[fast]`` extra,
and its absence must not fail the pipeline.

Results land in ``BENCH_fastpath.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_fastpath.py --smoke \
        --gate-ratio 0.8 --gate-board kdj11_2l
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

try:
    import repro  # noqa: F401 - probe whether src/ is importable
except ImportError:  # direct script run without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

try:
    from benchmarks.ci_summary import append_table, gate_mark
except ImportError:  # run as a script: benchmarks/ is sys.path[0]
    from ci_summary import append_table, gate_mark

from repro.channels.workspace import RoutingWorkspace
from repro.core.fastpath import HAVE_NUMPY
from repro.core.router import RouterConfig, make_router
from repro.stringer import Stringer
from repro.workloads import TITAN_CONFIGS, make_titan_board

#: Scale of the Table 1 suite (matches bench_table1.py).
SUITE_SCALE = 0.30

#: Boards of the smoke configuration: the gate board plus two smaller
#: ones for shape coverage (a dense 2-layer and a mid-size 4-layer).
SMOKE_BOARDS = ("dpath", "coproc", "kdj11_2l")

#: Timing legs take the best of this many interleaved python/numpy
#: rounds — routing is deterministic, only runner noise varies, and
#: shared runners drift by tens of percent over a process lifetime.
TIMING_REPEATS = 5


def _route_once(name: str, backend: str) -> Tuple[float, Dict]:
    """Route one fresh board; returns (seconds, identity fingerprint).

    The fingerprint holds everything the parity contract covers; wall
    time is the only thing allowed to differ between backends.
    """
    board = make_titan_board(name, scale=SUITE_SCALE, seed=1)
    connections = Stringer(board).string_all()
    workspace = RoutingWorkspace(board)
    router = make_router(
        board, RouterConfig(backend=backend), workspace=workspace
    )
    gc.collect()
    gc.disable()
    started = time.perf_counter()
    result = router.route(connections)
    elapsed = time.perf_counter() - started
    gc.enable()
    fingerprint = {
        "connections": len(connections),
        "routed": len(result.routed_by),
        "complete": result.complete,
        "routed_by": {
            str(k): v.value for k, v in sorted(result.routed_by.items())
        },
        "lee_expansions": result.lee_expansions,
        "cap_hits": router.profile.counters.get("cap_hits", 0),
        "via_probes": workspace.via_map.probe_count,
        "state_digest": workspace.state_digest(),
    }
    return elapsed, fingerprint


def run_benchmark(smoke: bool = False) -> Dict:
    """The whole benchmark; returns the JSON-ready report dict."""
    boards = SMOKE_BOARDS if smoke else tuple(TITAN_CONFIGS)
    rows: List[Dict] = []
    for name in boards:
        py_s = np_s = None
        py_fp = np_fp = None
        for round_index in range(TIMING_REPEATS):
            # ABBA: alternate which backend runs first so neither leg
            # systematically lands in the slower half of a drifting
            # process.
            legs = (
                ("python", "numpy")
                if round_index % 2 == 0
                else ("numpy", "python")
            )
            for backend in legs:
                seconds, fingerprint = _route_once(name, backend)
                if backend == "python":
                    py_fp = fingerprint
                    py_s = seconds if py_s is None else min(py_s, seconds)
                else:
                    np_fp = fingerprint
                    np_s = seconds if np_s is None else min(np_s, seconds)
        row = {
            "board": name,
            "connections": py_fp["connections"],
            "python_seconds": round(py_s, 3),
            "numpy_seconds": round(np_s, 3),
            "ratio": round(np_s / py_s, 3) if py_s > 0 else None,
            "parity": py_fp == np_fp,
            "state_digest": py_fp["state_digest"][:16],
        }
        print(
            f"{row['board']:8s} conns={row['connections']:5d} "
            f"python={row['python_seconds']}s "
            f"numpy={row['numpy_seconds']}s ratio={row['ratio']}"
            f"{'' if row['parity'] else ' PARITY-MISMATCH'}",
            flush=True,
        )
        if not row["parity"]:
            for key in py_fp:
                if py_fp[key] != np_fp[key]:
                    print(
                        f"  mismatch {key}: python={py_fp[key]!r} "
                        f"numpy={np_fp[key]!r}",
                        flush=True,
                    )
        rows.append(row)
    py_total = sum(r["python_seconds"] for r in rows)
    np_total = sum(r["numpy_seconds"] for r in rows)
    return {
        "experiment": "fastpath",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "suite_scale": SUITE_SCALE,
        "timing_repeats": TIMING_REPEATS,
        "boards": rows,
        "summary": {
            "parity_all": all(r["parity"] for r in rows),
            "python_seconds": round(py_total, 3),
            "numpy_seconds": round(np_total, 3),
            "ratio": round(np_total / py_total, 3) if py_total > 0 else None,
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"route only the smoke boards {SMOKE_BOARDS}",
    )
    parser.add_argument(
        "--out",
        default="BENCH_fastpath.json",
        help="artifact path (default: BENCH_fastpath.json)",
    )
    parser.add_argument(
        "--gate-ratio",
        type=float,
        default=None,
        metavar="R",
        help="fail unless numpy wall <= R * python wall on the gate "
        "board (best-of-N interleaved, so runner noise is damped)",
    )
    parser.add_argument(
        "--gate-board",
        default="kdj11_2l",
        metavar="BOARD",
        help="board the --gate-ratio applies to (default: kdj11_2l)",
    )
    args = parser.parse_args(argv)
    if not HAVE_NUMPY:
        # The numpy backend is an optional extra; a runner without it
        # skips the comparison instead of failing the pipeline.
        print("SKIP: numpy not installed (pip install repro[fast])")
        with open(args.out, "w") as f:
            json.dump(
                {"experiment": "fastpath", "skipped": "numpy missing"}, f
            )
            f.write("\n")
        return 0
    report = run_benchmark(smoke=args.smoke)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    summary = report["summary"]
    print(
        f"wrote {args.out}: python={summary['python_seconds']}s "
        f"numpy={summary['numpy_seconds']}s ratio={summary['ratio']} "
        f"parity_all={summary['parity_all']}"
    )
    failures: List[str] = []
    board_ok = {row["board"]: row["parity"] for row in report["boards"]}
    if not summary["parity_all"]:
        failures.append("python/numpy parity broken (see mismatches above)")
    if args.gate_ratio is not None:
        gated = [r for r in report["boards"] if r["board"] == args.gate_board]
        if not gated:
            failures.append(f"gate board {args.gate_board} was not routed")
        elif gated[0]["ratio"] is None or gated[0]["ratio"] > args.gate_ratio:
            board_ok[args.gate_board] = False
            failures.append(
                f"{args.gate_board} numpy/python ratio "
                f"{gated[0]['ratio']} > {args.gate_ratio}"
            )
    append_table(
        "Fastpath backend (bench_fastpath)",
        ("board", "python", "numpy", "ratio", "gate", "status"),
        (
            (
                row["board"],
                f"{row['python_seconds']}s",
                f"{row['numpy_seconds']}s",
                row["ratio"],
                f"<= {args.gate_ratio}"
                if args.gate_ratio is not None
                and row["board"] == args.gate_board
                else "parity",
                gate_mark(board_ok[row["board"]]),
            )
            for row in report["boards"]
        ),
        note=f"suite ratio {summary['ratio']}, "
        f"parity_all={summary['parity_all']}",
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
