"""E11 — Section 4's via-map rationale: probes vastly outnumber updates.

Paper: "inquiries about the availability of via sites are two to four
orders of magnitude more frequent than updates of via site usage. ...
Since updates to the routing layers are much rarer than probes,
maintaining the via map results in significant performance improvements."

The instrumented via map counts both operations during routing (the
one-off pin installation is excluded — it is setup, not routing).  The
paper's ratio band belongs to its regime, where "well over 90% of CPU
time" goes to Lee searches on hundreds of connections; the benchmark
therefore measures both the normal strategy stack (optimal-dominated at
our reduced scale) and a Lee-only run that matches the paper's regime.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core.budget import RouteBudget
from repro.core.router import GreedyRouter, RouterConfig
from repro.stringer import Stringer
from repro.workloads import make_titan_board

MODES = ["full_stack", "lee_only"]
_stats = {}


def _run(mode):
    board = make_titan_board("tna", scale=0.30, seed=1)
    connections = Stringer(board).string_all()
    if mode == "lee_only":
        config = RouterConfig(
            enable_zero_via=False, enable_one_via=False,
            budget=RouteBudget(max_lee_expansions=8000),
        )
    else:
        config = RouterConfig()
    router = GreedyRouter(board, config)
    via_map = router.workspace.via_map
    # Exclude workspace setup (pin drilling) from the measurement.
    via_map.probe_count = 0
    via_map.update_count = 0
    result = router.route(connections)
    return result, via_map.probe_count, via_map.update_count


@pytest.mark.parametrize("mode", MODES)
def test_probe_update_ratio(mode, benchmark, record):
    result, probes, updates = benchmark.pedantic(
        lambda: _run(mode), rounds=1, iterations=1
    )
    _stats[mode] = {
        "probes": probes,
        "updates": updates,
        "ratio": probes / max(updates, 1),
        "routed": result.routed_count,
        "total": result.total_count,
    }
    if mode == MODES[-1]:
        _report(record)


def _report(record):
    rows = [
        {
            "mode": mode,
            "routed": f"{s['routed']}/{s['total']}",
            "probes": s["probes"],
            "updates": s["updates"],
            "ratio": round(s["ratio"], 1),
        }
        for mode, s in _stats.items()
    ]
    record(
        "via_map",
        format_table(
            rows,
            title="E11: via-map probe/update ratio during routing "
            "(paper: probes 100x-10000x more frequent; its boards "
            "spent >90% of CPU in Lee — the lee_only row)",
        ),
    )
    # The Lee-dominated regime must reach the paper's band.
    assert _stats["lee_only"]["ratio"] > 100
    # Probes outnumber updates even when optimal strategies dominate.
    assert _stats["full_stack"]["ratio"] > 2
