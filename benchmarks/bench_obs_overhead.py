"""O1 — Observability overhead: disabled tracing must stay under 3%.

Every emit site in the router is guarded by ``if sink.enabled:`` so a
run without tracing pays one attribute load per site and never builds an
event.  This benchmark quantifies that cost three ways:

* **wall clock** — route each board with the null sink and compare the
  median against the pre-PR baseline (measured at the commit before the
  event stream existed, on the same reference machine, recorded in
  ``PRE_PR_BASELINE`` below);
* **guard census** — route with a probe sink whose ``enabled`` is a
  counting property, giving the exact number of guard checks a routing
  run performs;
* **per-check cost** — time the guard itself in a tight loop and fold
  the census into an estimated overhead fraction that does not depend
  on run-to-run wall-clock noise.

Enabled-sink costs (ring buffer, JSONL) are measured and recorded for
context but not asserted — tracing is opt-in.

Results land in ``BENCH_obs.json``.  Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --out BENCH_obs.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

try:
    import repro  # noqa: F401 - probe whether src/ is importable
except ImportError:  # direct script run without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

try:
    from benchmarks.ci_summary import append_table, gate_mark
except ImportError:  # run as a script: benchmarks/ is sys.path[0]
    from ci_summary import append_table, gate_mark

from repro.board.board import Board
from repro.board.nets import Connection
from repro.core.router import GreedyRouter, RouterConfig
from repro.obs.sinks import EventSink, JsonlSink, RingBufferSink
from repro.stringer import Stringer
from repro.workloads import (
    BoardSpec,
    NetlistSpec,
    generate_board,
    make_titan_board,
)

#: Median route() seconds measured at the commit *before* the event
#: stream existed (no guard sites at all), same boards, same machine the
#: PR was developed on.  These anchor the wall-clock overhead check; on
#: other hardware the guard-census estimate is the stable signal.
PRE_PR_BASELINE = {
    "tna": 0.1071,
    "dcache": 0.0386,
    "wavelocal_120": 0.4869,
}

THRESHOLD_PCT = 3.0
REPEATS = 5


class GuardProbeSink(EventSink):
    """Counts guard checks: ``enabled`` is a property that tallies reads."""

    def __init__(self) -> None:
        self.checks = 0

    @property  # type: ignore[override]
    def enabled(self) -> bool:
        self.checks += 1
        return False

    def emit(self, event) -> None:  # pragma: no cover - never enabled
        raise AssertionError("probe sink must never receive events")


def _titan_problem(name: str) -> Callable:
    def build() -> Tuple[Board, List[Connection]]:
        board = make_titan_board(name, scale=0.30, seed=1)
        return board, Stringer(board).string_all()

    return build


def _local_problem() -> Callable:
    spec = BoardSpec(
        name="wavelocal",
        via_nx=120,
        via_ny=120,
        n_signal_layers=6,
        netlist=NetlistSpec(locality=0.9, local_radius=10, seed=7),
        seed=7,
    )

    def build() -> Tuple[Board, List[Connection]]:
        board = generate_board(spec)
        return board, Stringer(board).string_all()

    return build


def suite_boards(smoke: bool) -> List[Tuple[str, Callable]]:
    boards = [("tna", _titan_problem("tna")), ("dcache", _titan_problem("dcache"))]
    if not smoke:
        boards.append(("wavelocal_120", _local_problem()))
    return boards


def _route_seconds(build: Callable, sink, repeats: int) -> float:
    """Median wall seconds to route the board with the given sink."""
    samples = []
    for _ in range(repeats):
        board, connections = build()
        router = GreedyRouter(board, RouterConfig(), sink=sink)
        started = time.perf_counter()
        router.route(connections)
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def _guard_check_cost_ns(loops: int = 2_000_000) -> float:
    """Nanoseconds per ``if sink.enabled:`` check on the null sink."""
    from repro.obs.sinks import NULL_SINK

    sink = NULL_SINK
    started = time.perf_counter()
    acc = 0
    for _ in range(loops):
        if sink.enabled:
            acc += 1  # pragma: no cover - never taken
    elapsed = time.perf_counter() - started
    return elapsed / loops * 1e9


def run_board(name: str, build: Callable, repeats: int) -> Dict:
    null_median = _route_seconds(build, None, repeats)

    ring = RingBufferSink()
    ring_median = _route_seconds(build, ring, max(1, repeats // 2))

    with tempfile.NamedTemporaryFile("w", suffix=".jsonl") as tmp:
        jsonl = JsonlSink(tmp.name)
        jsonl_median = _route_seconds(build, jsonl, max(1, repeats // 2))
        jsonl.close()

    probe = GuardProbeSink()
    board, connections = build()
    GreedyRouter(board, RouterConfig(), sink=probe).route(connections)

    per_check_ns = _guard_check_cost_ns()
    estimated_overhead_pct = (
        probe.checks * per_check_ns / 1e9 / null_median * 100
        if null_median > 0
        else 0.0
    )
    baseline = PRE_PR_BASELINE.get(name)
    overhead_vs_baseline_pct = (
        (null_median - baseline) / baseline * 100
        if baseline
        else None
    )
    return {
        "board": name,
        "connections": len(connections),
        "null_median_s": round(null_median, 4),
        "ring_median_s": round(ring_median, 4),
        "jsonl_median_s": round(jsonl_median, 4),
        "ring_events": len(ring),
        "guard_checks": probe.checks,
        "guard_check_ns": round(per_check_ns, 2),
        "estimated_overhead_pct": round(estimated_overhead_pct, 4),
        "baseline_pre_pr_s": baseline,
        "overhead_vs_baseline_pct": (
            round(overhead_vs_baseline_pct, 2)
            if overhead_vs_baseline_pct is not None
            else None
        ),
    }


def run_benchmark(smoke: bool, repeats: int) -> Dict:
    rows = []
    for name, build in suite_boards(smoke):
        row = run_board(name, build, repeats)
        print(
            f"{row['board']:14s} conns={row['connections']:5d} "
            f"null={row['null_median_s']}s "
            f"ring={row['ring_median_s']}s "
            f"jsonl={row['jsonl_median_s']}s "
            f"guards={row['guard_checks']} "
            f"est_overhead={row['estimated_overhead_pct']}%",
            flush=True,
        )
        rows.append(row)
    estimates = [r["estimated_overhead_pct"] for r in rows]
    wall = [
        r["overhead_vs_baseline_pct"]
        for r in rows
        if r["overhead_vs_baseline_pct"] is not None
    ]
    return {
        "experiment": "obs_disabled_overhead",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "threshold_pct": THRESHOLD_PCT,
        "baseline_pre_pr": PRE_PR_BASELINE,
        "boards": rows,
        "summary": {
            "max_estimated_overhead_pct": round(max(estimates), 4),
            "max_wall_overhead_vs_baseline_pct": (
                round(max(wall), 2) if wall else None
            ),
            "pass": max(estimates) < THRESHOLD_PCT,
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small boards only (the CI perf-smoke configuration)",
    )
    parser.add_argument(
        "--repeats", type=int, default=REPEATS, help="samples per median"
    )
    parser.add_argument(
        "--out",
        default="BENCH_obs.json",
        help="artifact path (default: BENCH_obs.json)",
    )
    parser.add_argument(
        "--assert-wall-clock",
        action="store_true",
        help="also fail if the measured wall-clock overhead vs the "
        "recorded pre-PR baseline exceeds the threshold (reference "
        "machine only; noisy elsewhere)",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(smoke=args.smoke, repeats=args.repeats)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    summary = report["summary"]
    print(
        f"wrote {args.out}: max estimated overhead "
        f"{summary['max_estimated_overhead_pct']}% "
        f"(threshold {THRESHOLD_PCT}%), wall vs pre-PR baseline "
        f"{summary['max_wall_overhead_vs_baseline_pct']}%"
    )
    append_table(
        "Observability overhead (bench_obs_overhead)",
        ("board", "null sink", "est. overhead", "gate", "status"),
        (
            (
                row["board"],
                f"{row['null_median_s']}s",
                f"{row['estimated_overhead_pct']}%",
                f"<= {THRESHOLD_PCT}%",
                gate_mark(
                    row["estimated_overhead_pct"] <= THRESHOLD_PCT
                ),
            )
            for row in report["boards"]
        ),
    )
    if not summary["pass"]:
        print(
            f"FAIL: estimated disabled-tracing overhead exceeds "
            f"{THRESHOLD_PCT}%",
            file=sys.stderr,
        )
        return 1
    if args.assert_wall_clock:
        wall = summary["max_wall_overhead_vs_baseline_pct"]
        if wall is not None and wall > THRESHOLD_PCT:
            print(
                f"FAIL: wall-clock overhead {wall}% exceeds "
                f"{THRESHOLD_PCT}% vs pre-PR baseline",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
