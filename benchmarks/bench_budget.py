"""B1 — Budget enforcement: zero-overhead checkpoints, graceful deadline.

Three legs:

* **parity** — a run with enormous (never-exhausted) wall-clock limits
  must route exactly the same connection set as an unbudgeted run.  The
  checkpoint branches are taken; the routing must not notice.  Always
  asserted.
* **overhead** — wall-clock cost of those checkpoint branches, measured
  as (timed - untimed) / untimed over the same board.  Recorded in the
  JSON; asserted only with ``--assert-overhead`` (target < 2%) because
  single-run wall clocks are noisy on shared runners.
* **deadline** — the hard board (kdj11_2l) under a deadline it cannot
  meet.  The call must return (never raise) a partial result with
  ``stopped_reason`` set, a clean :class:`WorkspaceAuditor` verdict, and
  a ``budget_exhausted`` event in the sink.  Always asserted.

Results land in ``BENCH_budget.json`` for the CI artifact trail.

Usage::

    PYTHONPATH=src python benchmarks/bench_budget.py --smoke
    PYTHONPATH=src python benchmarks/bench_budget.py --out BENCH_budget.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

try:
    import repro  # noqa: F401 - probe whether src/ is importable
except ImportError:  # direct script run without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

try:
    from benchmarks.ci_summary import append_table, gate_mark
except ImportError:  # run as a script: benchmarks/ is sys.path[0]
    from ci_summary import append_table, gate_mark

from repro.board.board import Board
from repro.board.nets import Connection
from repro.core.budget import RouteBudget
from repro.core.router import GreedyRouter, RouterConfig
from repro.obs import RingBufferSink, WorkspaceAuditor
from repro.stringer import Stringer
from repro.workloads import TITAN_CONFIGS, make_titan_board

#: Scale of the parity/overhead suite (matches bench_table1.py).
SUITE_SCALE = 0.30

#: Never-exhausted limits: every checkpoint branch taken, none firing.
HUGE = RouteBudget(deadline_seconds=1e9, per_connection_seconds=1e9)

#: The deadline leg: the hard board, big enough that 2 s cannot finish.
DEADLINE_BOARD = "kdj11_2l"
DEADLINE_SCALE = 0.45
DEADLINE_SECONDS = 2.0


def _problem(name: str, scale: float) -> Tuple[Board, List[Connection]]:
    board = make_titan_board(name, scale=scale, seed=1)
    return board, Stringer(board).string_all()


def _route(
    name: str, scale: float, budget: Optional[RouteBudget]
) -> Tuple[float, object]:
    board, connections = _problem(name, scale)
    config = RouterConfig() if budget is None else RouterConfig(budget=budget)
    router = GreedyRouter(board, config)
    started = time.perf_counter()
    result = router.route(connections)
    return time.perf_counter() - started, result


def run_parity_and_overhead(boards: List[str], reps: int = 3) -> Dict:
    """Unbudgeted vs huge-budget: identical routing, measured overhead.

    Each variant is routed ``reps`` times and the *minimum* wall clock
    kept — single runs are dominated by allocator warmup and scheduler
    noise at these problem sizes.
    """
    rows = []
    for name in boards:
        # Interleave the variants so clock-frequency drift across the
        # measurement window biases neither side.
        plain_runs, timed_runs = [], []
        for _ in range(reps):
            plain_runs.append(_route(name, SUITE_SCALE, None))
            timed_runs.append(_route(name, SUITE_SCALE, HUGE))
        plain_seconds, plain = min(plain_runs, key=lambda pair: pair[0])
        timed_seconds, timed = min(timed_runs, key=lambda pair: pair[0])
        parity = (
            plain.routed_by == timed.routed_by
            and plain.failed == timed.failed
        )
        overhead = (
            (timed_seconds - plain_seconds) / plain_seconds
            if plain_seconds > 0
            else 0.0
        )
        rows.append(
            {
                "board": name,
                "connections": plain.total_count,
                "routed": plain.routed_count,
                "plain_seconds": round(plain_seconds, 3),
                "timed_seconds": round(timed_seconds, 3),
                "overhead_pct": round(100.0 * overhead, 2),
                "parity": parity,
            }
        )
        print(
            f"{name:14s} plain={plain_seconds:.3f}s "
            f"timed={timed_seconds:.3f}s "
            f"overhead={100.0 * overhead:+.2f}% "
            f"{'ok' if parity else 'PARITY-MISMATCH'}",
            flush=True,
        )
    return {
        "rows": rows,
        "parity_all": all(r["parity"] for r in rows),
        # Total-time ratio, not mean-of-ratios: small boards' noise would
        # otherwise swamp the signal.
        "overhead_pct": round(
            100.0
            * (
                sum(r["timed_seconds"] for r in rows)
                / max(sum(r["plain_seconds"] for r in rows), 1e-9)
                - 1.0
            ),
            2,
        ),
    }


def run_deadline(scale: float) -> Dict:
    """The graceful-degradation contract under an impossible deadline."""
    board, connections = _problem(DEADLINE_BOARD, scale)
    sink = RingBufferSink()
    router = GreedyRouter(
        board,
        RouterConfig(budget=RouteBudget(deadline_seconds=DEADLINE_SECONDS)),
        sink=sink,
    )
    started = time.perf_counter()
    result = router.route(connections)  # must not raise
    seconds = time.perf_counter() - started
    audit = WorkspaceAuditor(router.workspace).audit()
    exhausted = sink.by_kind("budget_exhausted")
    row = {
        "board": DEADLINE_BOARD,
        "scale": scale,
        "deadline_seconds": DEADLINE_SECONDS,
        "wall_seconds": round(seconds, 3),
        "routed": result.routed_count,
        "total": result.total_count,
        "stopped_reason": result.stopped_reason,
        "audit_ok": audit.ok,
        "budget_exhausted_events": len(exhausted),
        "failure_reasons": sorted(set(result.failure_reasons.values())),
    }
    row["ok"] = (
        result.stopped_reason == "deadline"
        and audit.ok
        and len(exhausted) >= 1
        and not result.complete
        and result.routed_count > 0  # partial, not empty
    )
    print(
        f"{DEADLINE_BOARD:14s} deadline={DEADLINE_SECONDS}s "
        f"wall={seconds:.3f}s routed={result.routed_count}/"
        f"{result.total_count} stopped={result.stopped_reason} "
        f"audit={'ok' if audit.ok else 'FAIL'}",
        flush=True,
    )
    return row


def run_benchmark(smoke: bool = False) -> Dict:
    boards = ["tna", "icache"] if smoke else list(TITAN_CONFIGS)
    parity = run_parity_and_overhead(boards, reps=2 if smoke else 3)
    deadline = run_deadline(DEADLINE_SCALE)
    return {
        "experiment": "budget_enforcement",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "suite_scale": SUITE_SCALE,
        "parity": parity,
        "deadline": deadline,
        "summary": {
            "parity_all": parity["parity_all"],
            "overhead_pct": parity["overhead_pct"],
            "deadline_graceful": deadline["ok"],
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="two boards only (the CI timeout-smoke configuration)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_budget.json",
        help="artifact path (default: BENCH_budget.json)",
    )
    parser.add_argument(
        "--assert-overhead",
        type=float,
        default=None,
        metavar="PCT",
        help="fail if checkpoint overhead exceeds PCT percent "
        "(opt-in: single-run wall clocks are noisy on shared runners)",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(smoke=args.smoke)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    summary = report["summary"]
    print(
        f"wrote {args.out}: parity_all={summary['parity_all']} "
        f"overhead={summary['overhead_pct']:+.2f}% "
        f"deadline_graceful={summary['deadline_graceful']}"
    )
    deadline = report["deadline"]
    append_table(
        "Budget enforcement (bench_budget)",
        ("leg", "measured", "gate", "status"),
        [
            (
                "parity+overhead",
                f"{summary['overhead_pct']:+.2f}% overhead",
                "parity always; overhead "
                + (
                    f"<= {args.assert_overhead}%"
                    if args.assert_overhead is not None
                    else "recorded"
                ),
                gate_mark(
                    summary["parity_all"]
                    and (
                        args.assert_overhead is None
                        or summary["overhead_pct"] <= args.assert_overhead
                    )
                ),
            ),
            (
                f"deadline ({deadline['board']})",
                f"{deadline['routed']}/{deadline['total']} in "
                f"{deadline['wall_seconds']}s",
                "graceful partial, clean audit",
                gate_mark(summary["deadline_graceful"]),
            ),
        ],
    )
    if not summary["parity_all"]:
        print("FAIL: budgeted routing diverged from unbudgeted", file=sys.stderr)
        return 1
    if not summary["deadline_graceful"]:
        print("FAIL: deadline degradation contract broken", file=sys.stderr)
        return 1
    if (
        args.assert_overhead is not None
        and summary["overhead_pct"] > args.assert_overhead
    ):
        print(
            f"FAIL: checkpoint overhead {summary['overhead_pct']}% > "
            f"{args.assert_overhead}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
