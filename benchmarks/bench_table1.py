"""T1 — Table 1: route all nine board rows and compare shapes.

Paper (VAX 11/785 minutes, full-scale boards)::

    board    layers conn  %chan  %lee  ripups  vias  CPUmin
    kdj11       2   1184  76.7     -      -      -   >300 (FAIL)
    nmc         4   2253  52.3    14     20    .99   28.5
    dpath       6   5533  46.0     8      1    .65   21.5
    coproc      6   5937  40.5     6      0    .62   11.3
    kdj11       4   1184  38.4     8      0    .70    4.6
    icache      6   5795  36.5     3      0    .41    6.1
    nmc         6   2253  34.9     3      0    .68    2.2
    dcache      6   5738  33.5     2      0    .40    5.2
    tna         6   2789  27.1     3      6    .50    4.8

The reproduction runs geometrically scaled synthetic stand-ins (see
DESIGN.md §2); absolute counts differ, but the shape must hold: the
2-layer kdj11 fails, its 4-layer twin routes, %lee and rip-ups grow with
problem difficulty, and vias/connection stays below 1 on every
successfully routed board.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table, table1_row
from repro.core.router import GreedyRouter
from repro.workloads import TITAN_CONFIGS

from benchmarks.conftest import routed_problem

SCALE = 0.30
_rows = {}

ROW_ORDER = list(TITAN_CONFIGS)


@pytest.mark.parametrize("name", ROW_ORDER)
def test_table1_row(name, benchmark, record):
    config = TITAN_CONFIGS[name]
    board, connections = routed_problem(name, scale=SCALE)

    def run():
        router = GreedyRouter(board)
        return router.route(connections)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    row = table1_row(board, connections, result)
    _rows[name] = (config, row, result)

    paper = config.paper
    if paper.failed:
        # The 2-layer kdj11 must show clear distress: incomplete, or
        # drowning in rip-ups relative to its size.
        assert (not result.complete) or (
            result.rip_up_count > 0.3 * result.total_count
        ), "2-layer board routed too easily; density calibration is off"
    else:
        assert result.complete, f"{name} failed: {len(result.failed)} unrouted"
        # Table 1: "The vias column ... is below 1 for all examples".
        assert result.vias_per_connection < 1.0

    if name == ROW_ORDER[-1]:
        _report(record)


def _report(record):
    rows = []
    for name in ROW_ORDER:
        if name not in _rows:
            continue
        config, row, result = _rows[name]
        paper = config.paper
        rows.append(
            {
                "board": name,
                "layers": row["layers"],
                "conn": row["conn"],
                "pct_chan": row["pct_chan"],
                "pct_lee": row["pct_lee"],
                "rip_ups": row["rip_ups"],
                "vias": row["vias"],
                "cpu_s": row["cpu_s"],
                "ok": row["complete"],
                "paper_lee": paper.percent_lee,
                "paper_rip": paper.rip_ups,
                "paper_vias": paper.vias_per_conn,
                "paper_cpu_min": paper.cpu_minutes,
            }
        )
    record(
        "table1",
        format_table(
            rows,
            title=f"T1: Table 1 reproduction (scale {SCALE}, seed 1); "
            "paper_* columns are the full-scale published values",
        ),
    )
    # Cross-row shape assertions once all rows ran.
    if len(_rows) == len(ROW_ORDER):
        results = {n: _rows[n][2] for n in ROW_ORDER}
        # The same problem gets easier with more layers (rows 1 vs 5).
        assert (
            results["kdj11_4l"].completion_rate
            >= results["kdj11_2l"].completion_rate
        )
        assert results["nmc_4l"].percent_lee >= results["nmc_6l"].percent_lee
        # Denser boards lean harder on Lee: the top passing row must use
        # Lee at least as much as the easiest rows.
        assert results["nmc_4l"].percent_lee >= results["dcache"].percent_lee
