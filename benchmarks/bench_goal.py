"""Goal-oriented search: classic-vs-goal expansions and wall time.

Routes Table 1 boards twice per round at ``workers=1`` — once with
``search="classic"`` (the paper's multiplicative wavefront heuristic)
and once with ``search="goal"`` (A* over the reusable lower bounds of
:mod:`repro.core.bounds`) — and records the Lee-expansion and
wall-time ratios.  The two modes legitimately produce different (both
valid) routes, so the contract between them is *completion*: goal mode
must route at least as many connections as classic on the gate board.

Parity *within* goal mode is asserted unconditionally, mirroring the
repo's existing guarantees:

* python vs numpy backends — bit-identical fingerprints (routed_by,
  state digest, expansions), skipped without numpy;
* workers 1 vs 4 (forced pool) — identical routed set and completion,
  the parallel-router criterion for complete runs.

A warm-bounds ECO leg reroutes an edited session and checks the
:class:`repro.core.bounds.LowerBoundCache` carries across the edit: a
no-op reroute takes the fast path (zero lookups) and a one-net edit
rebuilds strictly fewer entries than the cold route did.

Timing discipline matches ``bench_fastpath.py``: ABBA rounds,
best-of-N per leg, cyclic GC disabled around the measured region.
CI's gates fail the run when, on the gate board, goal mode routes
fewer connections than classic, expands more than
``--gate-expansions`` times classic's Lee expansions, or takes more
than ``--gate-wall`` times classic's wall time.

Results land in ``BENCH_goal.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_goal.py --smoke \
        --gate-expansions 0.75 --gate-wall 0.85
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

try:
    import repro  # noqa: F401 - probe whether src/ is importable
except ImportError:  # direct script run without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

try:
    from benchmarks.ci_summary import append_table, gate_mark
except ImportError:  # run as a script: benchmarks/ is sys.path[0]
    from ci_summary import append_table, gate_mark

from repro.api import RouteRequest, begin_eco, route
from repro.channels.workspace import RoutingWorkspace
from repro.core.fastpath import HAVE_NUMPY
from repro.core.router import RouterConfig, make_router
from repro.stringer import Stringer
from repro.workloads import make_titan_board

#: Scale of the comparison suite (matches bench_table1.py); the seed is
#: pinned because completion deltas between the modes vary by a few
#: connections across stringer seeds — the gate criterion is defined at
#: this exact workload.
SUITE_SCALE = 0.30
SUITE_SEED = 1

#: Boards of the smoke configuration: the gate board only — the smaller
#: Table 1 boards route mostly via the optimal strategies and carry too
#: little Lee load to measure the search against.
SMOKE_BOARDS = ("kdj11_2l",)
FULL_BOARDS = ("dpath", "coproc", "kdj11_2l")

#: The ECO leg uses a scale at which the board routes to completion, so
#: the no-op reroute can prove the zero-lookup fast path.
ECO_SCALE = 0.25
ECO_SEED = 3

#: Timing legs take the best of this many interleaved classic/goal
#: rounds — routing is deterministic, only runner noise varies.
TIMING_REPEATS = 5


def _route_once(
    name: str, search: str, backend: str = "python", workers: int = 1
) -> Tuple[float, Dict]:
    """Route one fresh board; returns (seconds, fingerprint)."""
    board = make_titan_board(name, scale=SUITE_SCALE, seed=SUITE_SEED)
    connections = Stringer(board).string_all()
    workspace = RoutingWorkspace(board)
    config = RouterConfig(search=search, backend=backend, workers=workers)
    if workers > 1:
        config = RouterConfig(
            search=search,
            backend=backend,
            workers=workers,
            pool_auto_serial=False,
        )
    router = make_router(board, config, workspace=workspace)
    gc.collect()
    gc.disable()
    started = time.perf_counter()
    result = router.route(connections)
    elapsed = time.perf_counter() - started
    gc.enable()
    fingerprint = {
        "connections": len(connections),
        "routed": len(result.routed_by),
        "complete": result.complete,
        "routed_by": {
            str(k): v.value for k, v in sorted(result.routed_by.items())
        },
        "lee_expansions": result.lee_expansions,
        "state_digest": workspace.state_digest(),
    }
    return elapsed, fingerprint


def _compare_board(name: str) -> Dict:
    """Best-of-N ABBA classic-vs-goal comparison on one board."""
    classic_s = goal_s = None
    classic_fp = goal_fp = None
    for round_index in range(TIMING_REPEATS):
        legs = (
            ("classic", "goal")
            if round_index % 2 == 0
            else ("goal", "classic")
        )
        for search in legs:
            seconds, fingerprint = _route_once(name, search)
            if search == "classic":
                classic_fp = fingerprint
                classic_s = (
                    seconds if classic_s is None else min(classic_s, seconds)
                )
            else:
                goal_fp = fingerprint
                goal_s = seconds if goal_s is None else min(goal_s, seconds)
    row = {
        "board": name,
        "connections": classic_fp["connections"],
        "classic_routed": classic_fp["routed"],
        "goal_routed": goal_fp["routed"],
        "classic_expansions": classic_fp["lee_expansions"],
        "goal_expansions": goal_fp["lee_expansions"],
        "expansion_ratio": (
            round(goal_fp["lee_expansions"] / classic_fp["lee_expansions"], 3)
            if classic_fp["lee_expansions"]
            else None
        ),
        "classic_seconds": round(classic_s, 3),
        "goal_seconds": round(goal_s, 3),
        "wall_ratio": round(goal_s / classic_s, 3) if classic_s > 0 else None,
    }
    print(
        f"{row['board']:8s} conns={row['connections']:5d} "
        f"routed {row['classic_routed']}->{row['goal_routed']} "
        f"expansions {row['classic_expansions']}->{row['goal_expansions']} "
        f"(x{row['expansion_ratio']}) wall x{row['wall_ratio']}",
        flush=True,
    )
    return row


def _goal_parity(name: str) -> Dict:
    """Backend and worker parity within goal mode on one board."""
    _, py_fp = _route_once(name, "goal", backend="python")
    backend_parity = None
    if HAVE_NUMPY:
        _, np_fp = _route_once(name, "goal", backend="numpy")
        backend_parity = py_fp == np_fp
        if not backend_parity:
            for key in py_fp:
                if py_fp[key] != np_fp[key]:
                    print(
                        f"  goal backend mismatch {key}: "
                        f"python={py_fp[key]!r} numpy={np_fp[key]!r}",
                        flush=True,
                    )
    _, par_fp = _route_once(name, "goal", workers=4)
    worker_parity = (
        set(par_fp["routed_by"]) == set(py_fp["routed_by"])
        and par_fp["complete"] == py_fp["complete"]
    )
    if not worker_parity:
        print(
            f"  goal worker mismatch: serial routed {py_fp['routed']} "
            f"complete={py_fp['complete']}, workers=4 routed "
            f"{par_fp['routed']} complete={par_fp['complete']}",
            flush=True,
        )
    return {
        "board": name,
        "backend_parity": backend_parity,  # None = numpy unavailable
        "worker_parity": worker_parity,
    }


def _eco_warm_bounds() -> Dict:
    """Warm lower-bound reuse across an EcoSession edit boundary."""
    board = make_titan_board("kdj11_2l", scale=ECO_SCALE, seed=ECO_SEED)
    connections = Stringer(board).string_all()
    request = RouteRequest(
        board=board,
        connections=connections,
        config=RouterConfig(search="goal"),
    )
    response = route(request)
    session = begin_eco(request, response)
    cold_hits, cold_rebuilds = session.workspace.bounds_stats()

    session.reroute()  # no edits: must take the zero-lookup fast path
    noop_hits, noop_rebuilds = session.workspace.bounds_stats()

    # Edit a net the cold route needed the Lee search for — cutting a
    # zero/one-via net would reroute without ever consulting the bounds
    # and prove nothing about warm reuse.
    from repro.core.result import Strategy

    lee_conns = {
        conn_id
        for conn_id, strategy in response.result.routed_by.items()
        if strategy is Strategy.LEE
    }
    net_by_conn = {c.conn_id: c.net_id for c in connections}
    net_id = next(
        net_by_conn[conn_id]
        for conn_id in sorted(lee_conns)
        if conn_id in net_by_conn
    )
    net = next(n for n in session.board.nets if n.net_id == net_id)
    pins = list(net.pin_ids)
    session.cut_nets([net.net_id])
    session.add_nets([pins])
    session.reroute()
    warm_hits, warm_rebuilds = session.workspace.bounds_stats()

    row = {
        "complete_cold": response.result.complete,
        "cold_rebuilds": cold_rebuilds,
        "noop_lookups": (noop_hits - cold_hits)
        + (noop_rebuilds - cold_rebuilds),
        "edit_rebuilds": warm_rebuilds - noop_rebuilds,
        "edit_hits": warm_hits - noop_hits,
    }
    # Warm reuse holds when the untouched board pays zero lookups, the
    # edited reroute actually consulted the cache, and it rebuilt
    # strictly fewer entries than the cold route — the edit's rip-up
    # only staled the bands it touched.
    row["warm_reuse"] = (
        bool(row["complete_cold"])
        and row["noop_lookups"] == 0
        and row["edit_rebuilds"] + row["edit_hits"] > 0
        and row["edit_rebuilds"] < row["cold_rebuilds"]
    )
    print(
        f"eco      cold_rebuilds={row['cold_rebuilds']} "
        f"noop_lookups={row['noop_lookups']} "
        f"edit_rebuilds={row['edit_rebuilds']} "
        f"warm_reuse={row['warm_reuse']}",
        flush=True,
    )
    return row


def run_benchmark(smoke: bool = False) -> Dict:
    """The whole benchmark; returns the JSON-ready report dict."""
    boards = SMOKE_BOARDS if smoke else FULL_BOARDS
    rows = [_compare_board(name) for name in boards]
    parity = _goal_parity("kdj11_2l")
    eco = _eco_warm_bounds()
    return {
        "experiment": "goal",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "suite_scale": SUITE_SCALE,
        "suite_seed": SUITE_SEED,
        "timing_repeats": TIMING_REPEATS,
        "boards": rows,
        "parity": parity,
        "eco": eco,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"route only the smoke boards {SMOKE_BOARDS}",
    )
    parser.add_argument(
        "--out",
        default="BENCH_goal.json",
        help="artifact path (default: BENCH_goal.json)",
    )
    parser.add_argument(
        "--gate-expansions",
        type=float,
        default=None,
        metavar="R",
        help="fail unless goal Lee expansions <= R * classic on the "
        "gate board",
    )
    parser.add_argument(
        "--gate-wall",
        type=float,
        default=None,
        metavar="R",
        help="fail unless goal wall <= R * classic wall on the gate "
        "board (best-of-N interleaved, so runner noise is damped)",
    )
    parser.add_argument(
        "--gate-board",
        default="kdj11_2l",
        metavar="BOARD",
        help="board the ratio gates apply to (default: kdj11_2l)",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(smoke=args.smoke)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    failures: List[str] = []
    parity = report["parity"]
    if parity["backend_parity"] is False:
        failures.append("goal-mode python/numpy parity broken")
    if not parity["worker_parity"]:
        failures.append("goal-mode workers 1-vs-4 parity broken")
    if not report["eco"]["warm_reuse"]:
        failures.append(
            "ECO warm-bound reuse broken "
            f"(noop_lookups={report['eco']['noop_lookups']}, "
            f"edit_rebuilds={report['eco']['edit_rebuilds']}, "
            f"cold_rebuilds={report['eco']['cold_rebuilds']})"
        )
    board_ok = {row["board"]: True for row in report["boards"]}
    gated = [r for r in report["boards"] if r["board"] == args.gate_board]
    if args.gate_expansions is not None or args.gate_wall is not None:
        if not gated:
            failures.append(f"gate board {args.gate_board} was not routed")
    if gated:
        row = gated[0]
        if row["goal_routed"] < row["classic_routed"]:
            board_ok[args.gate_board] = False
            failures.append(
                f"{args.gate_board} goal completion regressed: "
                f"{row['goal_routed']} < {row['classic_routed']}"
            )
        if (
            args.gate_expansions is not None
            and (
                row["expansion_ratio"] is None
                or row["expansion_ratio"] > args.gate_expansions
            )
        ):
            board_ok[args.gate_board] = False
            failures.append(
                f"{args.gate_board} goal/classic expansion ratio "
                f"{row['expansion_ratio']} > {args.gate_expansions}"
            )
        if args.gate_wall is not None and (
            row["wall_ratio"] is None or row["wall_ratio"] > args.gate_wall
        ):
            board_ok[args.gate_board] = False
            failures.append(
                f"{args.gate_board} goal/classic wall ratio "
                f"{row['wall_ratio']} > {args.gate_wall}"
            )
    append_table(
        "Goal-oriented search (bench_goal)",
        (
            "board",
            "routed (classic→goal)",
            "expansions",
            "wall",
            "gate",
            "status",
        ),
        (
            (
                row["board"],
                f"{row['classic_routed']}→{row['goal_routed']}",
                f"x{row['expansion_ratio']}",
                f"x{row['wall_ratio']}",
                (
                    f"exp <= {args.gate_expansions}, "
                    f"wall <= {args.gate_wall}"
                    if row["board"] == args.gate_board
                    else "—"
                ),
                gate_mark(board_ok[row["board"]]),
            )
            for row in report["boards"]
        ),
        note=(
            f"goal parity: backend={parity['backend_parity']}, "
            f"workers={parity['worker_parity']}; ECO warm reuse: "
            f"cold_rebuilds={report['eco']['cold_rebuilds']}, "
            f"noop_lookups={report['eco']['noop_lookups']}, "
            f"edit_rebuilds={report['eco']['edit_rebuilds']}"
        ),
    )
    summary_line = (
        f"wrote {args.out}: "
        + ", ".join(
            f"{r['board']} exp x{r['expansion_ratio']} "
            f"wall x{r['wall_ratio']}"
            for r in report["boards"]
        )
    )
    print(summary_line)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
