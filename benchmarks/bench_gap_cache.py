"""C1 — Generation-stamped free-gap cache: wall time and hit rate.

Routes the Table 1 suite twice per board at ``workers=1`` — once with
the :class:`repro.channels.gap_cache.GapCache` disabled (the pre-cache
recompute-per-search behaviour) and once with it enabled (the default) —
and records the wall-time improvement plus the cache hit rate of the
enabled run.  Cached and uncached runs must complete exactly the same
connection set; any divergence exits non-zero.

``--audit`` additionally re-routes every board under full invariant
auditing (``GRR_AUDIT`` semantics) both serially and at ``workers=4``,
proving the cache never serves a stale gap list in either execution
mode — the auditor re-derives the channel state the cache claims.

Results land in ``BENCH_cache.json``.  The hit-rate assertion
(``--assert-hit-rate``) is CI's gate; the wall-clock assertions are
opt-in because shared runners make timings noisy:
``--assert-improvement`` floors the suite-total win, and
``--assert-board-floor`` caps the *regression* any single board may
show (the small-channel bypass exists precisely so tiny boards never
pay for the memo machinery they cannot use).

Usage::

    PYTHONPATH=src python benchmarks/bench_gap_cache.py --smoke
    PYTHONPATH=src python benchmarks/bench_gap_cache.py \
        --audit --assert-hit-rate 0.80
"""

from __future__ import annotations

import argparse
import dataclasses
import gc
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

try:
    import repro  # noqa: F401 - probe whether src/ is importable
except ImportError:  # direct script run without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

try:
    from benchmarks.ci_summary import append_table, gate_mark
except ImportError:  # run as a script: benchmarks/ is sys.path[0]
    from ci_summary import append_table, gate_mark

from repro.channels.workspace import RoutingWorkspace
from repro.core.router import RouterConfig, make_router
from repro.stringer import Stringer
from repro.workloads import TITAN_CONFIGS, make_titan_board

#: Scale of the Table 1 suite (matches bench_table1.py).
SUITE_SCALE = 0.30

#: Worker count of the parallel audit leg.
AUDIT_WORKERS = 4

#: Timing legs take the best of this many interleaved off/on rounds —
#: routing is deterministic, only runner noise varies.  Shared runners
#: drift by tens of percent over a process lifetime, so rounds alternate
#: which configuration goes first (ABBA) and the per-config minimum
#: needs several rounds to converge.
TIMING_REPEATS = 5

#: Absolute allowance for --assert-board-floor.  Calibrated against a
#: null experiment (two *identical* cache-off configurations compared
#: with interleaved best-of-8 rounds, GC excluded) which still reported
#: spurious differences up to ±15% on the ~0.13s boards — shared-runner
#: frequency jitter swamps percentages at that runtime.  The floor
#: therefore stays a strict 2% where 2% is measurable (the >1s boards)
#: and degrades to this absolute allowance where it is not.
FLOOR_GRACE_SECONDS = 0.02


def _problem(name: str, scale: float):
    board = make_titan_board(name, scale=scale, seed=1)
    return board, Stringer(board).string_all()


def _route_once(
    name: str,
    scale: float,
    gap_cache: bool,
    workers: int = 1,
    audit: bool = False,
    repeats: int = 1,
) -> Tuple[Dict, set]:
    """Route fresh boards ``repeats`` times; keeps the best wall time.

    Routing is deterministic per configuration, so the counters and the
    completed set are identical across repeats — only the wall time
    varies with runner noise, hence best-of-N.  The timing comparison in
    :func:`run_benchmark` calls this with ``repeats=1`` and interleaves
    the off/on legs itself, so both configurations sample the same
    noise windows instead of one config eating a whole busy period.
    """
    seconds = None
    for _ in range(repeats):
        board, connections = _problem(name, scale)
        config = RouterConfig(workers=workers)
        if audit:
            config = dataclasses.replace(config, audit=True)
        workspace = RoutingWorkspace(board, gap_cache=gap_cache)
        router = make_router(board, config, workspace=workspace)
        # Cyclic-GC pauses land on whichever leg happens to cross an
        # allocation threshold and scale with whole-process heap, not
        # with the leg's own work — exclude them from the comparison.
        gc.collect()
        gc.disable()
        started = time.perf_counter()
        result = router.route(connections)
        elapsed = time.perf_counter() - started
        gc.enable()
        seconds = elapsed if seconds is None else min(seconds, elapsed)
    counters = router.profile.counters
    hits = counters.get("gap_cache_hits", 0)
    misses = counters.get("gap_cache_misses", 0)
    total = hits + misses
    return (
        {
            "seconds": round(seconds, 3),
            "connections": len(connections),
            "routed": len(result.routed_by),
            "complete": result.complete,
            "hits": hits,
            "misses": misses,
            # Small-channel requests that skipped memoization entirely;
            # excluded from the hit rate, which describes only the
            # traffic the memo accepts.
            "bypassed": counters.get("gap_cache_bypassed", 0),
            "hit_rate": round(hits / total, 4) if total else None,
        },
        set(result.routed_by),
    )


def run_benchmark(
    smoke: bool = False,
    audit: bool = False,
    pre_pr_seconds: Optional[float] = None,
    pre_pr_ref: Optional[str] = None,
) -> Dict:
    """The whole benchmark; returns the JSON-ready report dict."""
    repeats = TIMING_REPEATS
    rows: List[Dict] = []
    for name in TITAN_CONFIGS:
        off = on = off_completed = on_completed = None
        for round_index in range(repeats):
            # ABBA: alternate which configuration runs first so neither
            # leg systematically lands in the slower half of a drifting
            # process (CPU-frequency and allocator warm-up both skew
            # later legs on shared runners).
            legs = (False, True) if round_index % 2 == 0 else (True, False)
            for gap_cache in legs:
                r, r_completed = _route_once(
                    name, SUITE_SCALE, gap_cache=gap_cache
                )
                if gap_cache:
                    if on is None or r["seconds"] < on["seconds"]:
                        on, on_completed = r, r_completed
                elif off is None or r["seconds"] < off["seconds"]:
                    off, off_completed = r, r_completed
        row: Dict = {
            "board": name,
            "connections": on["connections"],
            "cache_off": off,
            "cache_on": on,
            "parity": off_completed == on_completed,
            "improvement_pct": round(
                100.0 * (off["seconds"] - on["seconds"]) / off["seconds"], 1
            )
            if off["seconds"] > 0
            else None,
        }
        print(
            f"{name:6s} conns={row['connections']:5d} "
            f"off={off['seconds']}s on={on['seconds']}s "
            f"({row['improvement_pct']}%) "
            f"hit_rate={on['hit_rate']}"
            f"{'' if row['parity'] else ' PARITY-MISMATCH'}",
            flush=True,
        )
        rows.append(row)
    if audit:
        # Audit legs run after every timing leg so their (much slower,
        # instrumented) routing cannot pollute the wall-time comparison.
        for row in rows:
            audited: Dict[str, Dict] = {}
            for label, workers in (("serial", 1), ("parallel", AUDIT_WORKERS)):
                # An audit failure raises out of route(); reaching the
                # measurement means every post-pass/post-merge invariant
                # check passed with the cache in play.
                measured, _ = _route_once(
                    row["board"], SUITE_SCALE, gap_cache=True,
                    workers=workers, audit=True,
                )
                audited[label] = {
                    "workers": workers,
                    "seconds": measured["seconds"],
                    "complete": measured["complete"],
                    "audit_passed": True,
                }
            row["audited"] = audited
            print(f"{row['board']:6s} audit=ok", flush=True)
    off_total = sum(r["cache_off"]["seconds"] for r in rows)
    on_total = sum(r["cache_on"]["seconds"] for r in rows)
    hits = sum(r["cache_on"]["hits"] for r in rows)
    misses = sum(r["cache_on"]["misses"] for r in rows)
    per_board_rates = [
        r["cache_on"]["hit_rate"]
        for r in rows
        if r["cache_on"]["hit_rate"] is not None
    ]
    report: Dict = {
        "experiment": "gap_cache",
        "mode": "smoke" if smoke else "full",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "suite_scale": SUITE_SCALE,
        "audited": audit,
        "boards": rows,
        "summary": {
            "parity_all": all(r["parity"] for r in rows),
            "baseline_cache_off_seconds": round(off_total, 3),
            "cache_on_seconds": round(on_total, 3),
            "improvement_pct": round(
                100.0 * (off_total - on_total) / off_total, 1
            )
            if off_total > 0
            else None,
            "hits": hits,
            "misses": misses,
            "bypassed": sum(r["cache_on"]["bypassed"] for r in rows),
            "hit_rate": round(hits / (hits + misses), 4)
            if hits + misses
            else None,
            "min_board_hit_rate": round(min(per_board_rates), 4)
            if per_board_rates
            else None,
            "min_board_improvement_pct": min(
                (
                    r["improvement_pct"]
                    for r in rows
                    if r["improvement_pct"] is not None
                ),
                default=None,
            ),
        },
    }
    if pre_pr_seconds is not None:
        # Reference total measured on a checkout of the pre-PR commit
        # (same suite, same scale, workers=1) — the anchor for the PR's
        # end-to-end wall-time claim.
        report["summary"]["pre_pr_seconds"] = round(pre_pr_seconds, 3)
        report["summary"]["pre_pr_ref"] = pre_pr_ref
        report["summary"]["improvement_vs_pre_pr_pct"] = round(
            100.0 * (pre_pr_seconds - on_total) / pre_pr_seconds, 1
        )
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tag the report as the CI perf-smoke configuration",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="also route every board under GRR_AUDIT-style invariant "
        f"auditing, serial and workers={AUDIT_WORKERS}",
    )
    parser.add_argument(
        "--out",
        default="BENCH_cache.json",
        help="artifact path (default: BENCH_cache.json)",
    )
    parser.add_argument(
        "--assert-hit-rate",
        type=float,
        default=None,
        metavar="R",
        help="fail unless every Table 1 board's cache hit rate is >= R",
    )
    parser.add_argument(
        "--assert-improvement",
        type=float,
        default=None,
        metavar="PCT",
        help="fail unless total wall time improves >= PCT%% over the "
        "reference (the --pre-pr-seconds anchor when given, else the "
        "cache-off baseline; noisy on shared runners, so opt-in)",
    )
    parser.add_argument(
        "--assert-board-floor",
        type=float,
        default=None,
        metavar="PCT",
        help="fail if any single board routes more than PCT%% slower "
        "with the cache on than off (an absolute "
        f"{FLOOR_GRACE_SECONDS}s grace covers sub-50ms boards, whose "
        "percentages are pure runner noise)",
    )
    parser.add_argument(
        "--pre-pr-seconds",
        type=float,
        default=None,
        metavar="S",
        help="reference suite total measured on the pre-PR commit "
        "(recorded in the report; used by --assert-improvement)",
    )
    parser.add_argument(
        "--pre-pr-ref",
        default=None,
        metavar="REV",
        help="commit the --pre-pr-seconds reference was measured on",
    )
    args = parser.parse_args(argv)
    report = run_benchmark(
        smoke=args.smoke,
        audit=args.audit,
        pre_pr_seconds=args.pre_pr_seconds,
        pre_pr_ref=args.pre_pr_ref,
    )
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    summary = report["summary"]
    print(
        f"wrote {args.out}: baseline={summary['baseline_cache_off_seconds']}s "
        f"cached={summary['cache_on_seconds']}s "
        f"improvement={summary['improvement_pct']}% "
        f"hit_rate={summary['hit_rate']} "
        f"(min board {summary['min_board_hit_rate']}) "
        f"parity_all={summary['parity_all']}"
    )
    if "pre_pr_seconds" in summary:
        print(
            f"vs pre-PR {summary['pre_pr_ref']}: "
            f"{summary['pre_pr_seconds']}s -> "
            f"{summary['cache_on_seconds']}s "
            f"({summary['improvement_vs_pre_pr_pct']}%)"
        )
    failures: List[str] = []
    board_ok = {row["board"]: True for row in report["boards"]}
    if not summary["parity_all"]:
        failures.append("cached/uncached completion parity broken")
    if args.assert_hit_rate is not None:
        for row in report["boards"]:
            rate = row["cache_on"]["hit_rate"]
            if rate is None or rate < args.assert_hit_rate:
                board_ok[row["board"]] = False
                failures.append(
                    f"{row['board']} hit rate {rate} < "
                    f"{args.assert_hit_rate}"
                )
    if args.assert_board_floor is not None:
        for row in report["boards"]:
            off_s = row["cache_off"]["seconds"]
            on_s = row["cache_on"]["seconds"]
            allowance = max(
                args.assert_board_floor / 100.0 * off_s,
                FLOOR_GRACE_SECONDS,
            )
            if on_s - off_s > allowance:
                board_ok[row["board"]] = False
                failures.append(
                    f"{row['board']} regresses with cache on: "
                    f"{off_s}s -> {on_s}s "
                    f"(floor {args.assert_board_floor}%)"
                )
    if args.assert_improvement is not None:
        measured = summary.get(
            "improvement_vs_pre_pr_pct", summary["improvement_pct"]
        )
        if measured is None or measured < args.assert_improvement:
            failures.append(
                f"improvement {measured}% < {args.assert_improvement}%"
            )
    append_table(
        "Free-gap cache (bench_gap_cache)",
        ("board", "cache off", "cache on", "hit rate", "gate", "status"),
        (
            (
                row["board"],
                f"{row['cache_off']['seconds']}s",
                f"{row['cache_on']['seconds']}s",
                row["cache_on"]["hit_rate"],
                f">= {args.assert_hit_rate}"
                if args.assert_hit_rate is not None
                else "—",
                gate_mark(board_ok[row["board"]]),
            )
            for row in report["boards"]
        ),
        note=f"suite hit rate {summary['hit_rate']}, "
        f"parity_all={summary['parity_all']}",
    )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
