"""F1/F20/F21/F22 — regenerate the paper's figure artifacts.

* Figure 3/4/5 (grid model and channel representation) — rendered as an
  annotated ASCII sample of an example trace stored on both layer types.
* Figure 20 — the routing problem plot (one line per connection).
* Figure 21 — one signal layer of the routed solution (photoplot style).
* Figure 22 — the generated ground plane (photographic negative).

Artifacts are written to ``benchmarks/out/``; the benchmark times the full
generate-string-route-render pipeline for the coproc-style board.
"""

from __future__ import annotations


from repro.board.board import Board
from repro.channels.workspace import RoutingWorkspace
from repro.core.router import GreedyRouter
from repro.extensions.power_plane import generate_power_plane
from repro.stringer import Stringer
from repro.viz import (
    render_layer,
    render_postprocessed_layer,
    render_power_plane,
    render_problem,
    render_signal_layer,
)
from repro.workloads import make_titan_board

_cache = {}


def _routed_coproc():
    if "coproc" not in _cache:
        board = make_titan_board("coproc", scale=0.25, seed=1)
        connections = Stringer(board).string_all()
        router = GreedyRouter(board)
        result = router.route(connections)
        _cache["coproc"] = (board, connections, router.workspace, result)
    return _cache["coproc"]


def test_figure_3_4_5_grid_model(benchmark, record, out_dir):
    """F1: the example trace of Figure 4 on both layer orientations."""

    def build():
        board = Board.create(via_nx=5, via_ny=4, n_signal_layers=2)
        ws = RoutingWorkspace(board)
        # The Figure 4 trace: a dogleg crossing a via site.
        ws.add_segment(0, 3, 1, 7, owner=0)   # horizontal run, row 3
        ws.add_segment(0, 4, 7, 7, owner=0)
        ws.add_segment(0, 5, 7, 7, owner=0)
        ws.add_segment(0, 6, 7, 10, owner=0)  # upper run, row 6
        ws.add_segment(1, 1, 3, 3, owner=1)   # same shape, vertical layer
        ws.add_segment(1, 2, 3, 3, owner=1)
        return ws

    ws = benchmark(build)
    text = (
        "F1 (Figures 3-5): one dogleg trace represented on a horizontal\n"
        "layer (stored as row segments) and a second trace on a vertical\n"
        "layer (stored as column segments); 'o' marks via sites.\n\n"
        "horizontal layer:\n"
        + render_layer(ws, 0)
        + "\n\nvertical layer:\n"
        + render_layer(ws, 1)
    )
    record("figures_f1", text)
    # The horizontal layer stores the dogleg in 4 channels.
    used = sum(1 for c in ws.layers[0].channels if len(c))
    assert used == 4


def test_figure_20_problem(benchmark, record, out_dir):
    """F20: the stringer-output plot — one straight line per connection."""
    board, connections, ws, result = _routed_coproc()
    path = str(out_dir / "figure20_problem.ppm")
    canvas = benchmark.pedantic(
        lambda: render_problem(board, connections, path=path),
        rounds=1, iterations=1,
    )
    assert (canvas.pixels == 0).any()
    record(
        "figures",
        f"F20: routing problem plot -> {path} "
        f"({len(connections)} connections)",
    )


def test_figure_21_signal_layer(benchmark, record, out_dir):
    """F21: one routed signal layer, photoplot-positive style."""
    board, connections, ws, result = _routed_coproc()
    assert result.complete
    path = str(out_dir / "figure21_layer.ppm")
    canvas = benchmark.pedantic(
        lambda: render_signal_layer(board, ws, 0, path=path),
        rounds=1, iterations=1,
    )
    assert (canvas.pixels == 0).any()
    record(
        "figures",
        f"F21: signal layer 0 of the routed solution -> {path} "
        f"({result.routed_count} routes, {result.vias_added} vias)",
    )


def test_figure_21b_postprocessed(benchmark, record, out_dir):
    """F21 (postprocessed): the Figure 21 footnote's diagonal smoothing."""
    board, connections, ws, result = _routed_coproc()
    path = str(out_dir / "figure21_postprocessed.ppm")
    canvas = benchmark.pedantic(
        lambda: render_postprocessed_layer(board, ws, 0, path=path),
        rounds=1, iterations=1,
    )
    assert (canvas.pixels == 0).any()
    record(
        "figures",
        f"F21b: postprocessed (chamfered) signal layer 0 -> {path}",
    )


def test_figure_22_ground_plane(benchmark, record, out_dir):
    """F22: the generated ground plane, photographic negative."""
    board, connections, ws, result = _routed_coproc()
    gnd = board.power_nets[0]
    path = str(out_dir / "figure22_plane.ppm")

    def build():
        pattern = generate_power_plane(board, ws, gnd.net_id)
        render_power_plane(board, pattern, path=path)
        return pattern

    pattern = benchmark.pedantic(build, rounds=1, iterations=1)
    from repro.extensions.power_plane import FeatureKind

    clearances = pattern.count(FeatureKind.CLEARANCE)
    reliefs = pattern.count(FeatureKind.THERMAL_RELIEF)
    # Every drilled hole on the board is either cleared or relieved.
    assert clearances + reliefs == len(ws.via_map.drilled_sites()) - len(
        [
            h
            for h in __import__(
                "repro.extensions.power_plane", fromlist=["x"]
            ).default_mounting_holes(board)
            if ws.via_map.is_drilled(h)
        ]
    )
    record(
        "figures",
        f"F22: ground plane -> {path} "
        f"({clearances} clearances, {reliefs} thermal reliefs)",
    )
