"""E5 — Section 8.2 Modification 1: via-graph Lee vs grid-point Lee.

Paper: defining neighbors as adjacent grid points "leads to very slow
searches, since many individual grid points must be scanned to advance a
small distance across the board surface"; grr's neighbors are the via
sites reachable in one single-layer hop.

Both routers run the same batch of connections on the same board; compare
points marked and wall-clock.  The factor grows with board size — this is
the asymptotic win that makes full-board routing feasible.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.baseline import GridLeeRouter
from repro.channels.workspace import RoutingWorkspace
from repro.core.lee import lee_route
from repro.stringer import Stringer
from repro.workloads import make_titan_board

NAME, SCALE, SEED = "tna", 0.25, 2
N_CONNS = 40
_stats = {}


def _problem():
    board = make_titan_board(NAME, scale=SCALE, seed=SEED)
    connections = Stringer(board).string_all()[:N_CONNS]
    return board, connections


def _run_grid():
    board, connections = _problem()
    ws = RoutingWorkspace(board)
    router = GridLeeRouter(ws)
    marked = 0
    routed = 0
    for conn in connections:
        stats = router.route(conn)
        marked += stats.cells_marked
        routed += int(stats.routed)
    return routed, marked


def _run_grr():
    board, connections = _problem()
    ws = RoutingWorkspace(board)
    marked = 0
    routed = 0
    for conn in connections:
        passable = frozenset(
            (conn.conn_id, -(conn.pin_a + 1), -(conn.pin_b + 1))
        )
        result = lee_route(ws, conn, passable=passable)
        marked += result.marked
        routed += int(result.routed)
    return routed, marked


@pytest.mark.parametrize("kind", ["grid_point", "via_graph"])
def test_lee_baseline(kind, benchmark, record):
    run = _run_grid if kind == "grid_point" else _run_grr
    routed, marked = benchmark.pedantic(run, rounds=1, iterations=1)
    _stats[kind] = {
        "routed": routed,
        "marked": marked,
        "seconds": benchmark.stats.stats.mean,
    }
    if kind == "via_graph":
        _report(record)


def _report(record):
    rows = [
        {
            "neighbors": kind,
            "routed": s["routed"],
            "points_marked": s["marked"],
            "cpu_s": round(s["seconds"], 3),
        }
        for kind, s in _stats.items()
    ]
    record(
        "lee_baseline",
        format_table(
            rows,
            title=f"E5: Modification 1 on {N_CONNS} connections of {NAME} "
            "(paper: grid-point neighbors are 'very slow')",
        ),
    )
    grid, grr = _stats["grid_point"], _stats["via_graph"]
    assert grr["routed"] >= grid["routed"]
    # The via-graph search must mark at least 10x fewer points.
    assert grr["marked"] * 10 < grid["marked"]
    assert grr["seconds"] < grid["seconds"]
