"""E3 — Section 8.1 radius sweep and the 90%-optimal claim.

Paper: "Typical values of radius are 1 or 2.  Increasing radius allows
more vias to be reached, but increases channel blockage for later
connections.  Large values of radius are counterproductive" and "it is
essential that about 90% of the connections be routed with these optimal
strategies".
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core.result import Strategy
from repro.core.router import GreedyRouter, RouterConfig
from repro.stringer import Stringer
from repro.workloads import make_titan_board

NAME, SCALE, SEED = "nmc_4l", 0.30, 1
RADII = [1, 2, 3, 4]
_results = {}


def _route(radius: int):
    board = make_titan_board(NAME, scale=SCALE, seed=SEED)
    connections = Stringer(board).string_all()
    router = GreedyRouter(board, RouterConfig(radius=radius))
    return router.route(connections)


@pytest.mark.parametrize("radius", RADII)
def test_radius(radius, benchmark, record):
    result = benchmark.pedantic(
        lambda: _route(radius), rounds=1, iterations=1
    )
    _results[radius] = result
    if radius == RADII[-1]:
        _report(record)


def _pct_optimal(result):
    optimal = result.strategy_count(Strategy.ZERO_VIA) + result.strategy_count(
        Strategy.ONE_VIA
    )
    return 100.0 * optimal / max(result.total_count, 1)


def _report(record):
    rows = [
        {
            "radius": radius,
            "routed": result.routed_count,
            "total": result.total_count,
            "pct_optimal": round(_pct_optimal(result), 1),
            "pct_lee": round(result.percent_lee, 1),
            "rip_ups": result.rip_up_count,
            "wire": result.total_wire_length,
            "cpu_s": round(result.cpu_seconds, 2),
        }
        for radius, result in sorted(_results.items())
    ]
    record(
        "radius",
        format_table(
            rows,
            title="E3: radius sweep on nmc_4l "
            "(paper: radius 1-2 typical; radius 0 cannot reach enough "
            "vias, large radius trades channel blockage for reach)",
        ),
    )
    # Shape assertions.
    assert _results[1].complete and _results[2].complete
    # ~90% of connections must route optimally at the standard radius
    # (Section 8.1's essential-for-completion figure).
    assert _pct_optimal(_results[1]) >= 85.0
    # Moderate radius growth reaches more vias...
    shares = [_pct_optimal(_results[r]) for r in (1, 2, 3)]
    assert all(b >= a - 1e-9 for a, b in zip(shares, shares[1:]))
    # ...but "large values of radius are counterproductive": the widest
    # setting must show at least one regression (blocked channels push
    # connections off the optimal strategies, lengthen wire, or cost CPU).
    wide, best = _results[4], _results[3]
    assert (
        _pct_optimal(wide) < _pct_optimal(best)
        or wide.total_wire_length > best.total_wire_length
        or wide.cpu_seconds > 1.5 * best.cpu_seconds
    )
