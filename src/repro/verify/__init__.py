"""Independent verification of routed boards.

The paper's motivation for full automation is that partial routing "leaves
the possibility for introducing errors in the routing of the final
connections" — so a reproduction should be able to *prove* its output
correct.  This package re-derives correctness from the raw board state,
sharing no logic with the router:

* :mod:`repro.verify.drc` — design-rule checks: segment disjointness,
  via-map consistency, drilled-via covers, bounds, trace-over-via-site
  warnings;
* :mod:`repro.verify.connectivity` — electrical checks: every routed
  connection is a connected path pin-to-pin, and every net's pins form a
  connected graph (a chain, for ECL) through its routed connections.
"""

from repro.verify.connectivity import (
    ConnectivityReport,
    NetStatus,
    check_connectivity,
)
from repro.verify.drc import DrcReport, DrcViolation, Severity, run_drc

__all__ = [
    "ConnectivityReport",
    "DrcReport",
    "DrcViolation",
    "NetStatus",
    "Severity",
    "check_connectivity",
    "run_drc",
]
