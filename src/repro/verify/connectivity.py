"""Electrical connectivity verification, independent of the router.

Two levels:

* **connection level** — each routed connection's installed links must
  form a single rectilinear path from pin a to pin b, with a drilled via
  at every layer change (flood fill over the link's own cells);
* **net level** — a net's pins must form a connected graph through its
  routed connections, and for ECL nets a *chain* with the output at one
  end and the terminating resistor at the other (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.board.board import Board
from repro.board.nets import Connection
from repro.board.parts import PinRole
from repro.channels.workspace import RouteRecord, RoutingWorkspace
from repro.grid.coords import GridPoint
from repro.grid.geometry import Orientation


@dataclass
class NetStatus:
    """Verification result for one signal net."""

    net_id: int
    name: str
    pin_count: int
    routed_edges: int
    missing_edges: int
    connected: bool
    is_chain: bool
    chain_ends_valid: Optional[bool]  # None for non-ECL nets
    broken_connections: List[int] = field(default_factory=list)


@dataclass
class ConnectivityReport:
    """Board-level connectivity verdict."""

    nets: List[NetStatus] = field(default_factory=list)
    broken_connections: List[int] = field(default_factory=list)

    @property
    def fully_connected(self) -> bool:
        """True if every net is connected and every route is a real path."""
        return not self.broken_connections and all(
            n.connected for n in self.nets
        )


def _link_cells(
    orientation: Orientation, pieces
) -> Set[Tuple[int, int]]:
    cells = set()
    for channel_index, lo, hi in pieces:
        for coord in range(lo, hi + 1):
            if orientation is Orientation.HORIZONTAL:
                cells.add((coord, channel_index))
            else:
                cells.add((channel_index, coord))
    return cells


def _occupancy_is_path(
    workspace: RoutingWorkspace, conn: Connection, record: RouteRecord
) -> bool:
    """Flood-fill the record's installed copper from pin a to pin b.

    In-layer adjacency is the same 4-neighbourhood the link-level check
    uses (lateral jogs join adjacent channels); layers connect at via
    sites drilled in the workspace — the record's own vias plus the
    endpoint pins' holes.
    """
    grid = workspace.grid
    cells: Set[Tuple[int, int, int]] = set()
    for layer_index, channel_index, lo, hi in record.segments:
        layer = workspace.layers[layer_index]
        for coord in range(lo, hi + 1):
            point = layer.cc_point(channel_index, coord)
            cells.add((layer_index, point.gx, point.gy))
    if not cells:
        return conn.a == conn.b
    start = grid.via_to_grid(conn.a)
    goal = grid.via_to_grid(conn.b)
    # Installed occupancy is clipped around the endpoint pins (the pin
    # owns its own cell), so stand the pins back up as copper on every
    # layer — their holes span the stack.
    for point in (start, goal):
        for layer_index in range(len(workspace.layers)):
            cells.add((layer_index, point.gx, point.gy))
    goals = {c for c in cells if (c[1], c[2]) == (goal.gx, goal.gy)}
    frontier = [
        c for c in cells if (c[1], c[2]) == (start.gx, start.gy)
    ]
    seen = set(frontier)
    g = grid.grid_per_via
    while frontier:
        cell = frontier.pop()
        if cell in goals:
            return True
        layer_index, x, y = cell
        # Same 4-neighbourhood the link-level check uses: the routing
        # model joins adjacent cells across channels (lateral jogs).
        neighbours = [
            (layer_index, nx, ny)
            for nx, ny in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1))
        ]
        if x % g == 0 and y % g == 0 and workspace.via_map.is_drilled(
            grid.grid_to_via(GridPoint(x, y))
        ):
            neighbours.extend(
                (other, x, y)
                for other in range(len(workspace.layers))
                if other != layer_index
            )
        for nxt in neighbours:
            if nxt in cells and nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False


def connection_is_path(
    workspace: RoutingWorkspace, conn: Connection, record: RouteRecord
) -> bool:
    """True if the record's links really connect pin a to pin b."""
    grid = workspace.grid
    if not record.links:
        # Records restored from formats that carry no path metadata
        # (a kicad export stores only copper) are checked at the
        # occupancy level instead.
        if record.segments:
            return _occupancy_is_path(workspace, conn, record)
        return conn.a == conn.b
    if record.links[0].a != grid.via_to_grid(conn.a):
        return False
    if record.links[-1].b != grid.via_to_grid(conn.b):
        return False
    for i, link in enumerate(record.links):
        layer = workspace.layers[link.layer_index]
        cells = _link_cells(layer.orientation, link.pieces)
        start = (link.a.gx, link.a.gy)
        goal = (link.b.gx, link.b.gy)
        if start not in cells or goal not in cells:
            return False
        frontier = [start]
        seen = {start}
        while frontier:
            x, y = frontier.pop()
            for nxt in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
                if nxt in cells and nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        if goal not in seen:
            return False
        if i:
            prev = record.links[i - 1]
            if prev.b != link.a:
                return False
            if prev.layer_index != link.layer_index:
                # A hole is required only when the path changes layer;
                # same-layer junctions carry the signal in copper.
                junction = grid.grid_to_via(link.a)
                if not workspace.via_map.is_drilled(junction):
                    return False
    return True


def check_connectivity(
    board: Board,
    workspace: RoutingWorkspace,
    connections: Sequence[Connection],
) -> ConnectivityReport:
    """Verify every routed connection and every signal net."""
    report = ConnectivityReport()
    by_net: Dict[int, List[Connection]] = {}
    for conn in connections:
        by_net.setdefault(conn.net_id, []).append(conn)
    for conn in connections:
        record = workspace.records.get(conn.conn_id)
        if record is not None and not connection_is_path(
            workspace, conn, record
        ):
            report.broken_connections.append(conn.conn_id)
    for net in board.signal_nets:
        status = _check_net(
            board, workspace, net.net_id, by_net.get(net.net_id, []),
            set(report.broken_connections),
        )
        report.nets.append(status)
    return report


def _check_net(
    board: Board,
    workspace: RoutingWorkspace,
    net_id: int,
    net_conns: List[Connection],
    broken: Set[int],
) -> NetStatus:
    net = board.nets[net_id]
    pins = list(net.pin_ids)
    index = {pin_id: i for i, pin_id in enumerate(pins)}
    parent = list(range(len(pins)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    degree = [0] * len(pins)
    routed_edges = 0
    missing = 0
    net_broken: List[int] = []
    for conn in net_conns:
        ok = (
            workspace.is_routed(conn.conn_id)
            and conn.conn_id not in broken
        )
        if conn.conn_id in broken:
            net_broken.append(conn.conn_id)
        if not ok:
            missing += 1
            continue
        routed_edges += 1
        a, b = index.get(conn.pin_a), index.get(conn.pin_b)
        if a is None or b is None:
            missing += 1
            continue
        union(a, b)
        degree[a] += 1
        degree[b] += 1
    connected = len(pins) <= 1 or len({find(i) for i in range(len(pins))}) == 1
    is_chain = connected and all(d <= 2 for d in degree) and (
        sum(1 for d in degree if d == 1) in (0, 2)
    )
    chain_ends_valid: Optional[bool] = None
    if net.family.needs_termination and is_chain and len(pins) >= 2:
        end_roles = {
            board.pins[pins[i]].role
            for i, d in enumerate(degree)
            if d == 1
        }
        chain_ends_valid = (
            PinRole.OUTPUT in end_roles and PinRole.TERMINATOR in end_roles
        )
    return NetStatus(
        net_id=net_id,
        name=net.name,
        pin_count=len(pins),
        routed_edges=routed_edges,
        missing_edges=missing,
        connected=connected,
        is_chain=is_chain,
        chain_ends_valid=chain_ends_valid,
        broken_connections=net_broken,
    )
