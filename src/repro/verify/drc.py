"""Design-rule checking: structural validity of the wiring database.

All checks recompute from the raw channel contents; none trust the
invariants the channel code claims to maintain.  Violations are errors
(the board is not manufacturable / the database is corrupt); warnings flag
legal-but-undesirable patterns such as traces running over free via sites
("this is avoided where possible in practice", Section 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.board.board import Board
from repro.channels.workspace import RoutingWorkspace
from repro.grid.coords import ViaPoint


class Severity(enum.Enum):
    """Violation severity."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class DrcViolation:
    """One design-rule finding."""

    severity: Severity
    rule: str
    message: str


@dataclass
class DrcReport:
    """All findings of one DRC run."""

    violations: List[DrcViolation] = field(default_factory=list)

    @property
    def errors(self) -> List[DrcViolation]:
        return [v for v in self.violations if v.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[DrcViolation]:
        return [v for v in self.violations if v.severity is Severity.WARNING]

    @property
    def clean(self) -> bool:
        """True if there are no errors (warnings allowed)."""
        return not self.errors

    def add(self, severity: Severity, rule: str, message: str) -> None:
        self.violations.append(DrcViolation(severity, rule, message))


def run_drc(board: Board, workspace: RoutingWorkspace) -> DrcReport:
    """Run every design-rule check against a workspace."""
    report = DrcReport()
    _check_segments(workspace, report)
    _check_via_map(workspace, report)
    _check_drilled_vias(board, workspace, report)
    _check_pins(board, workspace, report)
    _check_trace_over_via_sites(workspace, report)
    return report


def _check_segments(workspace: RoutingWorkspace, report: DrcReport) -> None:
    """Segments must be within bounds, sorted, and pairwise disjoint."""
    for layer_index, layer in enumerate(workspace.layers):
        for channel_index, channel in enumerate(layer.channels):
            previous_hi = None
            for seg in channel:
                if seg.hi < seg.lo:
                    report.add(
                        Severity.ERROR,
                        "segment-inverted",
                        f"L{layer_index} c{channel_index}: {seg}",
                    )
                if seg.lo < 0 or seg.hi >= layer.channel_length:
                    report.add(
                        Severity.ERROR,
                        "segment-out-of-bounds",
                        f"L{layer_index} c{channel_index}: {seg}",
                    )
                if previous_hi is not None and seg.lo <= previous_hi:
                    report.add(
                        Severity.ERROR,
                        "segment-overlap",
                        f"L{layer_index} c{channel_index}: {seg} overlaps "
                        f"previous segment ending at {previous_hi}",
                    )
                previous_hi = seg.hi


def _check_via_map(workspace: RoutingWorkspace, report: DrcReport) -> None:
    """The via map's counts must equal a fresh recount of the layers."""
    grid = workspace.grid
    recount: Dict[Tuple[int, int], int] = {}
    for layer in workspace.layers:
        for channel_index in range(0, layer.n_channels, grid.grid_per_via):
            for seg in layer.channel(channel_index):
                for via in layer.via_sites_in(channel_index, seg.lo, seg.hi):
                    key = (via.vx, via.vy)
                    recount[key] = recount.get(key, 0) + 1
    for vy in range(grid.via_ny):
        for vx in range(grid.via_nx):
            expected = recount.get((vx, vy), 0)
            actual = workspace.via_map.count(ViaPoint(vx, vy))
            if actual != expected:
                report.add(
                    Severity.ERROR,
                    "via-map-count",
                    f"via ({vx},{vy}): map says {actual}, layers say "
                    f"{expected}",
                )


def _check_drilled_vias(
    board: Board, workspace: RoutingWorkspace, report: DrcReport
) -> None:
    """A drill hole contacts all layers: each must be covered on every
    layer by a segment whose owner matches the drill owner."""
    grid = workspace.grid
    for via, owner in workspace.via_map.drilled_sites().items():
        if not grid.contains_via(via):
            report.add(
                Severity.ERROR, "via-off-board", f"{via} owner {owner}"
            )
            continue
        point = grid.via_to_grid(via)
        for layer_index, layer in enumerate(workspace.layers):
            cover = layer.owner_at(point)
            if cover is None:
                report.add(
                    Severity.ERROR,
                    "via-uncovered",
                    f"{via}: no segment on layer {layer_index}",
                )
            elif cover != owner:
                report.add(
                    Severity.ERROR,
                    "via-cover-owner",
                    f"{via}: layer {layer_index} covered by {cover}, "
                    f"drilled by {owner}",
                )


def _check_pins(
    board: Board, workspace: RoutingWorkspace, report: DrcReport
) -> None:
    """Every pin must be drilled under its immovable owner token."""
    for pin in board.pins:
        owner = workspace.via_map.drilled_owner(pin.position)
        if owner is None:
            report.add(
                Severity.ERROR,
                "pin-not-drilled",
                f"pin {pin.pin_id} at {pin.position}",
            )
        elif owner != pin.owner_token:
            report.add(
                Severity.ERROR,
                "pin-owner",
                f"pin {pin.pin_id} at {pin.position} drilled by {owner}",
            )


def _check_trace_over_via_sites(
    workspace: RoutingWorkspace, report: DrcReport
) -> None:
    """Warn about signal traces running over undrilled via sites.

    Legal (Figure 4 shows one) but avoided in practice: the covered site
    cannot take a via later.
    """
    grid = workspace.grid
    offenders = 0
    for layer in workspace.layers:
        for channel_index in range(0, layer.n_channels, grid.grid_per_via):
            for seg in layer.channel(channel_index):
                if seg.owner < 0:
                    continue  # pins and fill
                for via in layer.via_sites_in(channel_index, seg.lo, seg.hi):
                    if workspace.via_map.drilled_owner(via) != seg.owner:
                        offenders += 1
    if offenders:
        report.add(
            Severity.WARNING,
            "trace-over-via-site",
            f"{offenders} trace cells cover via sites they did not drill",
        )
