"""Deterministic merging of wave results into the master workspace.

Groups are merged in strip order and, within a group, in routing order —
a pure function of the partition plan, never of pool scheduling.  Each
record is installed with :meth:`RoutingWorkspace.apply_record`, which
checks every claimed segment and via against the master state; a record
whose claims collide with an earlier-merged route (possible only when a
Lee search escaped its strip) is rejected whole and its connection is
demoted to the next wave.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.channels.workspace import RouteRecord, RoutingWorkspace
from repro.core.result import RoutingResult, Strategy
from repro.obs.events import MergeDemoted
from repro.obs.sinks import NULL_SINK, EventSink

from repro.parallel.worker import GroupResult


@dataclass
class MergeOutcome:
    """What one wave's merge did to the master workspace."""

    merged: int = 0
    #: Connections whose record conflicted and must re-route later.
    demoted: Set[int] = field(default_factory=set)
    #: Connections the worker itself could not route without rip-up.
    failed: Set[int] = field(default_factory=set)


def merge_wave(
    workspace: RoutingWorkspace,
    group_results: Sequence[GroupResult],
    result: RoutingResult,
    rank: Optional[Dict[int, int]] = None,
    sink: EventSink = NULL_SINK,
) -> MergeOutcome:
    """Fold one wave's group results into the master workspace/result.

    Without ``rank`` records merge group by group in strip order (strip
    waves: groups are spatially disjoint, so cross-group order barely
    matters).  With ``rank`` (connection id → priority), records from all
    groups are interleaved and merged in that order — the speculative
    wave uses the master's sorted routing order so that when two shards
    did claim the same space, the connection the serial router would have
    routed first wins and the other is demoted.

    Each rejected record emits a :class:`repro.obs.events.MergeDemoted`
    event on ``sink`` (the wave number is the one this merge completes,
    ``result.waves + 1``).
    """
    outcome = MergeOutcome()
    ordered: List[GroupResult] = sorted(
        group_results, key=lambda gr: gr.strip_index
    )
    merged_records: List[Tuple[RouteRecord, Strategy]] = []
    for group in ordered:
        for record in group.records:
            merged_records.append(
                (record, group.routed_by[record.conn_id])
            )
        outcome.failed.update(group.failed)
        result.lee_expansions += group.lee_expansions
    if rank is not None:
        merged_records.sort(
            key=lambda pair: rank.get(pair[0].conn_id, len(rank))
        )
    wave = result.waves + 1
    for record, strategy in merged_records:
        if workspace.apply_record(record):
            result.routed_by[record.conn_id] = strategy
            outcome.merged += 1
        else:
            outcome.demoted.add(record.conn_id)
            if sink.enabled:
                sink.emit(MergeDemoted(record.conn_id, wave))
    return outcome
