"""Parallel wave routing: partition, pool fan-out, merge, repair serially.

See :mod:`repro.parallel.router` for the pipeline and its determinism
guarantees, :mod:`repro.parallel.pool` for the persistent worker pool
and its delta synchronization, and ``docs/ALGORITHMS.md`` ("Parallel
wave routing") for the design rationale.
"""

from repro.parallel.merge import MergeOutcome, merge_wave
from repro.parallel.partition import (
    WAVE_SPECS,
    PoolDecision,
    StripSpec,
    WaveGroup,
    assign_strips,
    connection_span,
    estimate_demand,
    pool_decision,
    routing_margin,
    shard_round_robin,
    strip_spec,
)
from repro.parallel.pool import WorkerPool
from repro.parallel.router import ParallelRouter
from repro.parallel.worker import GroupResult, route_group_in, worker_config

__all__ = [
    "MergeOutcome",
    "merge_wave",
    "WAVE_SPECS",
    "PoolDecision",
    "StripSpec",
    "WaveGroup",
    "assign_strips",
    "connection_span",
    "estimate_demand",
    "pool_decision",
    "routing_margin",
    "shard_round_robin",
    "strip_spec",
    "WorkerPool",
    "ParallelRouter",
    "GroupResult",
    "route_group_in",
    "worker_config",
]
