"""Parallel wave routing: partition, fan out, merge, repair serially.

See :mod:`repro.parallel.router` for the pipeline and its determinism
guarantees, and ``docs/ALGORITHMS.md`` ("Parallel wave routing") for the
design rationale.
"""

from repro.parallel.merge import MergeOutcome, merge_wave
from repro.parallel.partition import (
    WAVE_SPECS,
    StripSpec,
    WaveGroup,
    assign_strips,
    connection_span,
    routing_margin,
    shard_round_robin,
    strip_spec,
)
from repro.parallel.router import ParallelRouter
from repro.parallel.worker import GroupResult, route_group_in, worker_config

__all__ = [
    "MergeOutcome",
    "merge_wave",
    "WAVE_SPECS",
    "StripSpec",
    "WaveGroup",
    "assign_strips",
    "connection_span",
    "routing_margin",
    "shard_round_robin",
    "strip_spec",
    "ParallelRouter",
    "GroupResult",
    "route_group_in",
    "worker_config",
]
