"""The persistent worker pool: spawn once, synchronize with deltas.

Before this pool, every wave group got its own short-lived process: a
fork (or a full pickled snapshot under spawn) per group, per wave.  The
pool inverts that cost model:

* **Spawn once** — ``workers`` processes come up at the first wave of a
  routing call and live until the residue phase.  Fork children inherit
  the master workspace copy-on-write; spawn children receive one pickled
  snapshot at startup, and never again.
* **Delta synchronization** — after each wave's merge, the master
  broadcasts the :class:`~repro.channels.delta.WorkspaceDelta` its merge
  recorded (see :meth:`RoutingWorkspace.begin_delta`).  Workers replay
  it through the same route-level primitives, so their copies track the
  master at a cost proportional to *what changed*, not board size — and
  their warm gap-cache entries on untouched channels survive.
* **Dynamic scheduling (work stealing)** — a wave's groups sit in one
  shared deque; every idle worker takes the head.  A worker that
  finishes a cheap strip immediately steals the next group instead of
  idling behind a static assignment.

Determinism: all of a wave's workers are at the same sync epoch (the
wave-base state), each group is routed by the deterministic serial
router against that state, and the merge installs results in strip
order.  A group's result therefore does not depend on *which* worker
routed it or in what order groups were dealt — stealing changes
scheduling, never results — so bit-parity with serial routing holds at
any worker count.

Fault tolerance keeps the per-group contract of the old fan-out: a
worker that crashes, errors, or blows its group deadline costs one
retry (with exponential backoff) until the retry budget degrades the
group to the serial residue.  The dead worker itself is respawned from
the master state (fork) or from the startup snapshot plus the replayed
delta log (spawn), so one crash never poisons later waves.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.core.budget import BudgetTracker
from repro.core.result import RoutingResult
from repro.obs.events import DeltaSync, PoolStart, WorkerRetry, WorkerSteal
from repro.obs.sinks import NULL_SINK, EventSink

from repro.parallel.partition import WaveGroup
from repro.parallel.worker import (
    MSG_GROUP,
    MSG_STOP,
    MSG_SYNC,
    GroupResult,
    clear_parent_state,
    pool_child_main,
    pool_payload,
    set_parent_state,
)

#: Slack added to a wave group's parent-side deadline so a worker that
#: finishes right at the budget line still gets to report its result.
GROUP_GRACE_SECONDS = 0.25


class PoolWorker:
    """Parent-side handle for one pool worker process."""

    __slots__ = ("worker_id", "proc", "conn", "busy", "dead")

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.proc = None
        self.conn = None
        #: In-flight work as ``(task, group index, attempt, deadline)``;
        #: None when idle.  At most one task is outstanding per worker.
        self.busy: Optional[Tuple[int, int, int, Optional[float]]] = None
        self.dead = True


class WorkerPool:
    """Persistent pool of routing workers synchronized by deltas."""

    def __init__(
        self,
        workspace,
        config,
        workers: int,
        sink: Optional[EventSink] = None,
    ) -> None:
        self.workspace = workspace
        self.config = config
        self.n_workers = max(1, workers)
        self.sink = sink if sink is not None else NULL_SINK
        methods = multiprocessing.get_all_start_methods()
        self._forked = "fork" in methods
        self._ctx = multiprocessing.get_context(
            "fork" if self._forked else "spawn"
        )
        self._workers: List[PoolWorker] = []
        self._task_seq = 0
        #: Master synchronization epoch: bumped by every broadcast delta.
        self._epoch = 0
        #: Spawn-only: the startup snapshot and every broadcast since,
        #: replayed to catch a respawned worker up to the current epoch.
        self._payload: Optional[bytes] = None
        self._sync_log: List[Tuple[int, bytes, Optional[str]]] = []
        self._started = False
        self._closed = False
        # Attribution counters, folded into the router profile.
        self.spawn_seconds = 0.0
        self.snapshot_bytes = 0
        self.delta_bytes = 0
        self.delta_ops = 0
        self.steals = 0
        self.respawns = 0

    @property
    def alive(self) -> bool:
        """Started and not closed (dead workers are revived on demand)."""
        return self._started and not self._closed

    def drain_counters(self) -> dict:
        """Return and reset the attribution counters.

        A pool kept alive across routing calls (the ECO session's
        mutate→reroute boundary) is folded into each call's profile;
        draining prevents one call's bytes/steals from being counted
        again by the next.
        """
        drained = {
            "snapshot_bytes": self.snapshot_bytes,
            "delta_bytes": self.delta_bytes,
            "delta_ops": self.delta_ops,
            "worker_steals": self.steals,
            "worker_respawns": self.respawns,
        }
        self.snapshot_bytes = 0
        self.delta_bytes = 0
        self.delta_ops = 0
        self.steals = 0
        self.respawns = 0
        return drained

    @property
    def start_method(self) -> str:
        """``"fork"`` or ``"spawn"``."""
        return "fork" if self._forked else "spawn"

    def pids(self) -> List[int]:
        """Live worker process ids.

        Process bookkeeping for callers that must prove no workers
        outlive them (the serve smoke test's orphan check): every pid
        returned here must be dead once the pool is closed.
        """
        return [
            worker.proc.pid
            for worker in self._workers
            if not worker.dead and worker.proc is not None
        ]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Spawn every worker (the one full-snapshot moment of a call).

        Never leaks on failure: if any spawn (or the ``pool_start``
        emit) raises, every worker already running is torn back down
        before the exception propagates.
        """
        started = time.perf_counter()
        try:
            if not self._forked:
                self._payload = pool_payload(self.workspace)
                self.snapshot_bytes = len(self._payload)
            self._workers = [PoolWorker(i) for i in range(self.n_workers)]
            for worker in self._workers:
                self._start_worker(worker)
            self._started = True
            self.spawn_seconds = time.perf_counter() - started
            if self.sink.enabled:
                self.sink.emit(
                    PoolStart(
                        self.n_workers,
                        self.start_method,
                        self.snapshot_bytes,
                        self.spawn_seconds,
                    )
                )
        except BaseException:
            self.close()
            raise

    def _start_worker(self, worker: PoolWorker) -> None:
        """(Re)start one worker at the master's current sync state."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        if self._forked:
            # The fork inherits the master exactly as it is *now*, which
            # is always a sync state: waves leave the master untouched
            # until their merge, and merges complete before sync().
            set_parent_state(self.workspace)
            try:
                proc = self._ctx.Process(
                    target=pool_child_main,
                    args=(child_conn, worker.worker_id, None, self._epoch),
                )
                proc.start()
            finally:
                clear_parent_state()
        else:
            proc = self._ctx.Process(
                target=pool_child_main,
                args=(child_conn, worker.worker_id, self._payload, 0),
            )
            proc.start()
        child_conn.close()
        worker.proc = proc
        worker.conn = parent_conn
        worker.busy = None
        worker.dead = False
        if not self._forked:
            for epoch, payload, digest in self._sync_log:
                parent_conn.send((MSG_SYNC, epoch, payload, digest))

    def _revive(self, worker: PoolWorker) -> None:
        """Respawn a dead worker in place (counted as a respawn)."""
        self._start_worker(worker)
        self.respawns += 1

    def _retire(self, worker: PoolWorker) -> None:
        """Tear one worker down; a later :meth:`_revive` replaces it."""
        worker.busy = None
        if worker.proc is not None:
            worker.proc.terminate()
            worker.proc.join()
            worker.proc = None
        if worker.conn is not None:
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.conn = None
        worker.dead = True

    def close(self) -> None:
        """Stop every worker; called before the serial residue phase."""
        self._closed = True
        for worker in self._workers:
            if worker.dead:
                continue
            try:
                worker.conn.send((MSG_STOP,))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            if worker.dead:
                continue
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join()
            worker.proc = None
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.conn = None
            worker.dead = True

    # ------------------------------------------------------------------
    # synchronization
    # ------------------------------------------------------------------

    def sync(self, delta, digest: Optional[str] = None) -> None:
        """Broadcast one merge's workspace delta to every live worker.

        ``digest`` (the master's post-merge state digest, supplied under
        ``audit``) lets each worker verify it still mirrors the master.
        Dead workers are skipped — a revival always starts from the
        current master state.  Empty deltas are not broadcast.
        """
        if not delta:
            return
        self._epoch += 1
        payload = delta.to_payload()
        self.delta_bytes += len(payload)
        self.delta_ops += len(delta)
        if not self._forked:
            self._sync_log.append((self._epoch, payload, digest))
        for worker in self._workers:
            if worker.dead:
                continue
            try:
                worker.conn.send((MSG_SYNC, self._epoch, payload, digest))
            except (BrokenPipeError, OSError):
                self._retire(worker)
        if self.sink.enabled:
            self.sink.emit(
                DeltaSync(
                    self._epoch,
                    len(delta),
                    delta.added,
                    delta.removed,
                    len(payload),
                )
            )

    # ------------------------------------------------------------------
    # wave execution
    # ------------------------------------------------------------------

    def _group_deadline(
        self, group: WaveGroup, tracker: BudgetTracker
    ) -> Optional[float]:
        """Absolute parent-side give-up time for one wave group."""
        limits = []
        per_conn = self.config.budget.per_connection_seconds
        if per_conn is not None:
            limits.append(
                per_conn * max(1, len(group.connections))
                + GROUP_GRACE_SECONDS
            )
        remaining = tracker.remaining()
        if remaining is not None:
            limits.append(remaining + GROUP_GRACE_SECONDS)
        if not limits:
            return None
        return time.perf_counter() + min(limits)

    def _busy_workers(self) -> List[PoolWorker]:
        return [w for w in self._workers if w.busy is not None]

    def run_wave(
        self,
        groups: List[WaveGroup],
        wave_cfg,
        wave: int,
        tracker: BudgetTracker,
        result: RoutingResult,
        degrade,
    ) -> List[GroupResult]:
        """Route one wave's groups across the pool with work stealing.

        Groups wait in a shared deque; every idle worker takes the head
        (emitting a ``worker_steal`` event).  A worker that crashes,
        errors, or blows its group deadline is respawned and its group
        retried with exponential backoff, up to ``config.worker_retries``
        times; after that ``degrade(group, reason)`` hands the group to
        the serial residue.  A wave failure never fails the routing call.
        """
        cfg = self.config
        sink = self.sink
        clock = time.perf_counter
        results: List[Optional[GroupResult]] = [None] * len(groups)
        #: Groups awaiting a worker, as (group index, attempt).
        queue: Deque[Tuple[int, int]] = deque(
            (i, 0) for i in range(len(groups))
        )
        #: Failed groups backing off, as (ready time, index, attempt).
        retries: List[Tuple[float, int, int]] = []

        def handle_failure(index: int, attempt: int, reason: str) -> None:
            if attempt < cfg.worker_retries and not tracker.deadline_hit:
                backoff = cfg.worker_backoff_seconds * (2**attempt)
                result.worker_retries += 1
                if sink.enabled:
                    sink.emit(
                        WorkerRetry(
                            groups[index].strip_index,
                            attempt,
                            reason,
                            backoff,
                        )
                    )
                retries.append((clock() + backoff, index, attempt + 1))
            else:
                degrade(groups[index], reason)

        while queue or retries or self._busy_workers():
            now = clock()
            due = [r for r in retries if r[0] <= now]
            if due:
                retries[:] = [r for r in retries if r[0] > now]
                queue.extend((i, a) for _, i, a in due)
            if tracker.deadline_exceeded(f"wave {wave}"):
                # The call's clock ran out mid-wave: stop dealing,
                # retire what is running, degrade the remainder.
                for index, _ in queue:
                    degrade(groups[index], "deadline")
                queue.clear()
                for _, index, _ in retries:
                    degrade(groups[index], "deadline")
                retries.clear()
                for worker in self._busy_workers():
                    index = worker.busy[1]
                    self._retire(worker)
                    degrade(groups[index], "deadline")
                break
            # Deal: the first idle worker steals the head of the deque.
            for worker in self._workers:
                if not queue:
                    break
                if worker.busy is not None:
                    continue
                if worker.dead:
                    self._revive(worker)
                index, attempt = queue[0]
                task = self._task_seq
                deadline = self._group_deadline(groups[index], tracker)
                try:
                    worker.conn.send(
                        (
                            MSG_GROUP,
                            task,
                            self._epoch,
                            groups[index],
                            attempt,
                            wave_cfg,
                        )
                    )
                except (BrokenPipeError, OSError):
                    self._retire(worker)
                    continue
                queue.popleft()
                self._task_seq += 1
                self.steals += 1
                worker.busy = (task, index, attempt, deadline)
                if sink.enabled:
                    sink.emit(
                        WorkerSteal(
                            worker.worker_id,
                            wave,
                            groups[index].strip_index,
                            len(queue),
                        )
                    )
            busy = self._busy_workers()
            if not busy:
                if retries:
                    pause = min(r[0] for r in retries) - clock()
                    time.sleep(min(max(pause, 0.0), 0.1))
                continue
            now = clock()
            waits = [
                max(0.0, w.busy[3] - now)
                for w in busy
                if w.busy[3] is not None
            ]
            waits += [max(0.0, r[0] - now) for r in retries]
            remaining = tracker.remaining()
            if remaining is not None:
                waits.append(remaining)
            timeout = min(waits) + 0.01 if waits else None
            by_conn = {w.conn: w for w in busy}
            ready = multiprocessing.connection.wait(
                list(by_conn), timeout
            )
            for conn in ready:
                worker = by_conn[conn]
                task, index, attempt, _ = worker.busy
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # Died without reporting: a crash (including the
                    # GRR_FAULT-injected kind).
                    self._retire(worker)
                    handle_failure(index, attempt, "crash")
                    continue
                _, msg_task, group_result, error = message
                worker.busy = None
                if error is not None or msg_task != task:
                    # The worker exits after reporting an error (its
                    # local state is suspect); make the teardown
                    # explicit so the next deal revives a clean one.
                    self._retire(worker)
                    handle_failure(index, attempt, "error")
                else:
                    results[index] = group_result
            now = clock()
            for worker in self._busy_workers():
                task, index, attempt, deadline = worker.busy
                if deadline is not None and now >= deadline:
                    self._retire(worker)
                    handle_failure(index, attempt, "deadline")
        return [r for r in results if r is not None]
