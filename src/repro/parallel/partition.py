"""Spatial partitioning of a connection list into parallel waves.

The router's connection list is mostly spatially independent (Section 12:
the Lee fallback for the last ~10% dominates CPU time, but the easy 90%
touch disjoint regions of the board).  To route concurrently without
locking, each wave slices the via grid into disjoint strips; a connection
joins a strip's group only when its margin-expanded bounding box lies
entirely inside the strip, so two groups of the same wave can never claim
the same channel cell through the optimal (bounded-deviation) strategies.
Lee routes may still wander outside the box; the merge step catches those
with exact conflict detection and demotes the offenders.

Successive waves rotate the slicing axis and offset the strip boundaries
by half a strip, so connections straddling one wave's boundaries usually
fit a later wave.  Whatever never fits any wave is routed serially by the
residue phase.

Everything here is deterministic: strip boundaries depend only on the
board extent and worker count, group membership only on connection
geometry, and group order only on the (already sorted) input order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.board.nets import Connection

#: Axis ("x" or "y") and half-strip offset of each successive wave.
WAVE_SPECS: Tuple[Tuple[str, bool], ...] = (
    ("x", False),
    ("y", False),
    ("x", True),
    ("y", True),
)


@dataclass(frozen=True)
class StripSpec:
    """One wave's slicing geometry."""

    axis: str  #: "x" slices into vertical strips, "y" into horizontal.
    offset: bool  #: Shift boundaries by half a strip width.
    strips: int  #: Number of strips across the board.
    width: int  #: Strip width in via cells.


@dataclass
class WaveGroup:
    """The connections assigned to one strip of one wave."""

    strip_index: int
    connections: List[Connection] = field(default_factory=list)


def connection_span(conn: Connection, margin: int) -> Tuple[int, int, int, int]:
    """Margin-expanded via-grid bounding box (x_lo, y_lo, x_hi, y_hi)."""
    x_lo = min(conn.a.vx, conn.b.vx) - margin
    x_hi = max(conn.a.vx, conn.b.vx) + margin
    y_lo = min(conn.a.vy, conn.b.vy) - margin
    y_hi = max(conn.a.vy, conn.b.vy) + margin
    return x_lo, y_lo, x_hi, y_hi


def strip_spec(
    axis: str, offset: bool, via_nx: int, via_ny: int, workers: int, margin: int
) -> StripSpec:
    """Choose the strip count/width for one wave.

    One strip per worker, reduced until every strip is wide enough to hold
    at least one margin-expanded connection (otherwise nothing would fit).
    """
    extent = via_nx if axis == "x" else via_ny
    min_width = 2 * margin + 2
    strips = max(1, workers)
    while strips > 1 and extent // strips < min_width:
        strips -= 1
    return StripSpec(
        axis=axis, offset=offset, strips=strips, width=max(extent // strips, 1)
    )


def assign_strips(
    connections: Sequence[Connection], spec: StripSpec, margin: int
) -> Tuple[List[WaveGroup], List[Connection]]:
    """Split connections into per-strip groups plus boundary straddlers.

    A connection joins strip ``k`` iff its expanded bounding box projects
    entirely into strip ``k`` on the slicing axis; everything else is
    returned as leftover for the next wave.  Groups preserve the input
    order internally and are returned in strip order, so the whole
    assignment is a pure function of the inputs.
    """
    shift = spec.width // 2 if spec.offset else 0
    buckets: Dict[int, WaveGroup] = {}
    leftover: List[Connection] = []
    for conn in connections:
        x_lo, y_lo, x_hi, y_hi = connection_span(conn, margin)
        lo, hi = (x_lo, x_hi) if spec.axis == "x" else (y_lo, y_hi)
        k_lo = (lo - shift) // spec.width
        k_hi = (hi - shift) // spec.width
        if k_lo == k_hi:
            group = buckets.get(k_lo)
            if group is None:
                group = buckets[k_lo] = WaveGroup(strip_index=k_lo)
            group.connections.append(conn)
        else:
            leftover.append(conn)
    groups = [buckets[k] for k in sorted(buckets)]
    return groups, leftover


def shard_round_robin(
    connections: Sequence[Connection], shards: int
) -> List[WaveGroup]:
    """Deal connections round-robin into ``shards`` groups.

    Used for the speculative wave over the strip residue: the groups are
    *not* spatially disjoint — correctness rests entirely on the merge
    step's conflict detection — but each shard preserves the sorted order,
    and shard membership depends only on list position, so the wave stays
    deterministic.
    """
    groups = [WaveGroup(strip_index=i) for i in range(max(1, shards))]
    for i, conn in enumerate(connections):
        groups[i % len(groups)].connections.append(conn)
    return [g for g in groups if g.connections]


@dataclass(frozen=True)
class PoolDecision:
    """Whether a routing call should engage the persistent worker pool."""

    use_pool: bool
    #: ``"pool"`` when the pool engages, else why it did not:
    #: ``"single_core"``, ``"below_min_demand"`` or ``"congested"``.
    reason: str
    demand: int  #: Estimated routing demand in grid units of wire.
    supply: int  #: Total routable channel space in grid cells.
    utilization: float  #: demand / supply (0 when supply is unknown).


def estimate_demand(connections: Sequence[Connection], grid_per_via: int) -> int:
    """Estimated wire demand: Manhattan via distance in grid units.

    A lower bound on installed trace length — every route must cover at
    least its pins' Manhattan separation — that needs no routing to
    compute, which is the point: the pool decision must cost microseconds
    on a call that might take milliseconds.
    """
    return sum(
        (abs(c.a.vx - c.b.vx) + abs(c.a.vy - c.b.vy)) * grid_per_via
        for c in connections
    )


def pool_decision(
    connections: Sequence[Connection],
    supply: int,
    grid_per_via: int,
    min_demand: int,
    max_utilization: float,
    available_cpus: int = 2,
) -> PoolDecision:
    """Decide whether the worker pool can pay for itself on this board.

    Three ways it cannot:

    * **One core** (``available_cpus < 2``) — wave workers would
      timeslice a single CPU, so the pool's bookkeeping (delta replays
      in every worker, route-then-undo, merge verification) is pure
      overhead with no concurrency to buy it back.
    * **Too small** (``demand < min_demand``) — pool startup, delta
      broadcasts and merge bookkeeping are a fixed cost; on boards that
      route in tens of milliseconds the serial router wins outright.
    * **Too congested** (``demand / supply > max_utilization``) — on
      dense boards, wave workers grab the easy space first and the
      leftovers poison the serial residue: the board ends *less*
      complete than a pure serial run, the parity fallback re-routes
      everything from scratch, and the call pays for the board twice.
      Utilization is a cheap, route-free congestion proxy that cleanly
      separates the boards where this happens.

    The demand/utilization thresholds come from
    :class:`~repro.core.router.RouterConfig` (``pool_min_demand`` /
    ``pool_max_utilization``).  The *routed result* never depends on the
    decision — auto-serial is bit-identical to serial routing — so the
    machine-dependent CPU count only ever changes scheduling, never
    wiring.
    """
    demand = estimate_demand(connections, grid_per_via)
    utilization = demand / supply if supply else 0.0
    if available_cpus < 2:
        return PoolDecision(
            False, "single_core", demand, supply, utilization
        )
    if demand < min_demand:
        return PoolDecision(
            False, "below_min_demand", demand, supply, utilization
        )
    if utilization > max_utilization:
        return PoolDecision(False, "congested", demand, supply, utilization)
    return PoolDecision(True, "pool", demand, supply, utilization)


def routing_margin(radius: int, grid_per_via: int) -> int:
    """Via-cell margin covering the optimal strategies' deviation.

    The zero/one-via strategies move at most ``radius`` routing-grid
    channels off the connection's bounding box (Section 8.1), and a via
    drill claims one extra via cell; round the radius up to whole via
    cells and add one for the drill neighborhood.
    """
    return 1 + (radius + grid_per_via - 1) // max(grid_per_via, 1)
