"""The parallel wave router: fan out, merge, repair serially.

``ParallelRouter`` keeps the serial router's contract (``route()`` over a
connection list, same :class:`RoutingResult`) but routes the bulk of the
list in parallel waves (Ahrens et al., arXiv:2111.06169: bulk-route
spatially disjoint nets concurrently, then serially repair the
remainder):

1. **Partition** — slice the board into disjoint strips and group the
   still-unrouted connections whose margin-expanded bounding boxes fit a
   strip (:mod:`repro.parallel.partition`).
2. **Fan out** — route every group concurrently against a read-only
   snapshot of the master workspace (:mod:`repro.parallel.worker`).
3. **Merge** — install the returned records in deterministic strip order;
   collisions are demoted to the next wave
   (:mod:`repro.parallel.merge`).
4. **Residue** — whatever never fit a strip, failed in a worker (rip-up
   is disabled there) or kept colliding is routed by the unchanged serial
   strategy stack, rip-up included, so completion can never regress.
5. **Parity fallback** — if the board still ends incomplete, the parallel
   attempt is discarded and the whole board is re-routed serially from
   scratch: on boards the serial router cannot finish either, the
   parallel router reproduces the serial result exactly, keeping
   parallelism a pure accelerator rather than a quality change.

Determinism: the partition is a pure function of board extent, worker
count and connection geometry; workers are deterministic; each group
routes against the wave-start snapshot in a fresh child
(``maxtasksperchild=1``), so results do not depend on which worker a
group lands on; and the merge order is fixed.  Hence the completed set
depends only on the configuration, not on scheduling.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import List, Optional, Sequence

from repro.board.board import Board
from repro.board.nets import Connection
from repro.channels.workspace import RoutingWorkspace
from repro.core.profiling import RouterProfile
from repro.core.result import RoutingResult
from repro.core.sorting import sort_connections
from repro.obs.audit import WorkspaceAuditError, WorkspaceAuditor
from repro.obs.events import AuditRun, CacheStats, WaveEnd, WaveStart
from repro.obs.sinks import NULL_SINK, EventSink

from repro.parallel.merge import merge_wave
from repro.parallel.partition import (
    WAVE_SPECS,
    WaveGroup,
    assign_strips,
    routing_margin,
    shard_round_robin,
    strip_spec,
)
from repro.parallel.worker import (
    GroupResult,
    child_main,
    clear_parent_state,
    route_group_in,
    set_parent_state,
    spawn_payload,
    worker_config,
)


class ParallelRouter:
    """Wave-parallel PCB router with a serial repair phase."""

    def __init__(
        self,
        board: Board,
        config=None,
        workspace: Optional[RoutingWorkspace] = None,
        sink: Optional[EventSink] = None,
    ) -> None:
        from repro.core.router import RouterConfig

        self.board = board
        self.config = config or RouterConfig(workers=2)
        self.workspace = workspace or RoutingWorkspace(board)
        #: Master-side routing event stream (repro.obs).  Wave children
        #: route in other processes and are not traced; their outcomes
        #: surface here as merge/demotion events.
        self.sink = sink if sink is not None else NULL_SINK
        self.profile = RouterProfile()

    # ------------------------------------------------------------------
    # wave execution
    # ------------------------------------------------------------------

    def _pool_context(self):
        """Prefer fork (free copy-on-write snapshots) where available."""
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork"), True
        return multiprocessing.get_context("spawn"), False

    def _run_wave(
        self, groups: List[WaveGroup], wave_cfg
    ) -> List[GroupResult]:
        """Route one wave's groups, one short-lived process per group.

        At most ``workers`` children run at once; each routes exactly one
        group against a pristine snapshot (fork copy-on-write, or the
        pickled payload under spawn), so the outcome is independent of
        scheduling order and worker count.  See the worker module for why
        ``multiprocessing.Pool`` is not used here.
        """
        workers = min(max(1, self.config.workers), len(groups))
        try:
            return self._fan_out(groups, wave_cfg, workers)
        except (OSError, PermissionError):
            # No subprocesses available (restricted environments): route
            # each group in-process against a private snapshot, which is
            # behaviorally identical, just not concurrent.
            return [
                route_group_in(self.workspace.snapshot(), wave_cfg, group)
                for group in groups
            ]

    def _fan_out(
        self, groups: List[WaveGroup], wave_cfg, workers: int
    ) -> List[GroupResult]:
        """Launch/reap wave children with a bounded process slot count."""
        ctx, forked = self._pool_context()
        queue = ctx.SimpleQueue()
        payload = None
        if forked:
            set_parent_state(self.workspace, wave_cfg)
        else:
            payload = spawn_payload(self.workspace.snapshot(), wave_cfg)
        results: List[Optional[GroupResult]] = [None] * len(groups)
        active = {}
        next_index = 0
        failure = None
        try:
            while next_index < len(groups) or active:
                while (
                    failure is None
                    and next_index < len(groups)
                    and len(active) < workers
                ):
                    proc = ctx.Process(
                        target=child_main,
                        args=(queue, next_index, groups[next_index], payload),
                    )
                    proc.start()
                    active[next_index] = proc
                    next_index += 1
                if not active:
                    break
                index, result, error = queue.get()
                active.pop(index).join()
                if error is not None and failure is None:
                    failure = error
                results[index] = result
        finally:
            if forked:
                clear_parent_state()
            for proc in active.values():
                proc.terminate()
                proc.join()
        if failure is not None:
            raise RuntimeError(f"wave worker failed: {failure}")
        return [r for r in results if r is not None]

    # ------------------------------------------------------------------
    # the route entry point
    # ------------------------------------------------------------------

    def route(self, connections: Sequence[Connection]) -> RoutingResult:
        """Route a connection list; same contract as the serial router."""
        from repro.core.router import GreedyRouter

        started = time.perf_counter()
        self.profile = RouterProfile()
        cfg = self.config
        ordered = (
            sort_connections(connections) if cfg.sort else list(connections)
        )
        result = RoutingResult(
            workspace=self.workspace, connections=list(connections)
        )
        ws = self.workspace
        margin = routing_margin(cfg.radius, self.board.grid.grid_per_via)
        wave_cfg = worker_config(cfg)
        pending = [c for c in ordered if not ws.is_routed(c.conn_id)]

        sink = self.sink
        if cfg.workers > 1:
            for axis, offset in WAVE_SPECS:
                if not pending:
                    break
                with self.profile.measure("partition"):
                    spec = strip_spec(
                        axis,
                        offset,
                        self.board.grid.via_nx,
                        self.board.grid.via_ny,
                        cfg.workers,
                        margin,
                    )
                    groups, leftover = assign_strips(pending, spec, margin)
                if len(groups) < 2:
                    # A single strip would just be serial routing with
                    # pool overhead; leave the rest to the residue phase.
                    continue
                if sink.enabled:
                    sink.emit(
                        WaveStart(
                            result.waves + 1,
                            len(groups),
                            sum(len(g.connections) for g in groups),
                        )
                    )
                with self.profile.measure("wave"):
                    group_results = self._run_wave(groups, wave_cfg)
                for group_result in group_results:
                    self.profile.merge(group_result.profile)
                with self.profile.measure("merge"):
                    outcome = merge_wave(
                        ws, group_results, result, sink=sink
                    )
                result.waves += 1
                result.demoted += len(outcome.demoted)
                if sink.enabled:
                    sink.emit(
                        WaveEnd(
                            result.waves,
                            outcome.merged,
                            len(outcome.demoted),
                            len(outcome.failed),
                        )
                    )
                if cfg.audit:
                    self._audit(f"wave {result.waves} merge")
                carry = {c.conn_id for c in leftover}
                carry |= outcome.demoted | outcome.failed
                pending = [
                    c
                    for c in pending
                    if c.conn_id in carry and not ws.is_routed(c.conn_id)
                ]

        # Speculative wave: the strip residue is dominated by long
        # connections whose bounding boxes never fit a strip — exactly
        # the Lee-heavy tail worth parallelising.  Shard them round-robin
        # with no disjointness guarantee and let the merge's conflict
        # detection arbitrate: records merge in the master's sorted
        # order, so contested space goes to the connection the serial
        # router would have preferred, and the losers are demoted to the
        # serial residue below.
        if cfg.workers > 1 and len(pending) > cfg.workers:
            with self.profile.measure("partition"):
                groups = shard_round_robin(pending, cfg.workers)
            if len(groups) >= 2:
                if sink.enabled:
                    sink.emit(
                        WaveStart(
                            result.waves + 1, len(groups), len(pending)
                        )
                    )
                with self.profile.measure("wave"):
                    group_results = self._run_wave(groups, wave_cfg)
                for group_result in group_results:
                    self.profile.merge(group_result.profile)
                with self.profile.measure("merge"):
                    rank = {c.conn_id: i for i, c in enumerate(pending)}
                    outcome = merge_wave(
                        ws, group_results, result, rank, sink=sink
                    )
                result.waves += 1
                result.demoted += len(outcome.demoted)
                if sink.enabled:
                    sink.emit(
                        WaveEnd(
                            result.waves,
                            outcome.merged,
                            len(outcome.demoted),
                            len(outcome.failed),
                        )
                    )
                if cfg.audit:
                    self._audit(f"wave {result.waves} merge")
                pending = [
                    c for c in pending if not ws.is_routed(c.conn_id)
                ]

        # Serial residue: the unchanged strategy stack (rip-up included)
        # over everything still unrouted, exactly as if those connections
        # had reached the hard tail of a serial run.
        serial = GreedyRouter(
            self.board, self._serial_config(), workspace=ws, sink=sink
        )
        serial_result = serial.route(ordered)
        self.profile.merge(serial.profile)
        result.passes += serial_result.passes
        result.rip_up_count += serial_result.rip_up_count
        result.putback_count += serial_result.putback_count
        result.lee_expansions += serial_result.lee_expansions
        result.routed_by.update(serial_result.routed_by)
        # The residue's rip-ups may have removed wave-routed connections
        # without restoring them; drop stale strategy entries.
        result.routed_by = {
            conn_id: strategy
            for conn_id, strategy in result.routed_by.items()
            if ws.is_routed(conn_id)
        }
        result.failed = [
            c.conn_id for c in ordered if not ws.is_routed(c.conn_id)
        ]

        if result.failed and cfg.parity_fallback:
            result = self._serial_fallback(connections, result)

        if sink.enabled:
            # Aggregate over wave workers (merged from their profiles)
            # and the master-side serial phases.
            hits = self.profile.counters.get("gap_cache_hits", 0)
            misses = self.profile.counters.get("gap_cache_misses", 0)
            total = hits + misses
            sink.emit(
                CacheStats(
                    "parallel total",
                    hits,
                    misses,
                    hits / total if total else 0.0,
                )
            )
        result.cpu_seconds = time.perf_counter() - started
        return result

    def _audit(self, context: str) -> None:
        """Verify master invariants after a merge; raise on breakage."""
        report = WorkspaceAuditor(self.workspace).audit()
        if self.sink.enabled:
            self.sink.emit(AuditRun(context, len(report.violations)))
        if not report.ok:
            raise WorkspaceAuditError(report, context)

    def _serial_config(self):
        """The config for serial phases (single worker, same knobs)."""
        from dataclasses import replace

        return replace(self.config, workers=1)

    def _serial_fallback(
        self, connections: Sequence[Connection], attempt: RoutingResult
    ) -> RoutingResult:
        """Discard the parallel attempt and re-route serially from scratch.

        Reached only on boards the wave pipeline could not complete —
        typically boards the serial router cannot complete either, where
        reproducing the serial result exactly matters more than speed.
        """
        from repro.core.router import GreedyRouter

        fresh = RoutingWorkspace(self.board)
        serial = GreedyRouter(
            self.board, self._serial_config(), fresh, sink=self.sink
        )
        result = serial.route(connections)
        self.workspace = fresh
        self.profile.merge(serial.profile)
        result.waves = attempt.waves
        result.demoted = attempt.demoted
        result.fallback_serial = True
        return result
