"""The parallel wave router: fan out, merge, repair serially.

``ParallelRouter`` keeps the serial router's contract (``route()`` over a
connection list, same :class:`RoutingResult`) but routes the bulk of the
list in parallel waves (Ahrens et al., arXiv:2111.06169: bulk-route
spatially disjoint nets concurrently, then serially repair the
remainder):

1. **Partition** — slice the board into disjoint strips and group the
   still-unrouted connections whose margin-expanded bounding boxes fit a
   strip (:mod:`repro.parallel.partition`).
2. **Fan out** — route every group concurrently against a read-only
   snapshot of the master workspace (:mod:`repro.parallel.worker`).
3. **Merge** — install the returned records in deterministic strip order;
   collisions are demoted to the next wave
   (:mod:`repro.parallel.merge`).
4. **Residue** — whatever never fit a strip, failed in a worker (rip-up
   is disabled there) or kept colliding is routed by the unchanged serial
   strategy stack, rip-up included, so completion can never regress.
5. **Parity fallback** — if the board still ends incomplete, the parallel
   attempt is discarded and the whole board is re-routed serially from
   scratch: on boards the serial router cannot finish either, the
   parallel router reproduces the serial result exactly, keeping
   parallelism a pure accelerator rather than a quality change.

Determinism: the partition is a pure function of board extent, worker
count and connection geometry; workers are deterministic; each group
routes against the wave-start snapshot in a fresh child
(``maxtasksperchild=1``), so results do not depend on which worker a
group lands on; and the merge order is fixed.  Hence the completed set
depends only on the configuration, not on scheduling.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from collections import deque
from dataclasses import replace
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.board.board import Board
from repro.board.nets import Connection
from repro.channels.workspace import RoutingWorkspace
from repro.core.budget import STOP_DEADLINE, BudgetTracker
from repro.core.profiling import RouterProfile
from repro.core.result import RoutingResult
from repro.core.sorting import sort_connections
from repro.obs.audit import WorkspaceAuditError, WorkspaceAuditor
from repro.obs.events import (
    AuditRun,
    CacheStats,
    DegradedMode,
    WaveEnd,
    WaveStart,
    WorkerRetry,
)
from repro.obs.sinks import NULL_SINK, EventSink

from repro.parallel.faults import InjectedFault, fault_spec, inject_inline
from repro.parallel.merge import merge_wave
from repro.parallel.partition import (
    WAVE_SPECS,
    WaveGroup,
    assign_strips,
    routing_margin,
    shard_round_robin,
    strip_spec,
)
from repro.parallel.worker import (
    GroupResult,
    child_main,
    clear_parent_state,
    route_group_in,
    set_parent_state,
    spawn_payload,
    worker_config,
)

#: Slack added to a wave group's parent-side deadline so a child that
#: finishes right at the budget line still gets to report its result.
GROUP_GRACE_SECONDS = 0.25


class ParallelRouter:
    """Wave-parallel PCB router with a serial repair phase."""

    def __init__(
        self,
        board: Board,
        config=None,
        workspace: Optional[RoutingWorkspace] = None,
        sink: Optional[EventSink] = None,
        budget_tracker: Optional[BudgetTracker] = None,
    ) -> None:
        from repro.core.router import RouterConfig

        self.board = board
        self.config = config or RouterConfig(workers=2)
        self.workspace = workspace or RoutingWorkspace(board)
        #: Master-side routing event stream (repro.obs).  Wave children
        #: route in other processes and are not traced; their outcomes
        #: surface here as merge/demotion events.
        self.sink = sink if sink is not None else NULL_SINK
        self.profile = RouterProfile()
        #: Optional externally-owned deadline clock (mirrors the serial
        #: router); normally None and created per route() call.
        self.budget_tracker = budget_tracker

    # ------------------------------------------------------------------
    # wave execution
    # ------------------------------------------------------------------

    def _pool_context(self):
        """Prefer fork (free copy-on-write snapshots) where available."""
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork"), True
        return multiprocessing.get_context("spawn"), False

    def _run_wave(
        self,
        groups: List[WaveGroup],
        wave_cfg,
        result: RoutingResult,
        tracker: BudgetTracker,
    ) -> List[GroupResult]:
        """Route one wave's groups, one short-lived process per group.

        At most ``workers`` children run at once; each routes exactly one
        group against a pristine snapshot (fork copy-on-write, or the
        pickled payload under spawn), so the outcome is independent of
        scheduling order and worker count.  See the worker module for why
        ``multiprocessing.Pool`` is not used here.

        A child that crashes, errors, or blows its group deadline is
        relaunched with exponential backoff up to
        ``config.worker_retries`` times, then its group is *degraded*:
        dropped from the wave so the serial residue phase routes those
        connections instead.  A wave failure therefore never fails the
        routing call.
        """
        workers = min(max(1, self.config.workers), len(groups))
        try:
            return self._fan_out(groups, wave_cfg, workers, result, tracker)
        except (OSError, PermissionError):
            # No subprocesses available (restricted environments): route
            # each group in-process against a private snapshot, which is
            # behaviorally identical, just not concurrent.
            return self._run_inline(groups, wave_cfg, result, tracker)

    def _degrade_group(
        self, group: WaveGroup, reason: str, result: RoutingResult
    ) -> None:
        """Drop a group from its wave; the serial residue picks it up."""
        result.degraded_groups += 1
        if self.sink.enabled:
            self.sink.emit(
                DegradedMode(
                    f"group {group.strip_index}",
                    reason,
                    len(group.connections),
                )
            )

    def _run_inline(
        self,
        groups: List[WaveGroup],
        wave_cfg,
        result: RoutingResult,
        tracker: BudgetTracker,
    ) -> List[GroupResult]:
        """In-process fan-out fallback (same retry/degrade contract)."""
        cfg = self.config
        sink = self.sink
        spec = fault_spec()
        out: List[GroupResult] = []
        for group in groups:
            if tracker.deadline_exceeded(f"group {group.strip_index}"):
                self._degrade_group(group, "deadline", result)
                continue
            for attempt in range(cfg.worker_retries + 1):
                try:
                    inject_inline(spec, attempt)
                    out.append(
                        route_group_in(
                            self.workspace.snapshot(), wave_cfg, group
                        )
                    )
                    break
                except InjectedFault:
                    if attempt < cfg.worker_retries:
                        result.worker_retries += 1
                        if sink.enabled:
                            sink.emit(
                                WorkerRetry(
                                    group.strip_index, attempt, "error", 0.0
                                )
                            )
                    else:
                        self._degrade_group(group, "error", result)
        return out

    def _group_deadline(
        self, group: WaveGroup, tracker: BudgetTracker
    ) -> Optional[float]:
        """Absolute parent-side give-up time for one wave child."""
        limits = []
        per_conn = self.config.budget.per_connection_seconds
        if per_conn is not None:
            limits.append(
                per_conn * max(1, len(group.connections))
                + GROUP_GRACE_SECONDS
            )
        remaining = tracker.remaining()
        if remaining is not None:
            limits.append(remaining + GROUP_GRACE_SECONDS)
        if not limits:
            return None
        return time.perf_counter() + min(limits)

    def _fan_out(
        self,
        groups: List[WaveGroup],
        wave_cfg,
        workers: int,
        result: RoutingResult,
        tracker: BudgetTracker,
    ) -> List[GroupResult]:
        """Launch/reap wave children with a bounded process slot count.

        Each child reports over its own one-way pipe: a child that dies
        without reporting is an EOF (``reason="crash"``), a child that
        reports an exception is an ``"error"``, and a child still running
        at its group deadline is terminated (``"deadline"``).  All three
        go through the same bounded retry-then-degrade policy.
        """
        ctx, forked = self._pool_context()
        payload = None
        if forked:
            set_parent_state(self.workspace, wave_cfg)
        else:
            payload = spawn_payload(self.workspace.snapshot(), wave_cfg)
        cfg = self.config
        sink = self.sink
        clock = time.perf_counter
        results: List[Optional[GroupResult]] = [None] * len(groups)
        #: Groups awaiting a process slot, as (group index, attempt).
        launchable: Deque[Tuple[int, int]] = deque(
            (i, 0) for i in range(len(groups))
        )
        #: Failed groups backing off, as (ready time, index, attempt).
        retries: List[Tuple[float, int, int]] = []
        #: recv pipe -> (index, attempt, process, group deadline).
        active: Dict[object, Tuple[int, int, object, Optional[float]]] = {}

        def handle_failure(index: int, attempt: int, reason: str) -> None:
            if attempt < cfg.worker_retries and not tracker.deadline_hit:
                backoff = cfg.worker_backoff_seconds * (2**attempt)
                result.worker_retries += 1
                if sink.enabled:
                    sink.emit(
                        WorkerRetry(
                            groups[index].strip_index,
                            attempt,
                            reason,
                            backoff,
                        )
                    )
                retries.append((clock() + backoff, index, attempt + 1))
            else:
                self._degrade_group(groups[index], reason, result)

        def reap(conn, proc) -> None:
            proc.join()
            conn.close()

        try:
            while launchable or retries or active:
                now = clock()
                due = [r for r in retries if r[0] <= now]
                if due:
                    retries[:] = [r for r in retries if r[0] > now]
                    launchable.extend((i, a) for _, i, a in due)
                if tracker.deadline_exceeded("fan-out"):
                    # The call's clock ran out mid-wave: stop launching,
                    # terminate what is running, degrade the remainder.
                    for index, _ in launchable:
                        self._degrade_group(
                            groups[index], "deadline", result
                        )
                    launchable.clear()
                    for _, index, _ in retries:
                        self._degrade_group(
                            groups[index], "deadline", result
                        )
                    retries.clear()
                    for conn, (index, _, proc, _) in active.items():
                        proc.terminate()
                        reap(conn, proc)
                        self._degrade_group(
                            groups[index], "deadline", result
                        )
                    active.clear()
                    break
                while launchable and len(active) < workers:
                    index, attempt = launchable.popleft()
                    recv, send = ctx.Pipe(duplex=False)
                    proc = ctx.Process(
                        target=child_main,
                        args=(send, index, groups[index], attempt, payload),
                    )
                    proc.start()
                    # The child holds its own copy of the write end; ours
                    # must close so a dead child reads as EOF.
                    send.close()
                    active[recv] = (
                        index,
                        attempt,
                        proc,
                        self._group_deadline(groups[index], tracker),
                    )
                if not active:
                    if retries:
                        pause = min(r[0] for r in retries) - clock()
                        time.sleep(min(max(pause, 0.0), 0.1))
                    continue
                now = clock()
                waits = [
                    max(0.0, d - now)
                    for (_, _, _, d) in active.values()
                    if d is not None
                ]
                waits += [max(0.0, r[0] - now) for r in retries]
                remaining = tracker.remaining()
                if remaining is not None:
                    waits.append(remaining)
                timeout = min(waits) + 0.01 if waits else None
                ready = multiprocessing.connection.wait(
                    list(active), timeout
                )
                for conn in ready:
                    index, attempt, proc, _ = active.pop(conn)
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        reap(conn, proc)
                        handle_failure(index, attempt, "crash")
                        continue
                    reap(conn, proc)
                    _, group_result, error = message
                    if error is not None:
                        handle_failure(index, attempt, "error")
                    else:
                        results[index] = group_result
                now = clock()
                for conn in [
                    conn
                    for conn, (_, _, _, d) in active.items()
                    if d is not None and now >= d
                ]:
                    index, attempt, proc, _ = active.pop(conn)
                    proc.terminate()
                    reap(conn, proc)
                    handle_failure(index, attempt, "deadline")
        finally:
            if forked:
                clear_parent_state()
            for conn, (_, _, proc, _) in active.items():
                proc.terminate()
                reap(conn, proc)
        return [r for r in results if r is not None]

    # ------------------------------------------------------------------
    # the route entry point
    # ------------------------------------------------------------------

    def route(self, connections: Sequence[Connection]) -> RoutingResult:
        """Route a connection list; same contract as the serial router."""
        from repro.core.router import GreedyRouter

        started = time.perf_counter()
        self.profile = RouterProfile()
        cfg = self.config
        tracker = self.budget_tracker or BudgetTracker(
            cfg.budget, self.sink
        )
        timed = tracker.timed
        ordered = (
            sort_connections(connections) if cfg.sort else list(connections)
        )
        result = RoutingResult(
            workspace=self.workspace, connections=list(connections)
        )
        ws = self.workspace
        margin = routing_margin(cfg.radius, self.board.grid.grid_per_via)
        wave_cfg = worker_config(cfg)
        pending = [c for c in ordered if not ws.is_routed(c.conn_id)]

        sink = self.sink
        if cfg.workers > 1:
            for axis, offset in WAVE_SPECS:
                if not pending:
                    break
                if timed:
                    if tracker.deadline_exceeded(
                        f"wave {result.waves + 1}"
                    ):
                        break
                    tracker.checkpoint(f"wave {result.waves + 1}")
                with self.profile.measure("partition"):
                    spec = strip_spec(
                        axis,
                        offset,
                        self.board.grid.via_nx,
                        self.board.grid.via_ny,
                        cfg.workers,
                        margin,
                    )
                    groups, leftover = assign_strips(pending, spec, margin)
                if len(groups) < 2:
                    # A single strip would just be serial routing with
                    # pool overhead; leave the rest to the residue phase.
                    continue
                if sink.enabled:
                    sink.emit(
                        WaveStart(
                            result.waves + 1,
                            len(groups),
                            sum(len(g.connections) for g in groups),
                        )
                    )
                with self.profile.measure("wave"):
                    group_results = self._run_wave(
                        groups,
                        self._wave_config(wave_cfg, tracker),
                        result,
                        tracker,
                    )
                for group_result in group_results:
                    self.profile.merge(group_result.profile)
                with self.profile.measure("merge"):
                    outcome = merge_wave(
                        ws, group_results, result, sink=sink
                    )
                result.waves += 1
                result.demoted += len(outcome.demoted)
                if sink.enabled:
                    sink.emit(
                        WaveEnd(
                            result.waves,
                            outcome.merged,
                            len(outcome.demoted),
                            len(outcome.failed),
                        )
                    )
                if cfg.audit:
                    self._audit(f"wave {result.waves} merge")
                carry = {c.conn_id for c in leftover}
                carry |= outcome.demoted | outcome.failed
                pending = [
                    c
                    for c in pending
                    if c.conn_id in carry and not ws.is_routed(c.conn_id)
                ]

        # Speculative wave: the strip residue is dominated by long
        # connections whose bounding boxes never fit a strip — exactly
        # the Lee-heavy tail worth parallelising.  Shard them round-robin
        # with no disjointness guarantee and let the merge's conflict
        # detection arbitrate: records merge in the master's sorted
        # order, so contested space goes to the connection the serial
        # router would have preferred, and the losers are demoted to the
        # serial residue below.
        if (
            cfg.workers > 1
            and len(pending) > cfg.workers
            and not (timed and tracker.deadline_exceeded("speculative wave"))
        ):
            if timed:
                tracker.checkpoint("speculative wave")
            with self.profile.measure("partition"):
                groups = shard_round_robin(pending, cfg.workers)
            if len(groups) >= 2:
                if sink.enabled:
                    sink.emit(
                        WaveStart(
                            result.waves + 1, len(groups), len(pending)
                        )
                    )
                with self.profile.measure("wave"):
                    group_results = self._run_wave(
                        groups,
                        self._wave_config(wave_cfg, tracker),
                        result,
                        tracker,
                    )
                for group_result in group_results:
                    self.profile.merge(group_result.profile)
                with self.profile.measure("merge"):
                    rank = {c.conn_id: i for i, c in enumerate(pending)}
                    outcome = merge_wave(
                        ws, group_results, result, rank, sink=sink
                    )
                result.waves += 1
                result.demoted += len(outcome.demoted)
                if sink.enabled:
                    sink.emit(
                        WaveEnd(
                            result.waves,
                            outcome.merged,
                            len(outcome.demoted),
                            len(outcome.failed),
                        )
                    )
                if cfg.audit:
                    self._audit(f"wave {result.waves} merge")
                pending = [
                    c for c in pending if not ws.is_routed(c.conn_id)
                ]

        # Serial residue: the unchanged strategy stack (rip-up included)
        # over everything still unrouted, exactly as if those connections
        # had reached the hard tail of a serial run.  It shares this
        # call's budget tracker, so one deadline spans waves + residue.
        serial = GreedyRouter(
            self.board,
            self._serial_config(),
            workspace=ws,
            sink=sink,
            budget_tracker=tracker,
        )
        serial_result = serial.route(ordered)
        self.profile.merge(serial.profile)
        result.passes += serial_result.passes
        result.rip_up_count += serial_result.rip_up_count
        result.putback_count += serial_result.putback_count
        result.lee_expansions += serial_result.lee_expansions
        result.routed_by.update(serial_result.routed_by)
        # The residue's rip-ups may have removed wave-routed connections
        # without restoring them; drop stale strategy entries.
        result.routed_by = {
            conn_id: strategy
            for conn_id, strategy in result.routed_by.items()
            if ws.is_routed(conn_id)
        }
        result.failed = [
            c.conn_id for c in ordered if not ws.is_routed(c.conn_id)
        ]
        result.stopped_reason = serial_result.stopped_reason
        result.failure_reasons = dict(serial_result.failure_reasons)

        if result.failed and cfg.parity_fallback:
            if tracker.deadline_hit:
                # Re-routing from scratch would destroy the deadline-
                # limited partial result with no clock left to rebuild
                # it; keep what we have.
                if sink.enabled:
                    sink.emit(
                        DegradedMode(
                            "parity_fallback",
                            "deadline",
                            len(result.failed),
                        )
                    )
            else:
                result = self._serial_fallback(
                    connections, result, tracker
                )

        if sink.enabled:
            # Aggregate over wave workers (merged from their profiles)
            # and the master-side serial phases.
            hits = self.profile.counters.get("gap_cache_hits", 0)
            misses = self.profile.counters.get("gap_cache_misses", 0)
            total = hits + misses
            sink.emit(
                CacheStats(
                    "parallel total",
                    hits,
                    misses,
                    hits / total if total else 0.0,
                )
            )
        result.cpu_seconds = time.perf_counter() - started
        return result

    def _audit(self, context: str) -> None:
        """Verify master invariants after a merge; raise on breakage."""
        report = WorkspaceAuditor(self.workspace).audit()
        if self.sink.enabled:
            self.sink.emit(AuditRun(context, len(report.violations)))
        if not report.ok:
            raise WorkspaceAuditError(report, context)

    def _serial_config(self):
        """The config for serial phases (single worker, same knobs)."""
        return replace(self.config, workers=1)

    def _wave_config(self, wave_cfg, tracker: BudgetTracker):
        """The config wave children route with right now.

        A child's own budget clock starts when the child does, so its
        deadline must be this call's *remaining* time, not the original
        ``deadline_seconds``.  Untimed runs return ``wave_cfg`` unchanged
        (bit-identical configs, zero overhead).
        """
        remaining = tracker.remaining()
        if remaining is None:
            return wave_cfg
        return replace(
            wave_cfg,
            budget=replace(
                wave_cfg.budget, deadline_seconds=max(0.0, remaining)
            ),
        )

    def _serial_fallback(
        self,
        connections: Sequence[Connection],
        attempt: RoutingResult,
        tracker: BudgetTracker,
    ) -> RoutingResult:
        """Discard the parallel attempt and re-route serially from scratch.

        Reached only on boards the wave pipeline could not complete —
        typically boards the serial router cannot complete either, where
        reproducing the serial result exactly matters more than speed.
        Shares the call's budget tracker; if the clock runs out mid-way
        and the from-scratch partial is *worse* than the parallel
        attempt, the attempt is kept instead.
        """
        from repro.core.router import GreedyRouter

        fresh = RoutingWorkspace(self.board)
        serial = GreedyRouter(
            self.board,
            self._serial_config(),
            fresh,
            sink=self.sink,
            budget_tracker=tracker,
        )
        result = serial.route(connections)
        self.profile.merge(serial.profile)
        if (
            result.stopped_reason == STOP_DEADLINE
            and result.routed_count < attempt.routed_count
        ):
            if self.sink.enabled:
                self.sink.emit(
                    DegradedMode(
                        "parity_fallback",
                        "deadline",
                        len(attempt.failed),
                    )
                )
            return attempt
        self.workspace = fresh
        result.waves = attempt.waves
        result.demoted = attempt.demoted
        result.worker_retries = attempt.worker_retries
        result.degraded_groups = attempt.degraded_groups
        result.fallback_serial = True
        return result
