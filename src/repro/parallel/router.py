"""The parallel wave router: fan out to a persistent pool, merge, repair.

``ParallelRouter`` keeps the serial router's contract (``route()`` over a
connection list, same :class:`RoutingResult`) but routes the bulk of the
list in parallel waves (Ahrens et al., arXiv:2111.06169: bulk-route
spatially disjoint nets concurrently, then serially repair the
remainder):

0. **Auto-serial heuristic** — boards too small to amortize the pool, or
   congested enough that waves would poison the serial residue, are
   routed by the unchanged serial router without touching the pool
   (:func:`repro.parallel.partition.pool_decision`); the result is
   bit-identical to serial routing and flagged ``auto_serial``.
1. **Partition** — slice the board into disjoint strips and group the
   still-unrouted connections whose margin-expanded bounding boxes fit a
   strip (:mod:`repro.parallel.partition`).
2. **Fan out** — deal the groups to a persistent worker pool spawned
   once per routing call (:mod:`repro.parallel.pool`): idle workers
   steal groups from a shared deque, and between waves the master ships
   only compact workspace deltas, never fresh snapshots.
3. **Merge** — install the returned records in deterministic strip
   order; collisions are demoted to the next wave
   (:mod:`repro.parallel.merge`).  The merge is recorded as a
   :class:`~repro.channels.delta.WorkspaceDelta` and broadcast to the
   pool so every worker tracks the master state.
4. **Residue** — whatever never fit a strip, failed in a worker (rip-up
   is disabled there) or kept colliding is routed by the unchanged serial
   strategy stack, rip-up included, so completion can never regress.
5. **Parity fallback** — if the board still ends incomplete, the parallel
   attempt is discarded and the whole board is re-routed serially from
   scratch: on boards the serial router cannot finish either, the
   parallel router reproduces the serial result exactly, keeping
   parallelism a pure accelerator rather than a quality change.

Determinism: the partition is a pure function of board extent, worker
count and connection geometry; workers are deterministic and all sit at
the same sync epoch when a wave is dealt, so results do not depend on
which worker a group lands on; and the merge order is fixed.  Hence the
completed set depends only on the configuration, not on scheduling.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace
from typing import List, Optional, Sequence

from repro.board.board import Board
from repro.board.nets import Connection
from repro.channels.workspace import RoutingWorkspace
from repro.core.budget import STOP_DEADLINE, BudgetTracker
from repro.core.profiling import RouterProfile
from repro.core.result import RoutingResult
from repro.core.sorting import sort_connections
from repro.obs.audit import WorkspaceAuditError, WorkspaceAuditor
from repro.obs.events import (
    AuditRun,
    AutoSerial,
    BackendSelected,
    CacheStats,
    DegradedMode,
    WaveEnd,
    WaveStart,
    WorkerRetry,
)
from repro.obs.sinks import NULL_SINK, EventSink

from repro.parallel.faults import InjectedFault, fault_spec, inject_inline
from repro.parallel.merge import merge_wave
from repro.parallel.partition import (
    WAVE_SPECS,
    WaveGroup,
    assign_strips,
    pool_decision,
    routing_margin,
    shard_round_robin,
    strip_spec,
)
from repro.parallel.pool import WorkerPool
from repro.parallel.worker import GroupResult, route_group_in, worker_config


def _available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


class ParallelRouter:
    """Wave-parallel PCB router with a serial repair phase."""

    def __init__(
        self,
        board: Board,
        config=None,
        workspace: Optional[RoutingWorkspace] = None,
        sink: Optional[EventSink] = None,
        budget_tracker: Optional[BudgetTracker] = None,
    ) -> None:
        from repro.core.router import RouterConfig

        self.board = board
        self.config = config or RouterConfig(workers=2)
        self.workspace = workspace or RoutingWorkspace(board)
        #: Resolved search backend, applied master-side; snapshots carry
        #: it to pool workers, so every wave dispatches the same kernels.
        from repro.core import fastpath

        self.backend = fastpath.resolve_backend(self.config.backend)
        self.workspace.set_backend(self.backend)
        #: Master-side routing event stream (repro.obs).  Pool workers
        #: route in other processes and are not traced; their outcomes
        #: surface here as merge/demotion events.
        self.sink = sink if sink is not None else NULL_SINK
        self.profile = RouterProfile()
        #: Optional externally-owned deadline clock (mirrors the serial
        #: router); normally None and created per route() call.
        self.budget_tracker = budget_tracker
        #: Keep the worker pool alive past route() instead of closing
        #: it: the ECO session sets this so the mutate→reroute loop
        #: reuses one pool (claim it back with :meth:`release_pool`).
        self.keep_pool = False
        self._adopted_pool: Optional[WorkerPool] = None
        self._kept_pool: Optional[WorkerPool] = None

    # ------------------------------------------------------------------
    # pool handoff (ECO session reuse)
    # ------------------------------------------------------------------

    def attach_pool(self, pool: Optional[WorkerPool]) -> None:
        """Offer an already-running pool for the next route() call.

        The pool is adopted only if it is alive, mirrors *this*
        router's workspace object and matches the configured worker
        count; otherwise it is closed and a fresh pool spawns as usual.
        The caller must have synchronized the pool to the workspace's
        current state (see :meth:`RoutingWorkspace.drain_delta`).
        """
        self._adopted_pool = pool

    def release_pool(self) -> Optional[WorkerPool]:
        """Claim the surviving pool after a ``keep_pool`` route() call.

        Returns None when no pool survived (auto-serial with no prior
        pool, inline fallback, parity fallback, or ``keep_pool`` unset
        — in which case the pool was closed).
        """
        pool, self._kept_pool = self._kept_pool, None
        if pool is None:
            # route() may never have touched the pool (auto-serial or a
            # waveless call); hand an adopted pool back rather than
            # leaking it.  Its replicas catch up at the next sync.
            pool, self._adopted_pool = self._adopted_pool, None
        return pool

    # ------------------------------------------------------------------
    # wave execution
    # ------------------------------------------------------------------

    def _degrade_group(
        self, group: WaveGroup, reason: str, result: RoutingResult
    ) -> None:
        """Drop a group from its wave; the serial residue picks it up."""
        result.degraded_groups += 1
        if self.sink.enabled:
            self.sink.emit(
                DegradedMode(
                    f"group {group.strip_index}",
                    reason,
                    len(group.connections),
                )
            )

    def _run_inline(
        self,
        groups: List[WaveGroup],
        wave_cfg,
        result: RoutingResult,
        tracker: BudgetTracker,
    ) -> List[GroupResult]:
        """In-process fan-out fallback (same retry/degrade contract).

        Used when no worker pool can be created (restricted
        environments): each group routes against a private snapshot,
        which is behaviorally identical, just not concurrent.
        """
        cfg = self.config
        sink = self.sink
        spec = fault_spec()
        out: List[GroupResult] = []
        for group in groups:
            if tracker.deadline_exceeded(f"group {group.strip_index}"):
                self._degrade_group(group, "deadline", result)
                continue
            for attempt in range(cfg.worker_retries + 1):
                try:
                    inject_inline(spec, attempt)
                    out.append(
                        route_group_in(
                            self.workspace.snapshot(), wave_cfg, group
                        )
                    )
                    break
                except InjectedFault:
                    if attempt < cfg.worker_retries:
                        result.worker_retries += 1
                        if sink.enabled:
                            sink.emit(
                                WorkerRetry(
                                    group.strip_index, attempt, "error", 0.0
                                )
                            )
                    else:
                        self._degrade_group(group, "error", result)
        return out

    def _auto_serial(
        self,
        connections: Sequence[Connection],
        decision,
        tracker: BudgetTracker,
        started: float,
    ) -> RoutingResult:
        """Route the whole call serially, bypassing the pool entirely.

        The result is bit-identical to ``workers=1`` routing: same
        config (minus the worker count), same workspace, same tracker.
        """
        from repro.core.router import GreedyRouter

        if self.sink.enabled:
            self.sink.emit(
                AutoSerial(
                    decision.reason,
                    decision.demand,
                    decision.supply,
                    decision.utilization,
                    len(connections),
                )
            )
        serial = GreedyRouter(
            self.board,
            self._serial_config(),
            workspace=self.workspace,
            sink=self.sink,
            budget_tracker=tracker,
        )
        result = serial.route(connections)
        self.profile = serial.profile
        result.auto_serial = True
        result.cpu_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    # the route entry point
    # ------------------------------------------------------------------

    def route(self, connections: Sequence[Connection]) -> RoutingResult:
        """Route a connection list; same contract as the serial router."""
        from repro.core.router import GreedyRouter

        started = time.perf_counter()
        self.profile = RouterProfile()
        cfg = self.config
        tracker = self.budget_tracker or BudgetTracker(
            cfg.budget, self.sink
        )
        timed = tracker.timed
        sink = self.sink
        ws = self.workspace
        self.profile.bump(f"backend_{self.backend}", 1)
        if sink.enabled:
            sink.emit(BackendSelected(cfg.backend, self.backend))

        if cfg.workers > 1 and cfg.pool_auto_serial:
            decision = pool_decision(
                connections,
                ws.channel_supply(),
                self.board.grid.grid_per_via,
                cfg.pool_min_demand,
                cfg.pool_max_utilization,
                available_cpus=_available_cpus(),
            )
            if not decision.use_pool:
                return self._auto_serial(
                    connections, decision, tracker, started
                )

        ordered = (
            sort_connections(connections) if cfg.sort else list(connections)
        )
        result = RoutingResult(
            workspace=ws, connections=list(connections)
        )
        margin = routing_margin(cfg.radius, self.board.grid.grid_per_via)
        wave_cfg = worker_config(cfg)
        pending = [c for c in ordered if not ws.is_routed(c.conn_id)]

        #: The pool comes up lazily at the first wave that actually has
        #: groups to deal, and only once per route() call.
        pool: Optional[WorkerPool] = None
        inline = False

        def run_wave(groups: List[WaveGroup]) -> List[GroupResult]:
            nonlocal pool, inline
            if pool is None and not inline:
                adopted, self._adopted_pool = self._adopted_pool, None
                if (
                    adopted is not None
                    and adopted.alive
                    and adopted.workspace is ws
                    and adopted.n_workers == cfg.workers
                ):
                    pool = adopted
                else:
                    if adopted is not None:
                        adopted.close()
                    try:
                        with self.profile.measure("pool_spawn"):
                            if ws.delta_active:
                                # A continuous (ECO) recording may hold
                                # ops already baked into the snapshot
                                # the new workers are about to receive;
                                # drop them so the first sync does not
                                # replay them twice.
                                ws.drain_delta()
                            candidate = WorkerPool(
                                ws, cfg, cfg.workers, sink=sink
                            )
                            candidate.start()
                        pool = candidate
                    except (OSError, PermissionError):
                        # No subprocesses available (restricted
                        # environments): route in-process instead.
                        inline = True
            wcfg = self._wave_config(wave_cfg, tracker)
            if inline:
                return self._run_inline(groups, wcfg, result, tracker)
            return pool.run_wave(
                groups,
                wcfg,
                result.waves + 1,
                tracker,
                result,
                lambda group, reason: self._degrade_group(
                    group, reason, result
                ),
            )

        def merge_and_sync(group_results, rank=None, last=False):
            """Merge one wave, then ship the delta to the pool.

            The delta is recorded around the merge (the only master
            mutations between waves), so the broadcast carries exactly
            what this wave changed.  The last wave syncs only when the
            pool outlives this call (``keep_pool``); otherwise it is
            about to be closed.  Under an external continuous recording
            (the ECO session's), the log is *drained* at each sync
            point rather than opened and closed around the merge, so
            the session's own mutations never slip between windows.
            """
            external = ws.delta_active
            recording = pool is not None and (not last or self.keep_pool)
            if recording and not external:
                ws.begin_delta()
            try:
                with self.profile.measure("merge"):
                    outcome = merge_wave(
                        ws, group_results, result, rank, sink=sink
                    )
            finally:
                if recording:
                    delta = ws.drain_delta() if external else ws.end_delta()
                else:
                    delta = None
            if delta:
                digest = ws.state_digest() if cfg.audit else None
                with self.profile.measure("delta_sync"):
                    pool.sync(delta, digest)
            return outcome

        try:
            for axis, offset in WAVE_SPECS:
                if not pending:
                    break
                if timed:
                    if tracker.deadline_exceeded(
                        f"wave {result.waves + 1}"
                    ):
                        break
                    tracker.checkpoint(f"wave {result.waves + 1}")
                with self.profile.measure("partition"):
                    spec = strip_spec(
                        axis,
                        offset,
                        self.board.grid.via_nx,
                        self.board.grid.via_ny,
                        cfg.workers,
                        margin,
                    )
                    groups, leftover = assign_strips(pending, spec, margin)
                if len(groups) < 2:
                    # A single strip would just be serial routing with
                    # pool overhead; leave the rest to the residue phase.
                    continue
                if sink.enabled:
                    sink.emit(
                        WaveStart(
                            result.waves + 1,
                            len(groups),
                            sum(len(g.connections) for g in groups),
                        )
                    )
                with self.profile.measure("wave"):
                    group_results = run_wave(groups)
                for group_result in group_results:
                    self.profile.merge(group_result.profile)
                outcome = merge_and_sync(group_results)
                result.waves += 1
                result.demoted += len(outcome.demoted)
                if sink.enabled:
                    sink.emit(
                        WaveEnd(
                            result.waves,
                            outcome.merged,
                            len(outcome.demoted),
                            len(outcome.failed),
                        )
                    )
                if cfg.audit:
                    self._audit(f"wave {result.waves} merge")
                carry = {c.conn_id for c in leftover}
                carry |= outcome.demoted | outcome.failed
                pending = [
                    c
                    for c in pending
                    if c.conn_id in carry and not ws.is_routed(c.conn_id)
                ]

            # Speculative wave: the strip residue is dominated by long
            # connections whose bounding boxes never fit a strip —
            # exactly the Lee-heavy tail worth parallelising.  Shard
            # them round-robin with no disjointness guarantee and let
            # the merge's conflict detection arbitrate: records merge in
            # the master's sorted order, so contested space goes to the
            # connection the serial router would have preferred, and the
            # losers are demoted to the serial residue below.
            if (
                len(pending) > cfg.workers
                and not (
                    timed and tracker.deadline_exceeded("speculative wave")
                )
            ):
                if timed:
                    tracker.checkpoint("speculative wave")
                with self.profile.measure("partition"):
                    groups = shard_round_robin(pending, cfg.workers)
                if len(groups) >= 2:
                    if sink.enabled:
                        sink.emit(
                            WaveStart(
                                result.waves + 1, len(groups), len(pending)
                            )
                        )
                    with self.profile.measure("wave"):
                        group_results = run_wave(groups)
                    for group_result in group_results:
                        self.profile.merge(group_result.profile)
                    rank = {c.conn_id: i for i, c in enumerate(pending)}
                    outcome = merge_and_sync(
                        group_results, rank, last=True
                    )
                    result.waves += 1
                    result.demoted += len(outcome.demoted)
                    if sink.enabled:
                        sink.emit(
                            WaveEnd(
                                result.waves,
                                outcome.merged,
                                len(outcome.demoted),
                                len(outcome.failed),
                            )
                        )
                    if cfg.audit:
                        self._audit(f"wave {result.waves} merge")
        finally:
            if pool is not None:
                if self.keep_pool:
                    # The ECO session reclaims it via release_pool();
                    # its replicas sit at the post-merge sync state.
                    self._kept_pool = pool
                else:
                    pool.close()
                for counter, amount in pool.drain_counters().items():
                    if amount:
                        self.profile.bump(counter, amount)

        # Serial residue: the unchanged strategy stack (rip-up included)
        # over everything still unrouted, exactly as if those connections
        # had reached the hard tail of a serial run.  It shares this
        # call's budget tracker, so one deadline spans waves + residue.
        serial = GreedyRouter(
            self.board,
            self._serial_config(),
            workspace=ws,
            sink=sink,
            budget_tracker=tracker,
        )
        with self.profile.measure("residue"):
            serial_result = serial.route(ordered)
        self.profile.merge(serial.profile)
        result.passes += serial_result.passes
        result.rip_up_count += serial_result.rip_up_count
        result.putback_count += serial_result.putback_count
        result.lee_expansions += serial_result.lee_expansions
        result.routed_by.update(serial_result.routed_by)
        # The residue's rip-ups may have removed wave-routed connections
        # without restoring them; drop stale strategy entries.
        result.routed_by = {
            conn_id: strategy
            for conn_id, strategy in result.routed_by.items()
            if ws.is_routed(conn_id)
        }
        result.failed = [
            c.conn_id for c in ordered if not ws.is_routed(c.conn_id)
        ]
        result.stopped_reason = serial_result.stopped_reason
        result.failure_reasons = dict(serial_result.failure_reasons)

        if result.failed and cfg.parity_fallback:
            if tracker.deadline_hit:
                # Re-routing from scratch would destroy the deadline-
                # limited partial result with no clock left to rebuild
                # it; keep what we have.
                if sink.enabled:
                    sink.emit(
                        DegradedMode(
                            "parity_fallback",
                            "deadline",
                            len(result.failed),
                        )
                    )
            else:
                result = self._serial_fallback(
                    connections, result, tracker
                )

        if sink.enabled:
            # Aggregate over wave workers (merged from their profiles)
            # and the master-side serial phases.
            hits = self.profile.counters.get("gap_cache_hits", 0)
            misses = self.profile.counters.get("gap_cache_misses", 0)
            total = hits + misses
            sink.emit(
                CacheStats(
                    "parallel total",
                    hits,
                    misses,
                    hits / total if total else 0.0,
                    self.profile.counters.get("gap_cache_bypassed", 0),
                )
            )
        result.cpu_seconds = time.perf_counter() - started
        return result

    def _audit(self, context: str) -> None:
        """Verify master invariants after a merge; raise on breakage."""
        report = WorkspaceAuditor(self.workspace).audit()
        if self.sink.enabled:
            self.sink.emit(AuditRun(context, len(report.violations)))
        if not report.ok:
            raise WorkspaceAuditError(report, context)

    def _serial_config(self):
        """The config for serial phases (single worker, same knobs)."""
        return replace(self.config, workers=1)

    def _wave_config(self, wave_cfg, tracker: BudgetTracker):
        """The config wave workers route with right now.

        A worker's own budget clock starts when its group does, so its
        deadline must be this call's *remaining* time, not the original
        ``deadline_seconds``.  Untimed runs return ``wave_cfg`` unchanged
        (bit-identical configs, zero overhead).
        """
        remaining = tracker.remaining()
        if remaining is None:
            return wave_cfg
        return replace(
            wave_cfg,
            budget=replace(
                wave_cfg.budget, deadline_seconds=max(0.0, remaining)
            ),
        )

    def _serial_fallback(
        self,
        connections: Sequence[Connection],
        attempt: RoutingResult,
        tracker: BudgetTracker,
    ) -> RoutingResult:
        """Discard the parallel attempt and re-route serially from scratch.

        Reached only on boards the wave pipeline could not complete —
        typically boards the serial router cannot complete either, where
        reproducing the serial result exactly matters more than speed.
        Shares the call's budget tracker; if the clock runs out mid-way
        and the from-scratch partial is *worse* than the parallel
        attempt, the attempt is kept instead.
        """
        from repro.core.router import GreedyRouter

        fresh = RoutingWorkspace(self.board)
        serial = GreedyRouter(
            self.board,
            self._serial_config(),
            fresh,
            sink=self.sink,
            budget_tracker=tracker,
        )
        result = serial.route(connections)
        self.profile.merge(serial.profile)
        if self._kept_pool is not None:
            # The kept pool mirrors the *discarded* workspace; a reroute
            # against the fresh one could never sync it coherently.
            self._kept_pool.close()
            self._kept_pool = None
        if (
            result.stopped_reason == STOP_DEADLINE
            and result.routed_count < attempt.routed_count
        ):
            if self.sink.enabled:
                self.sink.emit(
                    DegradedMode(
                        "parity_fallback",
                        "deadline",
                        len(attempt.failed),
                    )
                )
            return attempt
        self.workspace = fresh
        result.waves = attempt.waves
        result.demoted = attempt.demoted
        result.worker_retries = attempt.worker_retries
        result.degraded_groups = attempt.degraded_groups
        result.fallback_serial = True
        return result
