"""Fault injection for the parallel fan-out (``GRR_FAULT``).

The retry/degrade machinery in :class:`repro.parallel.ParallelRouter`
exists for failures that are, by design, nearly impossible to produce on
demand: a pool worker segfaulting, raising, or blowing its group
deadline.  ``GRR_FAULT`` makes those failures reproducible so tests and
CI can drive the recovery paths deliberately:

``GRR_FAULT=<mode>[:<count>|:all]``

===============  =====================================================
mode             what the pool worker does when dealt a group
===============  =====================================================
``worker_crash``  dies via ``os._exit(13)`` without reporting back
                  (the parent sees EOF on the worker's pipe)
``worker_error``  raises :class:`InjectedFault` (reported back as a
                  normal worker error)
``worker_hang``   sleeps ``HANG_SECONDS`` before routing, so a parent
                  with a group deadline terminates it
===============  =====================================================

``count`` is how many *leading attempts per group* are sabotaged
(default 1: the first deal fails, the first retry succeeds).  ``all``
sabotages every attempt, which exhausts the retry budget and forces the
group onto the serial-residue degradation path.  Every sabotaged worker
is torn down and respawned by the pool from the master snapshot plus the
replayed delta log (:mod:`repro.parallel.pool`), so injected faults also
exercise worker recovery, not just group retry.

The in-process fallback (no subprocesses available) cannot crash or hang
the parent, so :func:`inject_inline` maps every mode to a raised
:class:`InjectedFault` instead.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

MODE_CRASH = "worker_crash"
MODE_ERROR = "worker_error"
MODE_HANG = "worker_hang"
MODES = (MODE_CRASH, MODE_ERROR, MODE_HANG)

#: How long ``worker_hang`` stalls before proceeding normally.  Long
#: enough that any realistic group deadline fires first; short enough
#: that a hang injected into an *undeadlined* run eventually unsticks.
HANG_SECONDS = 30.0

#: Exit status of a ``worker_crash`` child (distinguishable from the
#: interpreter's own failure codes in the parent's logs).
CRASH_EXIT_CODE = 13


class InjectedFault(RuntimeError):
    """Raised (or reported) by a deliberately sabotaged wave worker."""


@dataclass(frozen=True)
class FaultSpec:
    """Parsed ``GRR_FAULT`` value."""

    mode: str
    #: Attempts ``0..count-1`` of every group are sabotaged; None = all.
    count: Optional[int] = 1

    def applies(self, attempt: int) -> bool:
        """Should this zero-based launch attempt be sabotaged?"""
        return self.count is None or attempt < self.count


def fault_spec(raw: Optional[str] = None) -> Optional[FaultSpec]:
    """Parse ``raw`` (default: the ``GRR_FAULT`` env var) into a spec.

    Unknown or malformed values raise ``ValueError`` — a typoed fault
    injection that silently injects nothing would make a recovery test
    pass vacuously.
    """
    if raw is None:
        raw = os.environ.get("GRR_FAULT", "")
    raw = raw.strip()
    if not raw:
        return None
    mode, _, count_part = raw.partition(":")
    if mode not in MODES:
        raise ValueError(
            f"unknown GRR_FAULT mode {mode!r}; choose from {MODES}"
        )
    if not count_part:
        return FaultSpec(mode)
    if count_part == "all":
        return FaultSpec(mode, None)
    count = int(count_part)
    if count < 0:
        raise ValueError("GRR_FAULT count must be non-negative")
    return FaultSpec(mode, count)


def inject_in_child(attempt: int) -> None:
    """Run in a wave child before routing: act out the configured fault."""
    spec = fault_spec()
    if spec is None or not spec.applies(attempt):
        return
    if spec.mode == MODE_CRASH:
        os._exit(CRASH_EXIT_CODE)
    if spec.mode == MODE_HANG:
        time.sleep(HANG_SECONDS)
        return
    raise InjectedFault(
        f"injected {spec.mode} (attempt {attempt}, GRR_FAULT)"
    )


def inject_inline(spec: Optional[FaultSpec], attempt: int) -> None:
    """In-process-fallback flavor: every mode becomes a raised fault."""
    if spec is None or not spec.applies(attempt):
        return
    raise InjectedFault(
        f"injected {spec.mode} (attempt {attempt}, GRR_FAULT, inline)"
    )
