"""Worker-side of the persistent pool: route groups, stay synchronized.

Each pool worker is one long-lived process (spawned once per routing
call by :class:`repro.parallel.pool.WorkerPool`) holding a private copy
of the master workspace:

* **fork** (Linux, the fast path) — the parent stages the master
  workspace in a module global and forks; the child inherits a pristine
  copy-on-write snapshot for free.
* **spawn** (everywhere else) — the child receives one pickled workspace
  payload at startup and unpickles it; after that, startup cost is paid.

From then on the worker runs a small message loop over its duplex pipe:

``("sync", epoch, payload, digest)``
    Apply a :class:`~repro.channels.delta.WorkspaceDelta` broadcast by
    the master after a wave merge (and optionally check the resulting
    state digest).  Replaying the delta through the same route-level
    primitives the master used bumps channel generations identically, so
    the worker's warm :class:`~repro.channels.gap_cache.GapCache`
    entries on untouched channels survive the sync.
``("group", task, epoch, group, attempt, config)``
    Route one wave group against the current sync state, send the
    :class:`GroupResult` back, then *undo* the group's own routes so the
    local workspace returns to the sync state — the master's merge
    decides what actually lands, and the next delta carries it back.
``("stop",)``
    Exit cleanly.

A worker that hits an unexpected exception mid-group reports it and then
exits: its local workspace can no longer be trusted to match the sync
epoch, and the parent respawns a fresh worker from the master state
(fork) or from the startup payload plus the replayed delta log (spawn).
A worker that dies without reporting reads as EOF on the parent side,
which is how crashes (including ``GRR_FAULT`` injected ones) surface.

Workers route with the optimal strategy stack plus Lee but with rip-up
disabled: ripping up another group's (or an earlier wave's) routes inside
a private copy could not be merged back coherently.  Connections that
need rip-up fail fast here and fall through to the serial residue phase,
exactly the paper's hard ~10%.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.channels.workspace import RouteRecord, RoutingWorkspace
from repro.core.profiling import RouterProfile
from repro.core.result import Strategy
from repro.parallel.partition import WaveGroup

#: Parent-staged master workspace inherited by fork children.
_WORKSPACE: Optional[RoutingWorkspace] = None

#: Message tags of the pool protocol (parent -> worker).
MSG_SYNC = "sync"
MSG_GROUP = "group"
MSG_STOP = "stop"
#: Worker -> parent: ``(MSG_RESULT, task, GroupResult | None, error | None)``.
MSG_RESULT = "result"


@dataclass
class GroupResult:
    """Everything a worker sends back for one routed group."""

    strip_index: int
    #: Records for routed connections, in the group's routing order.
    records: List[RouteRecord] = field(default_factory=list)
    routed_by: Dict[int, Strategy] = field(default_factory=dict)
    failed: List[int] = field(default_factory=list)
    lee_expansions: int = 0
    profile: RouterProfile = field(default_factory=RouterProfile)


def worker_config(config):
    """The wave-phase router config: no rip-up, no re-sorting, one pass."""
    return replace(
        config,
        sort=False,
        enable_ripup=False,
        max_passes=1,
        workers=1,
    )


def set_parent_state(workspace: RoutingWorkspace) -> None:
    """Stage the master workspace for fork children to inherit."""
    global _WORKSPACE
    _WORKSPACE = workspace


def clear_parent_state() -> None:
    """Drop the staged global once the fork has happened."""
    global _WORKSPACE
    _WORKSPACE = None


def pool_payload(workspace: RoutingWorkspace) -> bytes:
    """Serialize the startup snapshot for spawn-based pool workers."""
    return pickle.dumps(workspace, pickle.HIGHEST_PROTOCOL)


def pool_child_main(
    conn, worker_id: int, payload: Optional[bytes] = None, epoch: int = 0
) -> None:
    """Entry point of one persistent pool worker process.

    Fork children find the workspace in the inherited module global
    (already at ``epoch``); spawn children unpickle ``payload`` (epoch 0)
    and are caught up by replayed sync messages.  See the module
    docstring for the message protocol.
    """
    from repro.channels.delta import WorkspaceDelta
    from repro.parallel.faults import inject_in_child

    try:
        if payload is not None:
            workspace = pickle.loads(payload)
        else:
            workspace = _WORKSPACE
            if workspace is None:
                raise RuntimeError("pool worker state not initialised")
        local_epoch = epoch
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent gone; nothing left to do
            tag = message[0]
            if tag == MSG_STOP:
                break
            if tag == MSG_SYNC:
                _, sync_epoch, delta_payload, digest = message
                workspace.apply_delta(
                    WorkspaceDelta.from_payload(delta_payload)
                )
                local_epoch = sync_epoch
                if digest is not None and workspace.state_digest() != digest:
                    raise RuntimeError(
                        f"pool worker {worker_id} diverged from master "
                        f"at epoch {sync_epoch}"
                    )
                continue
            # tag == MSG_GROUP
            _, task, task_epoch, group, attempt, config = message
            try:
                # Faults fire before routing so an injected error leaves
                # the local workspace clean (the parent still respawns).
                inject_in_child(attempt)
                if task_epoch != local_epoch:
                    raise RuntimeError(
                        f"pool worker {worker_id} at epoch {local_epoch} "
                        f"received a group for epoch {task_epoch}"
                    )
                result = route_group_in(workspace, config, group)
                # Roll the local copy back to the sync state: the merge
                # on the master arbitrates what lands, and the next
                # delta_sync carries the surviving routes back here.
                for record in result.records:
                    workspace.remove_connection(record.conn_id)
                conn.send((MSG_RESULT, task, result, None))
            except BaseException as exc:  # noqa: BLE001 - must reach parent
                import traceback

                try:
                    conn.send(
                        (
                            MSG_RESULT,
                            task,
                            None,
                            f"{exc}\n{traceback.format_exc()}",
                        )
                    )
                except (BrokenPipeError, OSError):
                    pass
                # The local workspace may hold a partial route; it can no
                # longer be trusted to match the sync epoch.  Die and let
                # the parent respawn a clean worker.
                return
    except BaseException:  # noqa: BLE001 - sync failures are fatal
        # Protocol-level failure (bad delta, digest mismatch, unpickling
        # error): die loudly; the parent sees EOF and respawns.
        raise
    finally:
        conn.close()


def route_group_in(
    workspace: RoutingWorkspace, config, group: WaveGroup
) -> GroupResult:
    """Route a group against an explicit workspace (shared by both paths).

    Also used directly by the in-process fallback when no worker pool can
    be created, with a private :meth:`RoutingWorkspace.snapshot` standing
    in for the pool worker's copy.
    """
    from repro.core.router import GreedyRouter

    router = GreedyRouter(workspace.board, config, workspace=workspace)
    routing = router.route(group.connections)
    result = GroupResult(strip_index=group.strip_index)
    for conn in group.connections:
        record = workspace.records.get(conn.conn_id)
        if record is not None:
            result.records.append(record)
            result.routed_by[conn.conn_id] = routing.routed_by.get(
                conn.conn_id, Strategy.LEE
            )
        else:
            result.failed.append(conn.conn_id)
    result.lee_expansions = routing.lee_expansions
    result.profile = router.profile
    return result
