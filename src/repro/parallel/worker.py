"""Worker-side routing of one wave group against a workspace snapshot.

The fan-out protocol (one short-lived process per group, run by
:meth:`repro.parallel.router.ParallelRouter._run_wave`):

* **fork** (Linux, the fast path) — the parent stages the master
  workspace and config in module globals and forks one child per group;
  each child inherits a pristine copy-on-write snapshot for free, routes
  its group, and sends the :class:`GroupResult` back over its own pipe
  (one per child, so a crashed child is visible as an EOF rather than a
  queue that never delivers).
  Because every group gets its own fresh fork, results are independent
  of scheduling and of the worker count.
* **spawn** (everywhere else) — each child receives the pickled
  ``(workspace, config)`` snapshot as an argument instead.

A ``multiprocessing.Pool`` is deliberately not used: with
``maxtasksperchild=1`` (needed for the pristine-snapshot guarantee) its
worker-management thread polls on a ~0.1 s tick, which dwarfs the
10–100 ms a typical wave group takes to route.

Workers route with the optimal strategy stack plus Lee but with rip-up
disabled: ripping up another group's (or an earlier wave's) routes inside
a private snapshot could not be merged back coherently.  Connections that
need rip-up fail fast here and fall through to the serial residue phase,
exactly the paper's hard ~10%.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.channels.workspace import RouteRecord, RoutingWorkspace
from repro.core.profiling import RouterProfile
from repro.core.result import Strategy
from repro.parallel.partition import WaveGroup

#: Parent-set state inherited by fork children (see module docstring).
_WORKSPACE: Optional[RoutingWorkspace] = None
_CONFIG = None


@dataclass
class GroupResult:
    """Everything a worker sends back for one routed group."""

    strip_index: int
    #: Records for routed connections, in the group's routing order.
    records: List[RouteRecord] = field(default_factory=list)
    routed_by: Dict[int, Strategy] = field(default_factory=dict)
    failed: List[int] = field(default_factory=list)
    lee_expansions: int = 0
    profile: RouterProfile = field(default_factory=RouterProfile)


def worker_config(config):
    """The wave-phase router config: no rip-up, no re-sorting, one pass."""
    return replace(
        config,
        sort=False,
        enable_ripup=False,
        max_passes=1,
        workers=1,
    )


def set_parent_state(workspace: RoutingWorkspace, config) -> None:
    """Stage state in module globals for fork children to inherit."""
    global _WORKSPACE, _CONFIG
    _WORKSPACE = workspace
    _CONFIG = config


def clear_parent_state() -> None:
    """Drop the staged globals once the wave's pool has been forked."""
    global _WORKSPACE, _CONFIG
    _WORKSPACE = None
    _CONFIG = None


def child_main(
    conn,
    index: int,
    group: WaveGroup,
    attempt: int = 0,
    payload: Optional[bytes] = None,
) -> None:
    """Entry point of one wave child process.

    Fork children find the snapshot in the inherited module globals;
    spawn children get it as ``payload``.  The result (or the formatted
    error) travels back over the pipe connection ``conn`` tagged with the
    group's index; a child that dies without sending leaves the parent an
    EOF instead of a message, which is how crashes are detected.
    ``attempt`` is the zero-based launch attempt, consulted by the
    ``GRR_FAULT`` fault-injection hook (:mod:`repro.parallel.faults`).
    """
    from repro.parallel.faults import inject_in_child

    try:
        inject_in_child(attempt)
        if payload is not None:
            workspace, config = pickle.loads(payload)
        else:
            if _WORKSPACE is None:
                raise RuntimeError("worker state not initialised")
            workspace, config = _WORKSPACE, _CONFIG
        result = route_group_in(workspace, config, group)
        conn.send((index, result, None))
    except BaseException as exc:  # noqa: BLE001 - must reach the parent
        import traceback

        try:
            conn.send((index, None, f"{exc}\n{traceback.format_exc()}"))
        except (BrokenPipeError, OSError):
            pass  # parent already gone or gave up on us
    finally:
        conn.close()


def route_group_in(
    workspace: RoutingWorkspace, config, group: WaveGroup
) -> GroupResult:
    """Route a group against an explicit workspace (shared by both paths).

    Also used directly by the in-process fallback when no worker pool can
    be created, with a private :meth:`RoutingWorkspace.snapshot` standing
    in for the forked copy.
    """
    from repro.core.router import GreedyRouter

    router = GreedyRouter(workspace.board, config, workspace=workspace)
    routing = router.route(group.connections)
    result = GroupResult(strip_index=group.strip_index)
    for conn in group.connections:
        record = workspace.records.get(conn.conn_id)
        if record is not None:
            result.records.append(record)
            result.routed_by[conn.conn_id] = routing.routed_by.get(
                conn.conn_id, Strategy.LEE
            )
        else:
            result.failed.append(conn.conn_id)
    result.lee_expansions = routing.lee_expansions
    result.profile = router.profile
    return result


def spawn_payload(workspace: RoutingWorkspace, config) -> bytes:
    """Serialize the wave snapshot for a spawn pool's initializer."""
    return pickle.dumps((workspace, config), pickle.HIGHEST_PROTOCOL)
