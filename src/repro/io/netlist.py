"""Line-based text format for boards and connection lists.

Board file::

    board <name> <via_nx> <via_ny> <signal_layers> <power_layers>
    package <name> <dx,dy> <dx,dy> ...
    part <name> <package> <vx> <vy> <role><role>...   # one letter per pin
    net <name> <kind> <family> <pin_id> <pin_id> ...

Connection file (stringer output, one connection per line)::

    conn <id> <net_id> <pin_a> <pin_b> <ax> <ay> <bx> <by> <family>

Roles: O=output, I=input, T=terminator, P=power, U=unused.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, TextIO

from repro.board.board import Board
from repro.board.nets import Connection, NetKind
from repro.board.parts import Package, PinRole
from repro.board.technology import LogicFamily
from repro.grid.coords import ViaPoint

_ROLE_TO_CHAR = {
    PinRole.OUTPUT: "O",
    PinRole.INPUT: "I",
    PinRole.TERMINATOR: "T",
    PinRole.POWER: "P",
    PinRole.UNUSED: "U",
}
_CHAR_TO_ROLE = {v: k for k, v in _ROLE_TO_CHAR.items()}


class NetlistFormatError(ValueError):
    """The file is not a valid board/connection description."""


def write_board(board: Board, stream: TextIO) -> None:
    """Serialise a board (placement, roles and nets) to a stream."""
    grid = board.grid
    stream.write(
        f"board {board.name} {grid.via_nx} {grid.via_ny} "
        f"{board.stack.n_signal} {len(board.stack.power_layers)}\n"
    )
    packages: Dict[str, Package] = {}
    for part in board.parts:
        packages.setdefault(part.package.name, part.package)
    for name, package in packages.items():
        offsets = " ".join(f"{dx},{dy}" for dx, dy in package.pin_offsets)
        stream.write(f"package {name} {offsets}\n")
    for part in board.parts:
        roles = "".join(_ROLE_TO_CHAR[p.role] for p in part.pins)
        stream.write(
            f"part {part.name} {part.package.name} "
            f"{part.origin.vx} {part.origin.vy} {roles}\n"
        )
    for net in board.nets:
        pins = " ".join(str(p) for p in net.pin_ids)
        stream.write(
            f"net {net.name} {net.kind.value} {net.family.value} {pins}\n"
        )


def read_board(stream: TextIO) -> Board:
    """Parse a board file back into a :class:`Board`."""
    board = None
    packages: Dict[str, Package] = {}
    for line_no, raw in enumerate(stream, 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        kind = fields[0]
        try:
            if kind == "board":
                name, nx, ny, signal, power = fields[1:6]
                board = Board.create(
                    via_nx=int(nx),
                    via_ny=int(ny),
                    n_signal_layers=int(signal),
                    n_power_layers=int(power),
                    name=name,
                )
            elif kind == "package":
                name = fields[1]
                offsets = tuple(
                    tuple(int(v) for v in item.split(","))
                    for item in fields[2:]
                )
                packages[name] = Package(name, offsets)
            elif kind == "part":
                if board is None:
                    raise NetlistFormatError("part before board line")
                name, package_name, vx, vy, roles = fields[1:6]
                package = packages[package_name]
                board.add_part(
                    package,
                    ViaPoint(int(vx), int(vy)),
                    name=name,
                    roles=[_CHAR_TO_ROLE[c] for c in roles],
                )
            elif kind == "net":
                if board is None:
                    raise NetlistFormatError("net before board line")
                name, net_kind, family = fields[1:4]
                pin_ids = [int(v) for v in fields[4:]]
                board.add_net(
                    pin_ids,
                    name=name,
                    kind=NetKind(net_kind),
                    family=LogicFamily(family),
                )
            else:
                raise NetlistFormatError(f"unknown record {kind!r}")
        except (IndexError, KeyError, ValueError) as exc:
            raise NetlistFormatError(f"line {line_no}: {exc}") from exc
    if board is None:
        raise NetlistFormatError("missing board line")
    return board


def write_connections(
    connections: Sequence[Connection], stream: TextIO
) -> None:
    """Serialise a connection list (stringer output)."""
    for c in connections:
        stream.write(
            f"conn {c.conn_id} {c.net_id} {c.pin_a} {c.pin_b} "
            f"{c.a.vx} {c.a.vy} {c.b.vx} {c.b.vy} {c.family.value}\n"
        )


def read_connections(stream: TextIO) -> List[Connection]:
    """Parse a connection file."""
    connections: List[Connection] = []
    for line_no, raw in enumerate(stream, 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        if fields[0] != "conn" or len(fields) != 10:
            raise NetlistFormatError(f"line {line_no}: bad connection record")
        try:
            connections.append(
                Connection(
                    conn_id=int(fields[1]),
                    net_id=int(fields[2]),
                    pin_a=int(fields[3]),
                    pin_b=int(fields[4]),
                    a=ViaPoint(int(fields[5]), int(fields[6])),
                    b=ViaPoint(int(fields[7]), int(fields[8])),
                    family=LogicFamily(fields[9]),
                )
            )
        except ValueError as exc:
            raise NetlistFormatError(f"line {line_no}: {exc}") from exc
    return connections
