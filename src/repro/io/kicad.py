"""KiCad board interchange: import ``.kicad_pcb``, route, write back.

The import half turns a real KiCad board into the router's native
problem description:

* **copper layers** become the signal stack (preserving front-to-back
  order; copper layers KiCad marks as ``power`` become plane layers);
* **pads** are mapped onto the via grid.  Pads that land on a via site
  become ordinary through-hole pins of their footprint's part; off-grid
  and SMD pads are snapped through the existing
  :mod:`repro.extensions.dispersion` machinery — each gets the nearest
  usable via site plus a top-layer trace from its true position, and the
  pad→via mapping is recorded so exports land back on true coordinates;
* **nets** are extracted into :class:`~repro.board.board.Board` nets and
  strung into pin-to-pin :class:`~repro.board.nets.Connection` lists.

The export half writes routed traces and vias back into the *original*
document as ``segment``/``via`` s-expressions.  Nothing is
re-serialised: new expressions are spliced in front of the closing
paren (and expressions from an earlier export are removed first), so
every byte the router did not produce survives untouched.  Each
exported expression carries a ``uuid`` of the form ``grr-c<conn>-…`` /
``grr-p<pin>-…``; re-importing an exported board restores the routed
workspace exactly from those annotations — the round-trip CI gate
asserts ``canonical_state`` equality.

Caveats (see docs/API.md → "Board interchange"): units are millimetres
on a configurable via pitch (default 2.54 mm / 100 mil); copper not
written by grr is preserved but not imported as routing obstacles;
graphics, zones and silkscreen pass through untouched.
"""

from __future__ import annotations

import math
import os
import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.board.board import Board, PlacementError
from repro.board.nets import NetKind
from repro.board.parts import Package, PinRole
from repro.board.technology import LogicFamily, TechRules
from repro.channels.workspace import RouteRecord, RoutingWorkspace
from repro.extensions.dispersion import DispersionError, PadSpec, disperse_pads
from repro.grid.coords import GridPoint, ViaPoint
from repro.io.sexp import (
    Atom,
    SExpError,
    SList,
    format_expr,
    format_mm,
    parse,
    splice,
)
from repro.stringer import Stringer

MM_PER_MIL = 0.0254

#: Default routing margin kept around the outermost pads, in via pitches,
#: when the board has no Edge.Cuts outline to take the extent from.
DEFAULT_MARGIN_VIAS = 4

#: How far (in mm) a pad may sit from a routing-grid point and still be
#: considered *on* it.  Real through-hole boards are exact; the slack
#: absorbs unit-conversion noise (KiCad stores at most 6 decimals).
GRID_TOLERANCE_MM = 0.01

#: Refuse grids past this many via sites — a wrong pitch on a large
#: board would otherwise allocate gigabytes of channels.
MAX_VIA_SITES = 4_000_000

_UUID_PREFIX_CONN = "grr-c"
_UUID_PREFIX_PIN = "grr-p"

#: Net names treated as power/ground (kicad nets carry no kind of their
#: own).  Exact lower-case matches plus the usual voltage-rail spellings
#: (``+5V``, ``3V3``, ``-12V``, ``pwr2``); power nets become plane nets,
#: not routed signal traces.
_POWER_NAMES = frozenset(
    {
        "gnd", "agnd", "dgnd", "pgnd", "gnda", "gndd", "earth",
        "vcc", "vdd", "vss", "vee", "vtt", "vbat", "vbus", "vref",
    }
)
_POWER_PATTERN = re.compile(r"^(?:[+-]?\d+(?:\.\d+)?v\d*|pwr\d*)$")


def is_power_net_name(name: str) -> bool:
    """Whether a kicad net name looks like a power/ground rail."""
    lowered = name.strip().lower()
    if not lowered:
        return False
    if lowered in _POWER_NAMES:
        return True
    return bool(_POWER_PATTERN.match(lowered))


class KicadFormatError(ValueError):
    """The file is not a board this importer can handle."""


# ----------------------------------------------------------------------
# parsed geometry
# ----------------------------------------------------------------------


@dataclass
class PadRecord:
    """One footprint pad and everything the import decided about it."""

    pad_id: int  #: import order (document order)
    reference: str  #: footprint reference (``U1``)
    name: str  #: pad name/number within the footprint
    x_mm: float  #: absolute true position
    y_mm: float
    through_hole: bool
    kicad_net: int  #: 0 means unconnected
    role: PinRole = PinRole.INPUT
    pin_id: int = -1  #: board pin backing this pad (-1: not imported)
    via: Optional[ViaPoint] = None  #: grid site the router uses
    dispersed: bool = False  #: reached its via through a dispersion trace
    grid_point: Optional[GridPoint] = None  #: snapped routing-grid point
    trace_segments: List[tuple] = field(default_factory=list)


@dataclass
class KicadImport:
    """A ``.kicad_pcb`` file translated into a routable workspace.

    Holds both sides of the mapping: the native :attr:`board` /
    :attr:`connections` / :attr:`workspace` the router consumes, and the
    original :attr:`text` / :attr:`doc` plus the coordinate frame needed
    to write routes back with :func:`export_document`.
    """

    path: str
    text: str
    doc: SList
    board: Board
    workspace: RoutingWorkspace
    connections: List
    pads: List[PadRecord]
    origin_mm: Tuple[float, float]
    pitch_mm: float
    layer_names: List[str]  #: our signal layer index -> KiCad copper name
    kicad_net_names: Dict[int, str]
    kicad_net_for_net: Dict[int, int]  #: board net_id -> KiCad net id
    restored: List[int]  #: conn ids re-imported from a previous export
    foreign_copper: int  #: segments/vias present but not written by grr

    @property
    def step_mm(self) -> float:
        """Millimetres per routing-grid step."""
        return self.pitch_mm / self.board.grid.grid_per_via

    def grid_to_mm(self, point: GridPoint) -> Tuple[float, float]:
        """Routing-grid point -> absolute board coordinates."""
        ox, oy = self.origin_mm
        return ox + point.gx * self.step_mm, oy + point.gy * self.step_mm

    def mm_to_grid(self, x: float, y: float) -> GridPoint:
        """Absolute board coordinates -> nearest routing-grid point."""
        ox, oy = self.origin_mm
        return GridPoint(
            _round_half_up((x - ox) / self.step_mm),
            _round_half_up((y - oy) / self.step_mm),
        )

    def summary(self) -> Dict[str, object]:
        """The ``grr kicad inspect`` payload."""
        grid = self.board.grid
        return {
            "name": self.board.name,
            "copper_layers": list(self.layer_names),
            "power_layers": len(self.board.stack.power_layers),
            "pitch_mm": self.pitch_mm,
            "origin_mm": list(self.origin_mm),
            "via_grid": [grid.via_nx, grid.via_ny],
            "footprints": len({p.reference for p in self.pads}),
            "pads": len(self.pads),
            "on_grid_pads": sum(
                1 for p in self.pads if p.pin_id >= 0 and not p.dispersed
            ),
            "dispersed_pads": sum(1 for p in self.pads if p.dispersed),
            "nets": len(self.board.nets),
            "connections": len(self.connections),
            "restored_routes": len(self.restored),
            "foreign_copper": self.foreign_copper,
        }


def _round_half_up(value: float) -> int:
    """Deterministic nearest-integer rounding (no banker's ties)."""
    return math.floor(value + 0.5)


# ----------------------------------------------------------------------
# document scanning
# ----------------------------------------------------------------------


def _copper_layers(root: SList) -> Tuple[List[str], List[str]]:
    """(signal copper names, power copper names), front-to-back."""
    layers = root.find(
        "layers"
    )
    if layers is None:
        raise KicadFormatError("document has no (layers ...) section")
    signal: List[Tuple[int, str]] = []
    power: List[Tuple[int, str]] = []
    for entry in layers.items:
        if not isinstance(entry, SList):
            continue
        atoms = entry.atoms()
        if len(atoms) < 3:
            continue
        try:
            number = int(atoms[0])
        except ValueError:
            continue
        name, kind = atoms[1], atoms[2]
        if not name.endswith(".Cu"):
            continue
        if kind == "power":
            power.append((number, name))
        elif kind in ("signal", "mixed"):
            signal.append((number, name))
    signal.sort()
    power.sort()
    return [name for _, name in signal], [name for _, name in power]


def _footprint_reference(node: SList, fallback: str) -> str:
    for prop in node.find_all("property"):
        if prop.atom(1) == "Reference":
            value = prop.atom(2)
            if value:
                return value
    for text in node.find_all("fp_text"):
        if text.atom(1) == "reference":
            value = text.atom(2)
            if value:
                return value
    return fallback


def _at_values(node: SList) -> Tuple[float, float, float]:
    at = node.find("at")
    if at is None:
        raise KicadFormatError(f"{node.tag!r} has no (at ...)")
    values = at.atoms()[1:]
    x = float(values[0])
    y = float(values[1])
    rot = float(values[2]) if len(values) > 2 else 0.0
    return x, y, rot


def _scan_pads(root: SList) -> List[PadRecord]:
    """Every connective pad, at its absolute position, in document order."""
    pads: List[PadRecord] = []
    index = 0
    for tag in ("footprint", "module"):
        for fp_no, fp in enumerate(root.find_all(tag)):
            reference = _footprint_reference(fp, f"FP{fp_no}")
            fx, fy, rot = _at_values(fp)
            angle = math.radians(rot)
            cos_a, sin_a = math.cos(angle), math.sin(angle)
            for pad in fp.find_all("pad"):
                atoms = pad.atoms()
                if len(atoms) < 3:
                    raise KicadFormatError(
                        f"footprint {reference}: malformed pad"
                    )
                pad_name, pad_type = atoms[1], atoms[2]
                if pad_type == "np_thru_hole":
                    continue  # mechanical hole, nothing to connect
                px, py, _ = _at_values(pad)
                x = fx + px * cos_a + py * sin_a
                y = fy - px * sin_a + py * cos_a
                net_node = pad.find("net")
                kicad_net = 0
                if net_node is not None:
                    kicad_net = int(net_node.atom(1) or 0)
                pads.append(
                    PadRecord(
                        pad_id=index,
                        reference=reference,
                        name=pad_name,
                        x_mm=round(x, 6),
                        y_mm=round(y, 6),
                        through_hole=(pad_type == "thru_hole"),
                        kicad_net=kicad_net,
                    )
                )
                index += 1
    return pads


def _edge_bounds(root: SList) -> Optional[Tuple[float, float, float, float]]:
    """Bounding box of the Edge.Cuts outline, if the board has one."""
    xs: List[float] = []
    ys: List[float] = []
    for item in root.items:
        if not isinstance(item, SList) or not item.tag.startswith("gr_"):
            continue
        layer = item.value_of("layer")
        if layer != "Edge.Cuts":
            continue
        for child in item.items:
            if not isinstance(child, SList):
                continue
            if child.tag in ("start", "end", "center", "mid"):
                values = child.atoms()[1:]
                if len(values) >= 2:
                    xs.append(float(values[0]))
                    ys.append(float(values[1]))
            elif child.tag == "pts":
                for xy in child.find_all("xy"):
                    values = xy.atoms()[1:]
                    if len(values) >= 2:
                        xs.append(float(values[0]))
                        ys.append(float(values[1]))
    if not xs or not ys:
        return None
    return min(xs), min(ys), max(xs), max(ys)


def _grid_phase(values: Sequence[float], pitch: float) -> float:
    """The dominant residue of the coordinates modulo the via pitch."""
    if not values:
        return 0.0
    residues = Counter(round(v % pitch, 4) % pitch for v in values)
    best = max(residues.items(), key=lambda item: (item[1], -item[0]))
    return best[0]


# ----------------------------------------------------------------------
# import
# ----------------------------------------------------------------------


def import_board(
    text: str,
    *,
    path: str = "<kicad>",
    pitch_mm: Optional[float] = None,
    margin_vias: int = DEFAULT_MARGIN_VIAS,
    rules: Optional[TechRules] = None,
) -> KicadImport:
    """Translate ``.kicad_pcb`` text into a routable :class:`KicadImport`.

    ``pitch_mm`` sets the via grid (default: the :class:`TechRules` via
    pitch, 2.54 mm).  Boards whose fine-pitch pads would collide after
    snapping need a smaller pitch.  Raises :class:`KicadFormatError` on
    anything structurally unusable.
    """
    try:
        root = parse(text)
    except SExpError as exc:
        raise KicadFormatError(f"not an s-expression document: {exc}") from exc
    if root.tag != "kicad_pcb":
        raise KicadFormatError(
            f"top-level expression is {root.tag or '(empty)'!r}, "
            "expected kicad_pcb"
        )
    rules = rules or TechRules()
    if pitch_mm is None:
        pitch_mm = rules.via_pitch * MM_PER_MIL
    elif pitch_mm <= 0:
        raise KicadFormatError("pitch_mm must be positive")
    else:
        rules = TechRules(
            trace_width=rules.trace_width,
            trace_spacing=rules.trace_spacing,
            via_pad_diameter=min(
                rules.via_pad_diameter, pitch_mm / MM_PER_MIL * 0.6
            ),
            via_drill_diameter=min(
                rules.via_drill_diameter, pitch_mm / MM_PER_MIL * 0.37
            ),
            via_pitch=pitch_mm / MM_PER_MIL,
        )

    signal_names, power_names = _copper_layers(root)
    if len(signal_names) < 2:
        raise KicadFormatError(
            f"need at least two routable copper layers, found "
            f"{len(signal_names)}"
        )

    net_names: Dict[int, str] = {}
    for net in root.find_all("net"):
        values = net.atoms()[1:]
        if not values:
            continue
        net_id = int(values[0])
        net_names[net_id] = values[1] if len(values) > 1 else ""

    pads = _scan_pads(root)
    if not pads:
        raise KicadFormatError("board has no connective pads")

    # Coordinate frame: phase-align to the pads, extent from Edge.Cuts
    # when drawn (the true routable area), else pads plus a margin.
    phase_x = _grid_phase([p.x_mm for p in pads], pitch_mm)
    phase_y = _grid_phase([p.y_mm for p in pads], pitch_mm)
    edge = _edge_bounds(root)
    pad_min_x = min(p.x_mm for p in pads)
    pad_min_y = min(p.y_mm for p in pads)
    pad_max_x = max(p.x_mm for p in pads)
    pad_max_y = max(p.y_mm for p in pads)
    if edge is not None:
        lo_x = min(edge[0], pad_min_x)
        lo_y = min(edge[1], pad_min_y)
        hi_x = max(edge[2], pad_max_x)
        hi_y = max(edge[3], pad_max_y)
        margin = 0
    else:
        lo_x, lo_y, hi_x, hi_y = pad_min_x, pad_min_y, pad_max_x, pad_max_y
        margin = margin_vias
    ox = phase_x + pitch_mm * math.floor((lo_x - phase_x) / pitch_mm + 1e-9)
    oy = phase_y + pitch_mm * math.floor((lo_y - phase_y) / pitch_mm + 1e-9)
    ox -= margin * pitch_mm
    oy -= margin * pitch_mm
    via_nx = math.ceil((hi_x - ox) / pitch_mm - 1e-9) + 1 + margin
    via_ny = math.ceil((hi_y - oy) / pitch_mm - 1e-9) + 1 + margin
    via_nx = max(via_nx, 2)
    via_ny = max(via_ny, 2)
    if via_nx * via_ny > MAX_VIA_SITES:
        raise KicadFormatError(
            f"{via_nx}x{via_ny} via sites at pitch {pitch_mm} mm exceeds "
            f"the {MAX_VIA_SITES} site limit; pass an explicit pitch"
        )

    name = os.path.splitext(os.path.basename(path))[0]
    board = Board.create(
        via_nx=via_nx,
        via_ny=via_ny,
        n_signal_layers=len(signal_names),
        n_power_layers=len(power_names),
        rules=rules,
        name=name if name and name != "<kicad>" else "kicad",
    )
    grid = board.grid
    step = pitch_mm / grid.grid_per_via

    # Roles before placement: the first pad of each signal net drives
    # the chain; power-rail pads (by net name — kicad nets have no kind
    # of their own) become plane pins, not routed endpoints.
    power_nets = {
        net_id
        for net_id, net_name in net_names.items()
        if is_power_net_name(net_name)
    }
    first_in_net: Dict[int, int] = {}
    for pad in pads:
        if pad.kicad_net <= 0:
            continue
        if pad.kicad_net in power_nets:
            pad.role = PinRole.POWER
        elif pad.kicad_net not in first_in_net:
            first_in_net[pad.kicad_net] = pad.pad_id
            pad.role = PinRole.OUTPUT
        else:
            pad.role = PinRole.INPUT

    # Snap each pad: exact via sites become part pins, the rest disperse.
    tolerance = GRID_TOLERANCE_MM / step
    for pad in pads:
        fx = (pad.x_mm - ox) / step
        fy = (pad.y_mm - oy) / step
        gx, gy = _round_half_up(fx), _round_half_up(fy)
        gx = min(max(gx, 0), grid.nx - 1)
        gy = min(max(gy, 0), grid.ny - 1)
        pad.grid_point = GridPoint(gx, gy)
        exact = abs(fx - gx) <= tolerance and abs(fy - gy) <= tolerance
        g = grid.grid_per_via
        if exact and gx % g == 0 and gy % g == 0:
            pad.via = ViaPoint(gx // g, gy // g)
            pad.dispersed = False
        else:
            pad.via = None
            pad.dispersed = True

    by_reference: Dict[str, List[PadRecord]] = {}
    for pad in pads:
        by_reference.setdefault(pad.reference, []).append(pad)

    for reference, group in by_reference.items():
        on_grid = [p for p in group if not p.dispersed]
        if not on_grid:
            continue
        base_vx = min(p.via.vx for p in on_grid)
        base_vy = min(p.via.vy for p in on_grid)
        offsets = tuple(
            (p.via.vx - base_vx, p.via.vy - base_vy) for p in on_grid
        )
        if len(set(offsets)) != len(offsets):
            raise KicadFormatError(
                f"footprint {reference}: two pads snap to the same via "
                f"site at pitch {pitch_mm} mm; use a smaller pitch"
            )
        package = Package(f"kicad_{reference}", offsets)
        try:
            part = board.add_part(
                package,
                ViaPoint(base_vx, base_vy),
                name=reference,
                roles=[p.role for p in on_grid],
            )
        except PlacementError as exc:
            raise KicadFormatError(
                f"footprint {reference}: {exc} "
                f"(pads from two footprints share a via site at pitch "
                f"{pitch_mm} mm)"
            ) from exc
        for pad, pin in zip(on_grid, part.pins):
            pad.pin_id = pin.pin_id

    workspace = RoutingWorkspace(board)

    dispersed = [p for p in pads if p.dispersed]
    taken: Dict[GridPoint, int] = {}
    for pad in dispersed:
        other = taken.get(pad.grid_point)
        if other is not None:
            raise KicadFormatError(
                f"pads {pads[other].reference}.{pads[other].name} and "
                f"{pad.reference}.{pad.name} snap to the same routing-grid "
                f"point at pitch {pitch_mm} mm; use a smaller pitch"
            )
        taken[pad.grid_point] = pad.pad_id
    for index, pad in enumerate(dispersed):
        try:
            placed = disperse_pads(
                board,
                workspace,
                [PadSpec(position=pad.grid_point, role=pad.role)],
                part_name=f"{pad.reference}_{pad.name}",
                avoid=[p.grid_point for p in dispersed[index + 1 :]],
            )[0]
        except DispersionError as exc:
            raise KicadFormatError(
                f"pad {pad.reference}.{pad.name}: {exc}"
            ) from exc
        pad.pin_id = placed.pin.pin_id
        pad.via = placed.via
        pad.trace_segments = list(placed.segments)

    # Net extraction: KiCad nets (ascending id) over the pads' pins.
    kicad_net_for_net: Dict[int, int] = {}
    pins_by_net: Dict[int, List[int]] = {}
    for pad in pads:
        if pad.kicad_net > 0 and pad.pin_id >= 0:
            pins_by_net.setdefault(pad.kicad_net, []).append(pad.pin_id)
    for kicad_net in sorted(pins_by_net):
        members = pins_by_net[kicad_net]
        if len(members) < 2:
            continue
        net = board.add_net(
            members,
            name=net_names.get(kicad_net, f"net{kicad_net}"),
            kind=(
                NetKind.POWER
                if kicad_net in power_nets
                else NetKind.SIGNAL
            ),
            family=LogicFamily.TTL,
        )
        kicad_net_for_net[net.net_id] = kicad_net

    connections = Stringer(board).string_all()

    imported = KicadImport(
        path=path,
        text=text,
        doc=root,
        board=board,
        workspace=workspace,
        connections=connections,
        pads=pads,
        origin_mm=(ox, oy),
        pitch_mm=pitch_mm,
        layer_names=list(signal_names),
        kicad_net_names=net_names,
        kicad_net_for_net=kicad_net_for_net,
        restored=[],
        foreign_copper=0,
    )
    _restore_exported_routes(imported)
    return imported


def load_file(
    path: str,
    *,
    pitch_mm: Optional[float] = None,
    margin_vias: int = DEFAULT_MARGIN_VIAS,
    rules: Optional[TechRules] = None,
) -> KicadImport:
    """Read and import a ``.kicad_pcb`` file."""
    with open(path, encoding="utf-8") as stream:
        text = stream.read()
    return import_board(
        text,
        path=path,
        pitch_mm=pitch_mm,
        margin_vias=margin_vias,
        rules=rules,
    )


# ----------------------------------------------------------------------
# restoring a previous export
# ----------------------------------------------------------------------


def _grr_uuid(node: SList) -> Optional[str]:
    for tag in ("uuid", "tstamp"):
        value = node.value_of(tag)
        if value is not None:
            return value
    return None


def _restore_exported_routes(imp: KicadImport) -> None:
    """Rebuild route records from ``grr-c…`` segments/vias in the file."""
    records: Dict[int, RouteRecord] = {}
    layer_index = {name: i for i, name in enumerate(imp.layer_names)}
    for node in imp.doc.find_all("segment"):
        marker = _grr_uuid(node)
        if marker is None or not marker.startswith("grr-"):
            imp.foreign_copper += 1
            continue
        if marker.startswith(_UUID_PREFIX_PIN):
            continue  # dispersion trace: re-laid by the import itself
        conn_id = _parse_conn_marker(marker)
        start = node.find("start")
        end = node.find("end")
        layer_name = node.value_of("layer")
        if start is None or end is None or layer_name is None:
            raise KicadFormatError(f"segment {marker}: missing geometry")
        if layer_name not in layer_index:
            raise KicadFormatError(
                f"segment {marker}: unknown copper layer {layer_name!r}"
            )
        index = layer_index[layer_name]
        a = imp.mm_to_grid(float(start.atom(1)), float(start.atom(2)))
        b = imp.mm_to_grid(float(end.atom(1)), float(end.atom(2)))
        layer = imp.workspace.layers[index]
        ca, ka = layer.point_cc(a)
        cb, kb = layer.point_cc(b)
        if ca != cb:
            raise KicadFormatError(
                f"segment {marker}: not aligned with layer "
                f"{layer_name!r} channels"
            )
        record = records.setdefault(conn_id, RouteRecord(conn_id=conn_id))
        record.segments.append((index, ca, min(ka, kb), max(ka, kb)))
    for node in imp.doc.find_all("via"):
        marker = _grr_uuid(node)
        if marker is None or not marker.startswith("grr-"):
            imp.foreign_copper += 1
            continue
        if marker.startswith(_UUID_PREFIX_PIN):
            continue
        conn_id = _parse_conn_marker(marker)
        at = node.find("at")
        if at is None:
            raise KicadFormatError(f"via {marker}: missing (at ...)")
        point = imp.mm_to_grid(float(at.atom(1)), float(at.atom(2)))
        g = imp.board.grid.grid_per_via
        if point.gx % g or point.gy % g:
            raise KicadFormatError(f"via {marker}: not on a via site")
        record = records.setdefault(conn_id, RouteRecord(conn_id=conn_id))
        record.vias.append(ViaPoint(point.gx // g, point.gy // g))
    for conn_id in sorted(records):
        if not imp.workspace.restore_record(records[conn_id]):
            raise KicadFormatError(
                f"exported route {conn_id} no longer fits the imported "
                "board (was the document edited?)"
            )
        imp.restored.append(conn_id)


def _parse_conn_marker(marker: str) -> int:
    body = marker[len(_UUID_PREFIX_CONN):]
    head = body.split("-", 1)[0]
    try:
        return int(head)
    except ValueError:
        raise KicadFormatError(f"malformed grr route marker {marker!r}")


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------


def _via_span(imp: KicadImport) -> Tuple[str, str]:
    return imp.layer_names[0], imp.layer_names[-1]


def _segment_expr(
    imp: KicadImport,
    ax: float,
    ay: float,
    bx: float,
    by: float,
    layer_name: str,
    kicad_net: int,
    marker: str,
    width_mm: float,
) -> str:
    return (
        f"(segment (start {format_mm(ax)} {format_mm(ay)}) "
        f"(end {format_mm(bx)} {format_mm(by)}) "
        f"(width {format_mm(width_mm)}) "
        f"(layer {format_expr(layer_name)[1:-1]}) "
        f"(net {kicad_net}) (uuid {marker}))"
    )


def export_expressions(
    imp: KicadImport, workspace: Optional[RoutingWorkspace] = None
) -> List[str]:
    """The ``segment``/``via`` expressions for a routed workspace.

    Dispersion traces come first (pad true coordinates to via sites,
    marked ``grr-p<pin>``), then every routed connection's installed
    occupancy and drilled vias (marked ``grr-c<conn>``).
    """
    workspace = workspace or imp.workspace
    rules = imp.board.rules
    width = rules.trace_width * MM_PER_MIL
    via_size = rules.via_pad_diameter * MM_PER_MIL
    via_drill = rules.via_drill_diameter * MM_PER_MIL
    top, bottom = _via_span(imp)
    out: List[str] = []

    kicad_net_for_pin: Dict[int, int] = {
        pad.pin_id: pad.kicad_net for pad in imp.pads if pad.pin_id >= 0
    }
    for pad in imp.pads:
        if not pad.dispersed or pad.pin_id < 0:
            continue
        net = max(pad.kicad_net, 0)
        snapped = imp.grid_to_mm(pad.grid_point)
        if (
            abs(snapped[0] - pad.x_mm) > 1e-6
            or abs(snapped[1] - pad.y_mm) > 1e-6
        ):
            out.append(
                _segment_expr(
                    imp,
                    pad.x_mm,
                    pad.y_mm,
                    snapped[0],
                    snapped[1],
                    imp.layer_names[0],
                    net,
                    f"{_UUID_PREFIX_PIN}{pad.pin_id}-pad",
                    width,
                )
            )
        for k, (layer_idx, channel, lo, hi) in enumerate(pad.trace_segments):
            layer = workspace.layers[layer_idx]
            ax, ay = imp.grid_to_mm(layer.cc_point(channel, lo))
            bx, by = imp.grid_to_mm(layer.cc_point(channel, hi))
            out.append(
                _segment_expr(
                    imp,
                    ax,
                    ay,
                    bx,
                    by,
                    imp.layer_names[layer_idx],
                    net,
                    f"{_UUID_PREFIX_PIN}{pad.pin_id}-s{k}",
                    width,
                )
            )

    net_for_conn: Dict[int, int] = {}
    for conn in imp.connections:
        net_for_conn[conn.conn_id] = imp.kicad_net_for_net.get(
            conn.net_id, kicad_net_for_pin.get(conn.pin_a, 0)
        )
    for conn_id in sorted(workspace.records):
        record = workspace.records[conn_id]
        net = max(net_for_conn.get(conn_id, 0), 0)
        for k, (layer_idx, channel, lo, hi) in enumerate(record.segments):
            layer = workspace.layers[layer_idx]
            ax, ay = imp.grid_to_mm(layer.cc_point(channel, lo))
            bx, by = imp.grid_to_mm(layer.cc_point(channel, hi))
            out.append(
                _segment_expr(
                    imp,
                    ax,
                    ay,
                    bx,
                    by,
                    imp.layer_names[layer_idx],
                    net,
                    f"{_UUID_PREFIX_CONN}{conn_id}-s{k}",
                    width,
                )
            )
        for k, via in enumerate(record.vias):
            x, y = imp.grid_to_mm(imp.board.grid.via_to_grid(via))
            out.append(
                f"(via (at {format_mm(x)} {format_mm(y)}) "
                f"(size {format_mm(via_size)}) "
                f"(drill {format_mm(via_drill)}) "
                f"(layers {format_expr(top)[1:-1]} "
                f"{format_expr(bottom)[1:-1]}) "
                f"(net {net}) (uuid {_UUID_PREFIX_CONN}{conn_id}-v{k}))"
            )
    return out


def export_document(
    imp: KicadImport, workspace: Optional[RoutingWorkspace] = None
) -> str:
    """The original document with the routed copper written back.

    Expressions from a previous grr export are removed first (export is
    idempotent); everything else is preserved byte-for-byte.  The new
    ``segment``/``via`` expressions land just before the closing paren.
    """
    removals: List[Tuple[int, int]] = []
    for tag in ("segment", "via"):
        for node in imp.doc.find_all(tag):
            marker = _grr_uuid(node)
            if marker is not None and marker.startswith("grr-"):
                removals.append((node.start, node.end))
    exprs = export_expressions(imp, workspace)
    block = "".join(f"  {expr}\n" for expr in exprs)
    insert_at = imp.doc.end - 1
    # Make sure the block starts on its own line.
    prefix = "" if imp.text[: insert_at].endswith("\n") else "\n"
    return splice(imp.text, removals, insert_at, prefix + block)


def save_file(
    imp: KicadImport,
    path: str,
    workspace: Optional[RoutingWorkspace] = None,
) -> None:
    """Write :func:`export_document` to a file."""
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(export_document(imp, workspace))


# ----------------------------------------------------------------------
# synthesising a document from a native board
# ----------------------------------------------------------------------


def _synth_layer_table(board: Board) -> Tuple[List[str], List[str]]:
    """Copper names for a synthesised doc: signal layers then planes."""
    total = board.stack.n_signal + len(board.stack.power_layers)
    names: List[str] = []
    for i in range(total):
        if i == 0:
            names.append("F.Cu")
        elif i == total - 1 and total > 1:
            names.append("B.Cu")
        else:
            names.append(f"In{i}.Cu")
    return names[: board.stack.n_signal], names[board.stack.n_signal:]


def write_board_sexp(board: Board, *, origin_mm: float = 20.0) -> str:
    """Render a native :class:`Board` as a minimal ``.kicad_pcb`` document.

    Through-hole footprints on the via grid, the net table, and an
    Edge.Cuts outline matching the board extent — enough for KiCad to
    open and for :func:`import_board` to reconstruct the same board
    (same grid, parts, pins and nets, in the same order).
    """
    pitch = board.rules.via_pitch * MM_PER_MIL
    pad_size = board.rules.via_pad_diameter * MM_PER_MIL
    drill = board.rules.via_drill_diameter * MM_PER_MIL
    grid = board.grid

    def via_mm(via: ViaPoint) -> Tuple[float, float]:
        return origin_mm + via.vx * pitch, origin_mm + via.vy * pitch

    signal_names, power_names = _synth_layer_table(board)
    lines: List[str] = [
        "(kicad_pcb",
        "  (version 20240108)",
        "  (generator grr)",
        "  (general",
        "    (thickness 1.6)",
        "  )",
        "  (layers",
    ]
    numbers = list(range(len(signal_names) + len(power_names)))
    if len(numbers) > 1:
        numbers[-1] = 31  # B.Cu's conventional KiCad index
    for number, name in zip(numbers, signal_names + power_names):
        kind = "power" if name in power_names else "signal"
        lines.append(f"    ({number} {format_expr(name)[1:-1]} {kind})")
    lines.append("    (44 \"Edge.Cuts\" user)")
    lines.append("  )")
    lines.append("  (net 0 \"\")")
    for net in board.nets:
        lines.append(f"  (net {net.net_id + 1} {quoted(net.name)})")
    for part in board.parts:
        px, py = via_mm(part.origin)
        lines.append(
            f"  (footprint {quoted('grr:' + part.package.name)} "
            f"(layer \"F.Cu\")"
        )
        lines.append(f"    (at {format_mm(px)} {format_mm(py)})")
        lines.append(
            f"    (property \"Reference\" {quoted(part.name)} "
            f"(at 0 0) (layer \"F.SilkS\"))"
        )
        for pin, (dx, dy) in zip(part.pins, part.package.pin_offsets):
            net_clause = ""
            if pin.net_id >= 0:
                net = board.nets[pin.net_id]
                net_clause = f" (net {net.net_id + 1} {quoted(net.name)})"
            lines.append(
                f"    (pad {quoted(str(pin.pin_id))} thru_hole circle "
                f"(at {format_mm(dx * pitch)} {format_mm(dy * pitch)}) "
                f"(size {format_mm(pad_size)} {format_mm(pad_size)}) "
                f"(drill {format_mm(drill)}) "
                f"(layers \"*.Cu\"){net_clause})"
            )
        lines.append("  )")
    hi_x = origin_mm + (grid.via_nx - 1) * pitch
    hi_y = origin_mm + (grid.via_ny - 1) * pitch
    lines.append(
        f"  (gr_rect (start {format_mm(origin_mm)} {format_mm(origin_mm)}) "
        f"(end {format_mm(hi_x)} {format_mm(hi_y)}) "
        f"(layer \"Edge.Cuts\") (width 0.1))"
    )
    lines.append(")")
    return "\n".join(lines) + "\n"


def quoted(value: str) -> str:
    """A always-quoted KiCad string (net and reference names)."""
    escaped = value.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'
