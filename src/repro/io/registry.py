"""Format registry: one loading/saving path for every board format.

Callers — the CLI, the service, :mod:`repro.api` — never pick a parser
themselves.  They hand a path to :func:`load_board` (or text to
:func:`load_board_text`) and get back a :class:`LoadedBoard` no matter
whether the file was the native line-based format or a KiCad
``.kicad_pcb``.  :func:`detect_format` maps extensions to format names,
with ``format=`` as the explicit override; the writers
(:func:`save_board`, :func:`save_connections`, :func:`save_routes`)
apply the same extension rules so a ``--write-board out.kicad_pcb``
lands in the format its name promises.
"""

from __future__ import annotations

import io as _io
import os
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from typing import TYPE_CHECKING

from repro.board.board import Board
from repro.board.nets import Connection

if TYPE_CHECKING:
    from repro.channels.workspace import RoutingWorkspace

FORMAT_NATIVE = "native"
FORMAT_KICAD = "kicad"

#: Extension -> format name.  Anything unlisted loads as native text —
#: the historical default for ``.board``/``.txt``/extension-less paths.
_EXTENSIONS = {
    ".kicad_pcb": FORMAT_KICAD,
}

_KNOWN_FORMATS = (FORMAT_NATIVE, FORMAT_KICAD)


class FormatError(ValueError):
    """A path/format combination the registry cannot satisfy."""


@dataclass
class LoadedBoard:
    """A board plus everything a format's loader derived from the file.

    ``workspace`` is non-None when the format carries routing state of
    its own (a ``.kicad_pcb`` pre-seeds dispersion traces and any routes
    restored from a previous export); ``restored`` lists the connection
    ids already routed in that workspace.  ``source`` keeps the
    format-specific import object (a
    :class:`repro.io.kicad.KicadImport`) that the matching
    :func:`save_routes` needs to write results back.
    """

    board: Board
    connections: Tuple[Connection, ...]
    format: str
    path: Optional[str] = None
    workspace: Optional["RoutingWorkspace"] = None
    restored: Tuple[int, ...] = ()
    source: Optional[object] = None

    @property
    def pending(self) -> Tuple[Connection, ...]:
        """Connections not already routed in :attr:`workspace`."""
        if self.workspace is None or not self.restored:
            return self.connections
        done = set(self.restored)
        return tuple(
            conn for conn in self.connections if conn.conn_id not in done
        )


def detect_format(path: Union[str, os.PathLike], format: str = "auto") -> str:
    """The format a path resolves to: by extension, or the override.

    ``format="auto"`` (the default) maps ``.kicad_pcb`` to ``"kicad"``
    and everything else to ``"native"``.  Any other value names a format
    explicitly and merely has to be one the registry knows.
    """
    if format != "auto":
        if format not in _KNOWN_FORMATS:
            raise FormatError(
                f"unknown format {format!r}; expected one of "
                f"{', '.join(_KNOWN_FORMATS)} or 'auto'"
            )
        return format
    ext = os.path.splitext(os.fspath(path))[1].lower()
    return _EXTENSIONS.get(ext, FORMAT_NATIVE)


def load_board(
    path: Union[str, os.PathLike],
    *,
    format: str = "auto",
    connections_path: Optional[Union[str, os.PathLike]] = None,
    pitch_mm: Optional[float] = None,
) -> LoadedBoard:
    """Load a board (and its connection list) from any known format.

    Native boards take their connections from ``connections_path`` when
    given, else from stringing the board's nets.  KiCad boards always
    derive connections from the document's nets (``connections_path`` is
    rejected), and arrive with a pre-seeded workspace: dispersion traces
    for off-grid pads, plus any routes a previous export embedded.
    """
    path = os.fspath(path)
    resolved = detect_format(path, format)
    if resolved == FORMAT_KICAD:
        if connections_path is not None:
            raise FormatError(
                "kicad boards embed their netlist; a separate "
                "connections file cannot be combined with "
                f"{os.path.basename(path)}"
            )
        from repro.io import kicad

        imp = kicad.load_file(path, pitch_mm=pitch_mm)
        return LoadedBoard(
            board=imp.board,
            connections=tuple(imp.connections),
            format=FORMAT_KICAD,
            path=path,
            workspace=imp.workspace,
            restored=tuple(imp.restored),
            source=imp,
        )
    from repro.io.netlist import read_board, read_connections

    with open(path, encoding="utf-8") as stream:
        board = read_board(stream)
    if connections_path is not None:
        with open(os.fspath(connections_path), encoding="utf-8") as stream:
            connections = tuple(read_connections(stream))
    else:
        from repro.stringer import Stringer

        connections = tuple(Stringer(board).string_all())
    return LoadedBoard(
        board=board,
        connections=connections,
        format=FORMAT_NATIVE,
        path=path,
    )


def load_board_text(
    board_text: str,
    connections_text: Optional[str] = None,
    *,
    format: str = FORMAT_NATIVE,
    pitch_mm: Optional[float] = None,
) -> LoadedBoard:
    """Text-level counterpart of :func:`load_board` (the wire path).

    The service boundary ships boards as text; this is the one place
    that decoding happens, so the wire format and the file format can
    never drift apart.  ``format`` must be explicit — text has no
    extension to sniff.
    """
    if format == "auto":
        raise FormatError("text input needs an explicit format")
    if format == FORMAT_KICAD:
        if connections_text is not None:
            raise FormatError("kicad boards embed their netlist")
        from repro.io import kicad

        imp = kicad.import_board(board_text, pitch_mm=pitch_mm)
        return LoadedBoard(
            board=imp.board,
            connections=tuple(imp.connections),
            format=FORMAT_KICAD,
            workspace=imp.workspace,
            restored=tuple(imp.restored),
            source=imp,
        )
    if format != FORMAT_NATIVE:
        raise FormatError(f"unknown format {format!r}")
    from repro.io.netlist import read_board, read_connections

    board = read_board(_io.StringIO(board_text))
    if connections_text is not None:
        connections = tuple(
            read_connections(_io.StringIO(connections_text))
        )
    else:
        from repro.stringer import Stringer

        connections = tuple(Stringer(board).string_all())
    return LoadedBoard(
        board=board,
        connections=connections,
        format=FORMAT_NATIVE,
    )


def save_board(
    board: Board,
    path: Union[str, os.PathLike],
    *,
    format: str = "auto",
) -> None:
    """Write a board in the format its destination path implies."""
    path = os.fspath(path)
    resolved = detect_format(path, format)
    if resolved == FORMAT_KICAD:
        from repro.io import kicad

        with open(path, "w", encoding="utf-8") as stream:
            stream.write(kicad.write_board_sexp(board))
        return
    from repro.io.netlist import write_board

    with open(path, "w", encoding="utf-8") as stream:
        write_board(board, stream)


def save_connections(
    connections: Sequence[Connection],
    path: Union[str, os.PathLike],
    *,
    format: str = "auto",
) -> None:
    """Write a connection list in the format the path implies.

    KiCad has no standalone connection-list document — its netlist
    lives inside the board — so a ``.kicad_pcb`` destination is
    rejected with a pointer at ``save_board``.
    """
    path = os.fspath(path)
    resolved = detect_format(path, format)
    if resolved == FORMAT_KICAD:
        raise FormatError(
            "kicad has no standalone connection-list file; the netlist "
            "is part of the board document (use save_board)"
        )
    from repro.io.netlist import write_connections

    with open(path, "w", encoding="utf-8") as stream:
        write_connections(connections, stream)


def save_routes(
    workspace: "RoutingWorkspace",
    path: Union[str, os.PathLike],
    *,
    format: str = "auto",
    source: Optional[object] = None,
) -> None:
    """Write routing results in the format the path implies.

    Native destinations get the reloadable route dump.  A
    ``.kicad_pcb`` destination writes the routed copper back into the
    original document — which requires the :class:`LoadedBoard.source`
    import object, so only boards loaded *from* kicad can export to it.
    """
    path = os.fspath(path)
    resolved = detect_format(path, format)
    if resolved == FORMAT_KICAD:
        from repro.io import kicad

        if source is None:
            raise FormatError(
                "exporting routes to .kicad_pcb needs the original "
                "import (LoadedBoard.source); the board was not loaded "
                "from a kicad document"
            )
        kicad.save_file(source, path, workspace)
        return
    from repro.io.dump import save_routes as save_dump

    with open(path, "w", encoding="utf-8") as stream:
        save_dump(workspace, stream)
