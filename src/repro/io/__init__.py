"""Text formats for routing problems and solutions.

The real grr consumed stringer output files and emitted wiring databases;
this package provides the equivalent: a line-based board/netlist format and
a route dump that can be reloaded into a fresh workspace.
"""

from repro.io.dump import load_routes, save_routes
from repro.io.netlist import (
    read_board,
    read_connections,
    write_board,
    write_connections,
)

__all__ = [
    "load_routes",
    "read_board",
    "read_connections",
    "save_routes",
    "write_board",
    "write_connections",
]
