"""Board and route interchange: native text formats plus KiCad.

The real grr consumed stringer output files and emitted wiring
databases; this package provides the equivalent — a line-based
board/netlist format and a reloadable route dump — plus an importer and
exporter for KiCad ``.kicad_pcb`` documents (:mod:`repro.io.kicad`).

New code should go through the format registry
(:func:`detect_format` / :func:`load_board` / :func:`save_routes`)
rather than picking a parser by hand; the registry resolves formats by
file extension and keeps every entry point on one loading path.
"""

from repro.io.dump import load_routes, save_routes as save_route_dump
from repro.io.netlist import (
    read_board,
    read_connections,
    write_board,
    write_connections,
)
from repro.io.registry import (
    FORMAT_KICAD,
    FORMAT_NATIVE,
    FormatError,
    LoadedBoard,
    detect_format,
    load_board,
    load_board_text,
    save_board,
    save_connections,
    save_routes,
)

__all__ = [
    "FORMAT_KICAD",
    "FORMAT_NATIVE",
    "FormatError",
    "LoadedBoard",
    "detect_format",
    "load_board",
    "load_board_text",
    "load_routes",
    "read_board",
    "read_connections",
    "save_board",
    "save_connections",
    "save_route_dump",
    "save_routes",
    "write_board",
    "write_connections",
]
