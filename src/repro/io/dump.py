"""Route dumps: save a routed board's wiring and reload it exactly.

Format (one record per routed connection)::

    route <conn_id>
    link <layer_index> <ax> <ay> <bx> <by> <channel>:<lo>:<hi> ...
    seg <layer_index> <channel> <lo> <hi>
    via <vx> <vy>
    end

``link`` lines are metadata (path shape, for delay analysis); ``seg``
lines are the exact installed occupancy (links are clipped where they
cross the connection's own vias or its endpoint pins, so the two differ).

Reloading uses the workspace's exact-restore machinery, so a reloaded
solution occupies precisely the same channels and via sites.
"""

from __future__ import annotations

from typing import List, TextIO

from repro.channels.workspace import (
    RouteLink,
    RouteRecord,
    RoutingWorkspace,
)
from repro.grid.coords import GridPoint, ViaPoint


class RouteDumpError(ValueError):
    """The file is not a valid route dump."""


def save_routes(workspace: RoutingWorkspace, stream: TextIO) -> None:
    """Write every routed connection's occupancy to a stream."""
    for conn_id in sorted(workspace.records):
        record = workspace.records[conn_id]
        stream.write(f"route {conn_id}\n")
        for link in record.links:
            pieces = " ".join(
                f"{c}:{lo}:{hi}" for c, lo, hi in link.pieces
            )
            stream.write(
                f"link {link.layer_index} {link.a.gx} {link.a.gy} "
                f"{link.b.gx} {link.b.gy} {pieces}\n"
            )
        for layer_index, channel, lo, hi in record.segments:
            stream.write(f"seg {layer_index} {channel} {lo} {hi}\n")
        for via in record.vias:
            stream.write(f"via {via.vx} {via.vy}\n")
        stream.write("end\n")


def load_routes(workspace: RoutingWorkspace, stream: TextIO) -> List[int]:
    """Reinstall dumped routes into a (pins-only) workspace.

    Returns the connection ids restored.  Raises if any route no longer
    fits — a dump only makes sense against the same board.
    """
    restored: List[int] = []
    record: RouteRecord = None  # type: ignore[assignment]
    for line_no, raw in enumerate(stream, 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        kind = fields[0]
        try:
            if kind == "route":
                record = RouteRecord(conn_id=int(fields[1]))
            elif kind == "link":
                if record is None:
                    raise RouteDumpError("link outside a route record")
                layer_index = int(fields[1])
                a = GridPoint(int(fields[2]), int(fields[3]))
                b = GridPoint(int(fields[4]), int(fields[5]))
                pieces = []
                for item in fields[6:]:
                    c, lo, hi = (int(v) for v in item.split(":"))
                    pieces.append((c, lo, hi))
                record.links.append(
                    RouteLink(layer_index=layer_index, a=a, b=b, pieces=pieces)
                )
            elif kind == "seg":
                if record is None:
                    raise RouteDumpError("seg outside a route record")
                record.segments.append(
                    (int(fields[1]), int(fields[2]), int(fields[3]), int(fields[4]))
                )
            elif kind == "via":
                if record is None:
                    raise RouteDumpError("via outside a route record")
                record.vias.append(ViaPoint(int(fields[1]), int(fields[2])))
            elif kind == "end":
                if record is None:
                    raise RouteDumpError("end outside a route record")
                if not workspace.restore_record(record):
                    raise RouteDumpError(
                        f"route {record.conn_id} no longer fits this board"
                    )
                restored.append(record.conn_id)
                record = None  # type: ignore[assignment]
            else:
                raise RouteDumpError(f"unknown record {kind!r}")
        except (IndexError, ValueError) as exc:
            raise RouteDumpError(f"line {line_no}: {exc}") from exc
    if record is not None:
        raise RouteDumpError("unterminated route record")
    return restored
