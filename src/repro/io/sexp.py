"""S-expression reader/writer for KiCad documents.

KiCad's board format (``.kicad_pcb``) is one large s-expression:
parenthesised lists of bare atoms and double-quoted strings.  This
module parses such a document into a node tree while recording the
*byte offsets* of every node in the source text.  The offsets are what
make lossless editing possible: :mod:`repro.io.kicad` never
re-serialises the whole tree — it splices new expressions into the
original text (and removes only the expressions it wrote earlier), so
every byte it did not touch survives export verbatim.

The writer half (:func:`format_expr`, :func:`quote_string`) renders new
expressions in KiCad's own conventions (quoted strings, trimmed
decimals) for the spliced content.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Union


class SExpError(ValueError):
    """The text is not a well-formed s-expression document."""

    def __init__(self, message: str, offset: int = -1) -> None:
        if offset >= 0:
            message = f"offset {offset}: {message}"
        super().__init__(message)
        self.offset = offset


@dataclass
class Atom:
    """A bare token or quoted string, with its source byte range."""

    value: str  #: decoded value (quotes and escapes resolved)
    start: int  #: offset of the first source character
    end: int  #: offset one past the last source character
    quoted: bool = False

    def as_int(self) -> int:
        """The atom as an integer (KiCad writes them bare)."""
        return int(self.value)

    def as_float(self) -> float:
        """The atom as a float (coordinates, sizes, angles)."""
        return float(self.value)


@dataclass
class SList:
    """A parenthesised list, with its source byte range."""

    items: List[Union[Atom, "SList"]] = field(default_factory=list)
    start: int = 0  #: offset of the opening ``(``
    end: int = 0  #: offset one past the closing ``)``

    @property
    def tag(self) -> str:
        """The leading atom's value, or '' for an empty/headless list."""
        if self.items and isinstance(self.items[0], Atom):
            return self.items[0].value
        return ""

    def find(self, tag: str) -> Optional["SList"]:
        """The first child list with the given tag, if any."""
        for item in self.items:
            if isinstance(item, SList) and item.tag == tag:
                return item
        return None

    def find_all(self, tag: str) -> Iterator["SList"]:
        """Every child list with the given tag, in document order."""
        for item in self.items:
            if isinstance(item, SList) and item.tag == tag:
                yield item

    def atoms(self) -> List[str]:
        """Values of the direct atom children (the tag included)."""
        return [item.value for item in self.items if isinstance(item, Atom)]

    def atom(self, index: int) -> Optional[str]:
        """The value of the index-th direct atom child, if present.

        Index 0 is the tag; ``atom(1)`` is the first operand.  Returns
        None when the list has fewer atoms (child lists don't count).
        """
        seen = 0
        for item in self.items:
            if isinstance(item, Atom):
                if seen == index:
                    return item.value
                seen += 1
        return None

    def value_of(self, tag: str, index: int = 1) -> Optional[str]:
        """Shorthand: ``find(tag)`` then that child's ``atom(index)``."""
        child = self.find(tag)
        if child is None:
            return None
        return child.atom(index)


_DELIMS = "()"
_WHITESPACE = " \t\r\n"


def _decode_quoted(text: str, start: int) -> tuple:
    """Decode a double-quoted string starting at ``start``.

    Returns ``(value, end)`` with ``end`` one past the closing quote.
    KiCad escapes ``\\`` and ``"`` with a backslash and writes literal
    ``\\n``/``\\t`` pairs for control characters.
    """
    out: List[str] = []
    i = start + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == '"':
            return "".join(out), i + 1
        if ch == "\\" and i + 1 < n:
            escape = text[i + 1]
            out.append({"n": "\n", "t": "\t", "r": "\r"}.get(escape, escape))
            i += 2
            continue
        out.append(ch)
        i += 1
    raise SExpError("unterminated quoted string", start)


def parse(text: str) -> SList:
    """Parse one top-level s-expression; raises on trailing content."""
    node, end = _parse_one(text, _skip_ws(text, 0))
    rest = _skip_ws(text, end)
    if rest != len(text):
        raise SExpError("trailing content after top-level expression", rest)
    if not isinstance(node, SList):
        raise SExpError("top level must be a list", node.start)
    return node


def _skip_ws(text: str, i: int) -> int:
    n = len(text)
    while i < n and text[i] in _WHITESPACE:
        i += 1
    return i


def _parse_one(text: str, i: int) -> tuple:
    n = len(text)
    if i >= n:
        raise SExpError("unexpected end of input", i)
    ch = text[i]
    if ch == "(":
        node = SList(start=i)
        i += 1
        while True:
            i = _skip_ws(text, i)
            if i >= n:
                raise SExpError("unterminated list", node.start)
            if text[i] == ")":
                node.end = i + 1
                return node, i + 1
            child, i = _parse_one(text, i)
            node.items.append(child)
    if ch == ")":
        raise SExpError("unbalanced ')'", i)
    if ch == '"':
        value, end = _decode_quoted(text, i)
        return Atom(value=value, start=i, end=end, quoted=True), end
    # Bare atom: runs to whitespace or a delimiter.
    j = i
    while j < n and text[j] not in _WHITESPACE and text[j] not in _DELIMS:
        j += 1
    return Atom(value=text[i:j], start=i, end=j), j


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------

_BARE_SAFE = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "0123456789._-+*/:%"
)


def quote_string(value: str) -> str:
    """Render a string the way KiCad writes it (quoted when needed)."""
    if value and all(ch in _BARE_SAFE for ch in value):
        return value
    escaped = (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\t", "\\t")
        .replace("\r", "\\r")
    )
    return f'"{escaped}"'


def format_mm(value: float) -> str:
    """A millimetre coordinate in KiCad's trimmed-decimal style.

    Six decimal places — enough that re-importing and rounding to the
    routing grid always recovers the exact grid index — with trailing
    zeros (and a trailing dot) removed, as KiCad itself writes numbers.
    """
    text = f"{value:.6f}".rstrip("0").rstrip(".")
    return text if text not in ("", "-0") else "0"


def format_expr(*parts: object) -> str:
    """One flat expression: ``format_expr('net', 3, 'GND')`` -> ``(net 3 GND)``.

    Strings are quoted when KiCad would quote them; floats go through
    :func:`format_mm`; nested pre-rendered expressions pass through as
    raw text when wrapped in :class:`Raw`.
    """
    rendered: List[str] = []
    for part in parts:
        if isinstance(part, Raw):
            rendered.append(part.text)
        elif isinstance(part, bool):
            rendered.append("yes" if part else "no")
        elif isinstance(part, float):
            rendered.append(format_mm(part))
        elif isinstance(part, int):
            rendered.append(str(part))
        else:
            rendered.append(quote_string(str(part)))
    return "(" + " ".join(rendered) + ")"


@dataclass(frozen=True)
class Raw:
    """Pre-rendered text passed through :func:`format_expr` untouched."""

    text: str


def splice(text: str, removals: List[tuple], insert_at: int, insert: str) -> str:
    """Edit a document: delete byte ranges, insert new text at an offset.

    ``removals`` is a list of ``(start, end)`` ranges (non-overlapping;
    any order).  Each range is widened to swallow the whitespace run
    immediately before it up to and including the previous newline, so
    removing an expression this module previously spliced in restores
    the surrounding text byte-for-byte.  ``insert`` is placed at
    ``insert_at`` *of the original text* after removals are applied.
    """
    spans = sorted(removals)
    for i in range(1, len(spans)):
        if spans[i][0] < spans[i - 1][1]:
            raise ValueError("overlapping removal ranges")
    out: List[str] = []
    cursor = 0
    inserted = False

    def emit_upto(limit: int) -> None:
        nonlocal cursor, inserted
        if not inserted and cursor <= insert_at <= limit:
            out.append(text[cursor:insert_at])
            out.append(insert)
            out.append(text[insert_at:limit])
            inserted = True
        else:
            out.append(text[cursor:limit])
        cursor = limit

    for start, end in spans:
        # Widen backwards over indentation to the previous newline.
        widened = start
        while widened > cursor and text[widened - 1] in " \t":
            widened -= 1
        if widened > cursor and text[widened - 1] == "\n":
            widened -= 1
        emit_upto(widened)
        cursor = end
    emit_upto(len(text))
    if not inserted:
        raise ValueError("insert offset inside a removed range")
    return "".join(out)
