"""Named board configurations mirroring the nine rows of Table 1.

Each config pairs the paper's reported numbers (for EXPERIMENTS.md
comparison) with a generator spec whose *shape* matches that row: layer
count, relative board size, and wiring-density band.  Boards are
geometrically scaled (see DESIGN.md §2) so that a pure-Python router gets
through them; ``scale`` multiplies the linear board dimensions.

Paper rows (Table 1), in decreasing order of difficulty::

    board    layers conn  pins/in2  %chan  %lee  ripups  vias  CPUmin
    kdj11       2   1184   27.5     76.7     —      —      —   >300 (fail)
    nmc         4   2253   29.9     52.3    14     20    .99   28.5
    dpath       6   5533   37.3     46.0     8      1    .65   21.5
    coproc      6   5937   36.0     40.5     6      0    .62   11.3
    kdj11       4   1184   27.5     38.4     8      0    .70    4.6
    icache      6   5795   36.6     36.5     3      0    .41    6.1
    nmc         6   2253   29.9     34.9     3      0    .68    2.2
    dcache      6   5738   36.4     33.5     2      0    .40    5.2
    tna         6   2789   43.4     27.1     3      6    .50    4.8
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.board.board import Board
from repro.workloads.boards import BoardSpec, generate_board
from repro.workloads.netlist_gen import NetlistSpec


@dataclass(frozen=True)
class PaperRow:
    """One row of Table 1 as printed in the paper."""

    layers: int
    connections: int
    pins_per_sq_inch: float
    percent_chan: float
    percent_lee: Optional[float]
    rip_ups: Optional[int]
    vias_per_conn: Optional[float]
    cpu_minutes: Optional[float]
    failed: bool = False


@dataclass(frozen=True)
class TitanBoardConfig:
    """A Table 1 row plus the synthetic spec that stands in for it."""

    name: str
    paper: PaperRow
    #: Full-scale via-grid size implied by the board's physical dimensions.
    full_via_nx: int
    full_via_ny: int
    #: Generator density knobs (tuned so the row's difficulty band —
    #: scaled %chan, %lee, rip-ups — is reproduced at reduced scale).
    net_fraction: float
    mean_fanout: float
    locality: float
    output_pin_fraction: float = 0.35
    power_pin_fraction: float = 0.10

    def spec(self, scale: float = 0.35, seed: int = 0) -> BoardSpec:
        """Generator spec at the given linear scale."""
        via_nx = max(int(self.full_via_nx * scale), 24)
        via_ny = max(int(self.full_via_ny * scale), 24)
        return BoardSpec(
            name=self.name,
            via_nx=via_nx,
            via_ny=via_ny,
            n_signal_layers=self.paper.layers,
            n_power_layers=2,
            power_pin_fraction=self.power_pin_fraction,
            output_pin_fraction=self.output_pin_fraction,
            netlist=NetlistSpec(
                net_fraction=self.net_fraction,
                mean_fanout=self.mean_fanout,
                locality=self.locality,
                local_radius=max(int(12 * scale * 3), 6),
                seed=seed,
            ),
            seed=seed,
        )


def _config(
    name: str,
    paper: PaperRow,
    full: tuple,
    net_fraction: float,
    mean_fanout: float,
    locality: float,
) -> TitanBoardConfig:
    return TitanBoardConfig(
        name=name,
        paper=paper,
        full_via_nx=full[0],
        full_via_ny=full[1],
        net_fraction=net_fraction,
        mean_fanout=mean_fanout,
        locality=locality,
    )


#: The nine Table 1 rows in the paper's order (decreasing difficulty).
TITAN_CONFIGS: Dict[str, TitanBoardConfig] = {
    "kdj11_2l": _config(
        "kdj11_2l",
        PaperRow(2, 1184, 27.5, 76.7, None, None, None, None, failed=True),
        (110, 130), 1.0, 3.2, 0.15,
    ),
    "nmc_4l": _config(
        "nmc_4l",
        PaperRow(4, 2253, 29.9, 52.3, 14.0, 20, 0.99, 28.5),
        (110, 150), 1.0, 3.2, 0.15,
    ),
    "dpath": _config(
        "dpath",
        PaperRow(6, 5533, 37.3, 46.0, 8.0, 1, 0.65, 21.5),
        (160, 220), 1.0, 3.0, 0.18,
    ),
    "coproc": _config(
        "coproc",
        PaperRow(6, 5937, 36.0, 40.5, 6.0, 0, 0.62, 11.3),
        (160, 220), 1.0, 3.0, 0.22,
    ),
    "kdj11_4l": _config(
        "kdj11_4l",
        PaperRow(4, 1184, 27.5, 38.4, 8.0, 0, 0.70, 4.6),
        (110, 130), 1.0, 3.2, 0.15,
    ),
    "icache": _config(
        "icache",
        PaperRow(6, 5795, 36.6, 36.5, 3.0, 0, 0.41, 6.1),
        (110, 160), 1.0, 2.8, 0.32,
    ),
    "nmc_6l": _config(
        "nmc_6l",
        PaperRow(6, 2253, 29.9, 34.9, 3.0, 0, 0.68, 2.2),
        (110, 150), 1.0, 3.2, 0.15,
    ),
    "dcache": _config(
        "dcache",
        PaperRow(6, 5738, 36.4, 33.5, 2.0, 0, 0.40, 5.2),
        (110, 160), 0.95, 2.8, 0.40,
    ),
    "tna": _config(
        "tna",
        PaperRow(6, 2789, 43.4, 27.1, 3.0, 6, 0.50, 4.8),
        (150, 150), 0.90, 2.4, 0.50,
    ),
}


def make_titan_board(
    name: str, scale: float = 0.35, seed: int = 0
) -> Board:
    """Generate the synthetic stand-in for one Table 1 board."""
    config = TITAN_CONFIGS[name]
    return generate_board(config.spec(scale=scale, seed=seed))
