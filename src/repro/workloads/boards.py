"""Seeded synthetic board generator: placement plus netlist.

The placement mimics the Titan boards (Figure 19): a regular array of
DIP integrated circuits, each flanked by a SIP package of terminating and
pull-up resistors, with a clear margin around the board edge.  Pin roles
are drawn per IC (power / output / input) so nets can be generated on top.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.board.board import Board
from repro.board.parts import PinRole, dip_package, sip_package
from repro.board.technology import TechRules
from repro.grid.coords import ViaPoint
from repro.workloads.netlist_gen import (
    NetlistSpec,
    bind_power_nets,
    generate_nets,
)


@dataclass
class BoardSpec:
    """Everything needed to synthesise one board deterministically."""

    name: str = "synthetic"
    via_nx: int = 48
    via_ny: int = 48
    n_signal_layers: int = 4
    n_power_layers: int = 2
    ic_pin_count: int = 24
    sip_pin_count: int = 12
    #: Clear margin around the part array, in via units.
    margin: int = 2
    #: Extra via columns/rows between adjacent placement cells.
    cell_gap: Tuple[int, int] = (1, 1)
    power_pin_fraction: float = 0.15
    output_pin_fraction: float = 0.30
    netlist: NetlistSpec = field(default_factory=NetlistSpec)
    seed: int = 0


def _assign_ic_roles(
    rng: random.Random, pin_count: int, spec: BoardSpec
) -> List[PinRole]:
    """Random role per IC pin: corner pins power, the rest output/input."""
    roles: List[PinRole] = []
    n_power = max(2, int(pin_count * spec.power_pin_fraction))
    n_output = max(1, int(pin_count * spec.output_pin_fraction))
    bag = (
        [PinRole.POWER] * n_power
        + [PinRole.OUTPUT] * n_output
        + [PinRole.INPUT] * (pin_count - n_power - n_output)
    )
    rng.shuffle(bag)
    roles.extend(bag)
    return roles


def generate_board(spec: BoardSpec) -> Board:
    """Build a placed board with nets, ready for stringing and routing."""
    rules = TechRules()
    board = Board.create(
        via_nx=spec.via_nx,
        via_ny=spec.via_ny,
        n_signal_layers=spec.n_signal_layers,
        n_power_layers=spec.n_power_layers,
        rules=rules,
        name=spec.name,
    )
    rng = random.Random(spec.seed)
    ic = dip_package(spec.ic_pin_count, row_separation=3)
    sip = sip_package(spec.sip_pin_count)
    ic_w, ic_h = ic.extent
    sip_w, _ = sip.extent
    cell_w = max(ic_w, sip_w) + spec.cell_gap[0]
    cell_h = ic_h + 1 + 1 + spec.cell_gap[1]  # IC rows + gap + SIP row
    x = spec.margin
    y = spec.margin
    while y + cell_h <= spec.via_ny - spec.margin:
        while x + cell_w <= spec.via_nx - spec.margin:
            origin = ViaPoint(x, y)
            if board.part_can_fit(ic, origin):
                roles = _assign_ic_roles(rng, ic.pin_count, spec)
                board.add_part(ic, origin, roles=roles)
            sip_origin = ViaPoint(x, y + ic_h + 1)
            if board.part_can_fit(sip, sip_origin):
                board.add_part(
                    sip,
                    sip_origin,
                    roles=[PinRole.TERMINATOR] * sip.pin_count,
                )
            x += cell_w
        x = spec.margin
        y += cell_h
    generate_nets(board, spec.netlist)
    bind_power_nets(board, n_power_nets=max(spec.n_power_layers, 1))
    return board
