"""Backplane-style workloads: connector columns and multi-drop buses.

The Titan's thirteen board types include "a 15 by 15 inch backplane"
(Section 9).  Backplanes look nothing like logic boards: a few tall
connector columns, wide buses visiting every slot in order, and very
regular wiring.  This generator produces that shape — a useful stress
for the router because bus chains create long parallel runs that compete
for the same channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import random

from repro.board.board import Board
from repro.board.parts import Package, PinRole, sip_package
from repro.board.technology import LogicFamily, TechRules
from repro.grid.coords import ViaPoint
from repro.workloads.netlist_gen import bind_power_nets


def connector_package(pin_rows: int, columns: int = 2) -> Package:
    """A backplane connector: ``columns`` vertical columns of pins."""
    if pin_rows < 1 or columns < 1:
        raise ValueError("connector needs at least one row and column")
    offsets: List[Tuple[int, int]] = []
    for column in range(columns):
        for row in range(pin_rows):
            offsets.append((column, row))
    return Package(f"conn{columns}x{pin_rows}", tuple(offsets))


@dataclass
class BackplaneSpec:
    """Parameters of a synthetic backplane."""

    name: str = "backplane"
    via_nx: int = 60
    via_ny: int = 40
    n_signal_layers: int = 6
    n_power_layers: int = 2
    n_slots: int = 6
    pin_rows: int = 24
    #: Bus nets visiting every slot (each uses one pin row).
    bus_width: int = 12
    #: Extra point-to-point nets between adjacent slots.
    n_point_to_point: int = 20
    #: Fraction of connector pins bound to the power nets.
    power_pin_fraction: float = 0.15
    seed: int = 0


def generate_backplane(spec: BackplaneSpec) -> Board:
    """Build a placed backplane with bus and point-to-point nets."""
    board = Board.create(
        via_nx=spec.via_nx,
        via_ny=spec.via_ny,
        n_signal_layers=spec.n_signal_layers,
        n_power_layers=spec.n_power_layers,
        rules=TechRules(),
        name=spec.name,
    )
    rng = random.Random(spec.seed)
    connector = connector_package(spec.pin_rows, columns=2)
    margin = 3
    usable = spec.via_nx - 2 * margin - 2
    pitch = max(usable // max(spec.n_slots - 1, 1), 4)
    slots = []
    for slot in range(spec.n_slots):
        origin = ViaPoint(margin + slot * pitch, margin)
        if not board.part_can_fit(connector, origin):
            break
        part = board.add_part(
            connector, origin, name=f"slot{slot}",
            roles=[PinRole.UNUSED] * connector.pin_count,
        )
        slots.append(part)
    # Terminator packs along the bottom edge (below the connectors),
    # enough for every ECL net (buses + point-to-point).
    needed = spec.bus_width + spec.n_point_to_point + 4
    terminators = 0
    y = margin + spec.pin_rows + 2
    while terminators < needed and y <= spec.via_ny - margin - 1:
        x = margin
        while terminators < needed and x + 8 <= spec.via_nx - margin:
            sip = sip_package(8)
            origin = ViaPoint(x, y)
            if board.part_can_fit(sip, origin):
                board.add_part(
                    sip, origin, roles=[PinRole.TERMINATOR] * 8
                )
                terminators += 8
            x += 10
        y += 2
    _assign_roles(board, slots, spec, rng)
    _build_bus_nets(board, slots, spec)
    _build_point_to_point(board, slots, spec, rng)
    bind_power_nets(board, n_power_nets=max(spec.n_power_layers, 1))
    return board


def _assign_roles(board, slots, spec, rng) -> None:
    """Rows split into bus rows (driver on slot 0) and free pins."""
    for slot_index, part in enumerate(slots):
        for pin_index, pin in enumerate(part.pins):
            column = pin_index // spec.pin_rows
            row = pin_index % spec.pin_rows
            if column == 0 and row < spec.bus_width:
                pin.role = (
                    PinRole.OUTPUT if slot_index == 0 else PinRole.INPUT
                )
            elif rng.random() < spec.power_pin_fraction:
                pin.role = PinRole.POWER
            else:
                pin.role = PinRole.OUTPUT if rng.random() < 0.3 else PinRole.INPUT


def _build_bus_nets(board, slots, spec) -> None:
    """One multi-drop net per bus row, visiting every slot in order."""
    for row in range(spec.bus_width):
        members = []
        for part in slots:
            pin = part.pins[row]  # column 0, given connector pin order
            members.append(pin.pin_id)
        if len(members) >= 2:
            board.add_net(
                members, name=f"bus{row}", family=LogicFamily.ECL
            )


def _build_point_to_point(board, slots, spec, rng) -> None:
    """Short nets between free pins of adjacent slots."""
    built = 0
    attempts = 0
    while built < spec.n_point_to_point and attempts < 200:
        attempts += 1
        if len(slots) < 2:
            break
        i = rng.randrange(len(slots) - 1)
        a_pins = [
            p
            for p in slots[i].pins
            if p.net_id == -1 and p.role is PinRole.OUTPUT
        ]
        b_pins = [
            p
            for p in slots[i + 1].pins
            if p.net_id == -1 and p.role is PinRole.INPUT
        ]
        if not a_pins or not b_pins:
            continue
        a = rng.choice(a_pins)
        b = rng.choice(b_pins)
        board.add_net(
            [a.pin_id, b.pin_id],
            name=f"p2p{built}",
            family=LogicFamily.ECL,
        )
        built += 1
