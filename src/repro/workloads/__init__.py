"""Synthetic routing problems standing in for the paper's Titan boards.

The paper evaluated grr on real DEC netlists (Table 1).  Those are not
available, so this package generates seeded boards with the same *shape*:
arrays of DIP ICs flanked by SIP terminating-resistor packs (Figure 19),
ECL nets strung output-first with local/global fanout mix, and power pins
bound to plane nets.  See DESIGN.md §2 for the substitution argument.
"""

from repro.workloads.backplane import (
    BackplaneSpec,
    connector_package,
    generate_backplane,
)
from repro.workloads.boards import BoardSpec, generate_board
from repro.workloads.netlist_gen import NetlistSpec, generate_nets
from repro.workloads.titan import (
    TITAN_CONFIGS,
    TitanBoardConfig,
    make_titan_board,
)

__all__ = [
    "BackplaneSpec",
    "BoardSpec",
    "connector_package",
    "generate_backplane",
    "NetlistSpec",
    "TITAN_CONFIGS",
    "TitanBoardConfig",
    "generate_board",
    "generate_nets",
    "make_titan_board",
]
