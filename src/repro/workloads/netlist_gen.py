"""Random net generation over a placed board.

Nets are driver-based: each net takes an unused OUTPUT pin as its driver
and a handful of unused INPUT pins as receivers.  Receiver choice mixes
*local* picks (within a radius of the driver — module-internal wiring)
with *global* picks (uniform over the board — buses and control), which is
what gives real boards their characteristic mix of short and long
connections (Figure 20).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.board.board import Board
from repro.board.nets import Net, NetKind
from repro.board.parts import Pin, PinRole
from repro.board.technology import LogicFamily
from repro.grid.coords import manhattan


@dataclass
class NetlistSpec:
    """Parameters of random net generation."""

    #: Fraction of OUTPUT pins that drive a net.
    net_fraction: float = 0.9
    #: Mean receivers per net (geometric distribution, at least 1).
    mean_fanout: float = 2.0
    #: Probability that a receiver is chosen near the driver.
    locality: float = 0.7
    #: "Near" means within this many via units (Manhattan).
    local_radius: int = 15
    #: Fraction of nets that are ECL (the rest are TTL).
    ecl_fraction: float = 1.0
    #: If set, net family follows the driver's board half instead of
    #: ``ecl_fraction``: drivers left of the split column are ECL, right
    #: of it TTL (used by the tesselation workload).
    family_split_column: Optional[int] = None
    seed: int = 0


def _fanout(rng: random.Random, mean: float) -> int:
    """Geometric fanout with the given mean, at least 1 receiver."""
    if mean <= 1.0:
        return 1
    p = 1.0 / mean
    k = 1
    while rng.random() > p and k < 8:
        k += 1
    return k


def generate_nets(board: Board, spec: NetlistSpec) -> List[Net]:
    """Create signal nets over the board's unassigned pins."""
    rng = random.Random(spec.seed)
    outputs = [
        p
        for p in board.pins
        if p.role is PinRole.OUTPUT and p.net_id == -1
    ]
    inputs = [
        p for p in board.pins if p.role is PinRole.INPUT and p.net_id == -1
    ]
    rng.shuffle(outputs)
    n_nets = int(len(outputs) * spec.net_fraction)
    free_inputs = set(p.pin_id for p in inputs)
    nets: List[Net] = []
    for driver in outputs[:n_nets]:
        if not free_inputs:
            break
        receivers = _pick_receivers(board, rng, driver, free_inputs, spec)
        if not receivers:
            continue
        family = _family_for(rng, driver, spec)
        net = board.add_net(
            [driver.pin_id] + [p.pin_id for p in receivers],
            family=family,
        )
        nets.append(net)
    return nets


def _pick_receivers(
    board: Board,
    rng: random.Random,
    driver: Pin,
    free_inputs: set,
    spec: NetlistSpec,
) -> List[Pin]:
    """Choose this net's input pins with the local/global mix."""
    count = _fanout(rng, spec.mean_fanout)
    chosen: List[Pin] = []
    candidates = [board.pins[i] for i in free_inputs]
    if spec.family_split_column is not None:
        # Mixed-technology boards: the designer keeps each family's chips
        # in its own area (Section 10.2), so receivers stay in the
        # driver's half of the board.
        left = driver.position.vx < spec.family_split_column
        candidates = [
            p
            for p in candidates
            if (p.position.vx < spec.family_split_column) == left
        ]
    if not candidates:
        return chosen
    local = [
        p
        for p in candidates
        if manhattan(p.position, driver.position) <= spec.local_radius
    ]
    for _ in range(count):
        pool = local if (local and rng.random() < spec.locality) else candidates
        pick = rng.choice(pool)
        chosen.append(pick)
        free_inputs.discard(pick.pin_id)
        candidates = [p for p in candidates if p.pin_id != pick.pin_id]
        local = [p for p in local if p.pin_id != pick.pin_id]
        if not candidates:
            break
    return chosen


def _family_for(
    rng: random.Random, driver: Pin, spec: NetlistSpec
) -> LogicFamily:
    """Logic family of a net, by fraction or by board half."""
    if spec.family_split_column is not None:
        if driver.position.vx < spec.family_split_column:
            return LogicFamily.ECL
        return LogicFamily.TTL
    if rng.random() < spec.ecl_fraction:
        return LogicFamily.ECL
    return LogicFamily.TTL


def bind_power_nets(board: Board, n_power_nets: int = 2) -> List[Net]:
    """Collect POWER pins into round-robin power nets (VCC, GND, ...)."""
    power_pins = [
        p for p in board.pins if p.role is PinRole.POWER and p.net_id == -1
    ]
    if not power_pins or n_power_nets < 1:
        return []
    groups: List[List[int]] = [[] for _ in range(n_power_nets)]
    for i, pin in enumerate(power_pins):
        groups[i % n_power_nets].append(pin.pin_id)
    names = ["vcc", "gnd", "vee", "vtt"]
    nets = []
    for i, group in enumerate(groups):
        if not group:
            continue
        nets.append(
            board.add_net(
                group,
                name=names[i] if i < len(names) else f"pwr{i}",
                kind=NetKind.POWER,
            )
        )
    return nets
