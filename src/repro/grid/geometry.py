"""Rectilinear geometry primitives: orientations and clipping boxes.

Every single-layer search in the paper is confined to a *box* ("lying
entirely within box", Section 7.1), and every signal layer has a preferred
*orientation* (Section 4): traces on a horizontal layer are presumed to be
predominantly horizontal, and the layer's channels run horizontally.
"""

from __future__ import annotations

import enum
from typing import Iterator, NamedTuple

from repro.grid.coords import GridPoint


class Orientation(enum.Enum):
    """Preferred trace direction of a signal layer (Section 4)."""

    HORIZONTAL = "horizontal"
    VERTICAL = "vertical"

    @property
    def other(self) -> "Orientation":
        """The orthogonal orientation."""
        if self is Orientation.HORIZONTAL:
            return Orientation.VERTICAL
        return Orientation.HORIZONTAL


class Box(NamedTuple):
    """Closed axis-aligned rectangle on the routing grid (inclusive bounds)."""

    x_lo: int
    y_lo: int
    x_hi: int
    y_hi: int

    @classmethod
    def bounding(cls, a: GridPoint, b: GridPoint) -> "Box":
        """Smallest box containing both points."""
        return cls(
            min(a.gx, b.gx), min(a.gy, b.gy), max(a.gx, b.gx), max(a.gy, b.gy)
        )

    @property
    def width(self) -> int:
        """Number of grid columns covered."""
        return self.x_hi - self.x_lo + 1

    @property
    def height(self) -> int:
        """Number of grid rows covered."""
        return self.y_hi - self.y_lo + 1

    @property
    def is_empty(self) -> bool:
        """True if the box contains no grid points."""
        return self.x_hi < self.x_lo or self.y_hi < self.y_lo

    def contains(self, point: GridPoint) -> bool:
        """True if ``point`` lies inside the box (bounds inclusive)."""
        return (
            self.x_lo <= point.gx <= self.x_hi
            and self.y_lo <= point.gy <= self.y_hi
        )

    def expanded(self, dx: int, dy: int) -> "Box":
        """Box grown by ``dx`` columns and ``dy`` rows on every side."""
        return Box(self.x_lo - dx, self.y_lo - dy, self.x_hi + dx, self.y_hi + dy)

    def clipped_to(self, other: "Box") -> "Box":
        """Intersection with another box (may be empty)."""
        return Box(
            max(self.x_lo, other.x_lo),
            max(self.y_lo, other.y_lo),
            min(self.x_hi, other.x_hi),
            min(self.y_hi, other.y_hi),
        )

    def iter_points(self) -> Iterator[GridPoint]:
        """Iterate every grid point in the box (row-major)."""
        for gy in range(self.y_lo, self.y_hi + 1):
            for gx in range(self.x_lo, self.x_hi + 1):
                yield GridPoint(gx, gy)
