"""Routing-grid and via-grid model (Sections 2 and 4, Figures 1 and 3).

The paper's major restriction for efficiency is a routing grid on which all
traces must lie, with a coarser via grid embedded in it: via sites sit at
regular intervals (every ``grid_per_via`` routing tracks) so that the pin
arrangements of through-hole parts land on via sites and two minimum-pitch
traces fit between adjacent via sites.
"""

from repro.grid.coords import (
    GridPoint,
    ViaPoint,
    grid_to_via,
    is_via_site,
    manhattan,
    via_to_grid,
)
from repro.grid.geometry import Box, Orientation
from repro.grid.routing_grid import RoutingGrid

__all__ = [
    "Box",
    "GridPoint",
    "Orientation",
    "RoutingGrid",
    "ViaPoint",
    "grid_to_via",
    "is_via_site",
    "manhattan",
    "via_to_grid",
]
