"""Coordinate types and conversions between the routing grid and via grid.

Two coordinate systems coexist (Figure 3 of the paper):

* the **routing grid** — the fine grid on which every trace must lie; points
  are ``GridPoint(gx, gy)``;
* the **via grid** — the coarse sub-grid of routing points at which vias and
  pins may be placed; points are ``ViaPoint(vx, vy)``.

The via grid is embedded in the routing grid at a fixed pitch
``GRID_PER_VIA`` (3 in the paper's process: two routing tracks between
adjacent via sites, Figure 3).  The pitch is a property of
:class:`repro.grid.routing_grid.RoutingGrid`; the module-level helpers here
take it as an argument so that other pitches can be modelled.
"""

from __future__ import annotations

from typing import NamedTuple

#: Default number of routing-grid steps between adjacent via sites.
#: Figure 3: 100-mil via pitch, two traces between vias, so three routing
#: steps from one via site to the next.
GRID_PER_VIA = 3


class GridPoint(NamedTuple):
    """A point on the fine routing grid."""

    gx: int
    gy: int

    def translated(self, dx: int, dy: int) -> "GridPoint":
        """Return the point offset by ``(dx, dy)`` routing-grid steps."""
        return GridPoint(self.gx + dx, self.gy + dy)


class ViaPoint(NamedTuple):
    """A point on the coarse via grid (a legal via or pin site)."""

    vx: int
    vy: int

    def translated(self, dx: int, dy: int) -> "ViaPoint":
        """Return the point offset by ``(dx, dy)`` via-grid steps."""
        return ViaPoint(self.vx + dx, self.vy + dy)


def via_to_grid(via: ViaPoint, grid_per_via: int = GRID_PER_VIA) -> GridPoint:
    """Map a via-grid point to its routing-grid coordinates."""
    return GridPoint(via.vx * grid_per_via, via.vy * grid_per_via)


def grid_to_via(point: GridPoint, grid_per_via: int = GRID_PER_VIA) -> ViaPoint:
    """Map a routing-grid point to via coordinates.

    The paper indexes the via map by "simple integer quotients of the grid
    coordinates"; this is that quotient.  The result identifies the via cell
    containing ``point``; it is only a via *site* if :func:`is_via_site`.
    """
    return ViaPoint(point.gx // grid_per_via, point.gy // grid_per_via)


def is_via_site(point: GridPoint, grid_per_via: int = GRID_PER_VIA) -> bool:
    """True if the routing-grid point coincides with a via-grid site."""
    return point.gx % grid_per_via == 0 and point.gy % grid_per_via == 0


def manhattan(a: tuple, b: tuple) -> int:
    """Manhattan distance between two points of the same coordinate system."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])
