"""The routing grid: board extent, via pitch, and physical dimensions.

Figure 1 of the paper gives the example manufacturing process this grid
models: 8-mil traces with 8-mil spacing, 60-mil via pads on a 100-mil via
pitch, two traces between adjacent via pads.  The grid is *irregularly*
spaced physically (42 mils via-to-track, 16 mils track-to-track), but
logically uniform: three routing steps per via pitch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.grid.coords import GRID_PER_VIA, GridPoint, ViaPoint
from repro.grid.geometry import Box


@dataclass(frozen=True)
class RoutingGrid:
    """Geometry of a board's routing grid.

    Parameters
    ----------
    via_nx, via_ny:
        Number of via-grid columns and rows.  The paper's via grid is set by
        the minimum pin pitch of the parts (100 mils for the Titan boards).
    grid_per_via:
        Routing-grid steps between adjacent via sites (3 in Figure 3).
    via_pitch_mils:
        Physical distance between via sites, for density metrics only.
    """

    via_nx: int
    via_ny: int
    grid_per_via: int = GRID_PER_VIA
    via_pitch_mils: float = 100.0

    def __post_init__(self) -> None:
        if self.via_nx < 2 or self.via_ny < 2:
            raise ValueError("grid needs at least 2x2 via sites")
        if self.grid_per_via < 1:
            raise ValueError("grid_per_via must be >= 1")

    @property
    def nx(self) -> int:
        """Routing-grid columns (via sites sit at both extremes)."""
        return (self.via_nx - 1) * self.grid_per_via + 1

    @property
    def ny(self) -> int:
        """Routing-grid rows."""
        return (self.via_ny - 1) * self.grid_per_via + 1

    @property
    def bounds(self) -> Box:
        """Box covering the whole routing grid."""
        return Box(0, 0, self.nx - 1, self.ny - 1)

    @property
    def width_inches(self) -> float:
        """Physical board width implied by the via pitch."""
        return (self.via_nx - 1) * self.via_pitch_mils / 1000.0

    @property
    def height_inches(self) -> float:
        """Physical board height implied by the via pitch."""
        return (self.via_ny - 1) * self.via_pitch_mils / 1000.0

    @property
    def area_sq_inches(self) -> float:
        """Physical board area in square inches."""
        return self.width_inches * self.height_inches

    def contains_grid(self, point: GridPoint) -> bool:
        """True if a routing-grid point lies on the board."""
        return 0 <= point.gx < self.nx and 0 <= point.gy < self.ny

    def contains_via(self, via: ViaPoint) -> bool:
        """True if a via-grid point lies on the board."""
        return 0 <= via.vx < self.via_nx and 0 <= via.vy < self.via_ny

    def via_to_grid(self, via: ViaPoint) -> GridPoint:
        """Routing-grid coordinates of a via site."""
        return GridPoint(via.vx * self.grid_per_via, via.vy * self.grid_per_via)

    def grid_to_via(self, point: GridPoint) -> ViaPoint:
        """Via-map cell containing a routing-grid point (integer quotient)."""
        return ViaPoint(point.gx // self.grid_per_via, point.gy // self.grid_per_via)

    def is_via_site(self, point: GridPoint) -> bool:
        """True if a routing-grid point coincides with a via site."""
        return (
            point.gx % self.grid_per_via == 0
            and point.gy % self.grid_per_via == 0
        )

    def iter_via_sites(self) -> Iterator[ViaPoint]:
        """All via sites on the board, row-major."""
        for vy in range(self.via_ny):
            for vx in range(self.via_nx):
                yield ViaPoint(vx, vy)

    def via_strip(self, via: ViaPoint, radius: int, axis: str) -> Box:
        """Grid box of the radius strip around a via (Figure 9).

        ``axis='x'`` returns the horizontal strip (rows within ``radius`` via
        units of the via, all columns) used on horizontal layers;
        ``axis='y'`` the vertical strip for vertical layers.
        """
        g = self.via_to_grid(via)
        r = radius * self.grid_per_via
        if axis == "x":
            box = Box(0, g.gy - r, self.nx - 1, g.gy + r)
        elif axis == "y":
            box = Box(g.gx - r, 0, g.gx + r, self.ny - 1)
        else:
            raise ValueError(f"axis must be 'x' or 'y', got {axis!r}")
        return box.clipped_to(self.bounds)
