"""Baseline routers the paper improves on.

:mod:`repro.baseline.lee_grid` is classic Lee maze routing over raw
routing-grid points (pre-Modification-1): neighbors at distance 1, single
breadth-first wavefront.  The paper: "This choice leads to very slow
searches, since many individual grid points must be scanned to advance a
small distance across the board surface."
"""

from repro.baseline.lee_grid import GridLeeRouter, GridLeeStats

__all__ = ["GridLeeRouter", "GridLeeStats"]
