"""Classic grid-point Lee maze router (the E5 comparison baseline).

This is Lee's algorithm as described at the top of Section 8.2, *before*
the paper's modifications: the neighbors of a point are the four adjacent
routing-grid points on the same layer (plus a layer change at a free via
site), a single wavefront spreads breadth-first from one end, and the
first path found has minimum grid length.

It shares the channel workspace with grr so routed boards remain coherent,
but its search cost is proportional to the *area* swept rather than to the
number of free-space segments — the contrast measured by
``benchmarks/bench_lee_baseline.py``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.board.nets import Connection
from repro.channels.workspace import RoutingWorkspace
from repro.grid.coords import GridPoint
from repro.grid.geometry import Orientation

#: Search state: (layer index, gx, gy).
_State = Tuple[int, int, int]


@dataclass
class GridLeeStats:
    """Cost counters for one search."""

    cells_marked: int = 0
    routed: bool = False
    path_cells: int = 0


class GridLeeRouter:
    """Single-front, unit-step Lee router on the routing grid."""

    def __init__(
        self, workspace: RoutingWorkspace, max_cells: int = 2_000_000
    ) -> None:
        self.workspace = workspace
        self.max_cells = max_cells

    def route(
        self, conn: Connection, passable: Optional[FrozenSet[int]] = None
    ) -> GridLeeStats:
        """Route one connection by breadth-first wavefront expansion."""
        ws = self.workspace
        if passable is None:
            passable = frozenset(
                (conn.conn_id, -(conn.pin_a + 1), -(conn.pin_b + 1))
            )
        grid = ws.grid
        a = grid.via_to_grid(conn.a)
        b = grid.via_to_grid(conn.b)
        stats = GridLeeStats()
        # A pin connects to all layers, so the start states are a's cell on
        # every layer; likewise any layer's arrival at b terminates.
        parents: Dict[_State, Optional[_State]] = {}
        frontier: deque = deque()
        for layer_index in range(ws.n_layers):
            state = (layer_index, a.gx, a.gy)
            parents[state] = None
            frontier.append(state)
        goal: Optional[_State] = None
        while frontier and goal is None:
            state = frontier.popleft()
            for neighbor in self._neighbors(state, passable):
                if neighbor in parents:
                    continue
                parents[neighbor] = state
                stats.cells_marked += 1
                if stats.cells_marked > self.max_cells:
                    return stats
                if neighbor[1] == b.gx and neighbor[2] == b.gy:
                    goal = neighbor
                    break
                frontier.append(neighbor)
            if goal is not None:
                break
        if goal is None:
            return stats
        path: List[_State] = []
        node: Optional[_State] = goal
        while node is not None:
            path.append(node)
            node = parents[node]
        path.reverse()
        stats.path_cells = len(path)
        stats.routed = self._install(conn, path, passable)
        return stats

    # ------------------------------------------------------------------

    def _neighbors(self, state: _State, passable: FrozenSet[int]):
        """Unit steps on the same layer, plus layer changes at via sites."""
        ws = self.workspace
        grid = ws.grid
        layer_index, gx, gy = state
        layer = ws.layers[layer_index]
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = gx + dx, gy + dy
            point = GridPoint(nx, ny)
            if not grid.contains_grid(point):
                continue
            if layer.is_point_free(point, passable):
                yield (layer_index, nx, ny)
        point = GridPoint(gx, gy)
        if grid.is_via_site(point):
            via = grid.grid_to_via(point)
            if ws.via_map.is_available(via, passable):
                for other in range(ws.n_layers):
                    if other != layer_index:
                        if ws.layers[other].is_point_free(point, passable):
                            yield (other, gx, gy)

    def _install(
        self, conn: Connection, path: List[_State], passable: FrozenSet[int]
    ) -> bool:
        """Convert a grid-state path into channel pieces and vias."""
        ws = self.workspace
        grid = ws.grid
        builder = ws.route_builder(conn.conn_id, passable)
        # Split the path at layer changes; each run becomes one link.
        runs: List[List[_State]] = [[path[0]]]
        for state in path[1:]:
            if state[0] != runs[-1][-1][0]:
                # Layer change happens in place: the new run starts at the
                # same cell on the new layer.
                runs.append([state])
            else:
                runs[-1].append(state)
        try:
            for i, run in enumerate(runs):
                layer_index = run[0][0]
                layer = ws.layers[layer_index]
                pieces = _run_to_pieces(layer.orientation, run)
                a_point = GridPoint(run[0][1], run[0][2])
                b_point = GridPoint(run[-1][1], run[-1][2])
                builder.add_link(layer_index, a_point, b_point, pieces)
                if i < len(runs) - 1:
                    # Layer change: drill at the junction (a via site).
                    junction = GridPoint(run[-1][1], run[-1][2])
                    via = grid.grid_to_via(junction)
                    if ws.via_map.drilled_owner(via) is None:
                        builder.drill(via)
        except Exception:
            builder.abort()
            return False
        builder.commit()
        return True


def _run_to_pieces(
    orientation: Orientation, run: List[_State]
) -> List[Tuple[int, int, int]]:
    """Merge a same-layer cell run into channel pieces."""
    def cc(state: _State) -> Tuple[int, int]:
        _, gx, gy = state
        if orientation is Orientation.HORIZONTAL:
            return gy, gx
        return gx, gy

    pieces: List[Tuple[int, int, int]] = []
    c0, x0 = cc(run[0])
    lo = hi = x0
    current = c0
    for state in run[1:]:
        c, x = cc(state)
        if c == current:
            lo, hi = min(lo, x), max(hi, x)
        else:
            pieces.append((current, lo, hi))
            current, lo, hi = c, x, x
    pieces.append((current, lo, hi))
    return pieces
