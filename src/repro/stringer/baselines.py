"""Stringing baselines, primarily the random ordering of the Section 3
experiment: "In one, the stringing was chosen by the method described
above.  In the other, it was random. ... there was [a] factor of 25
difference in the run times."
"""

from __future__ import annotations

import random
from typing import List, Set

from repro.board.board import Board
from repro.board.nets import Connection
from repro.stringer.stringer import Stringer, StringingError


def random_stringing(board: Board, seed: int = 0) -> List[Connection]:
    """Chain every signal net in a random pin order (with ECL termination).

    The chains connect exactly the same nets as :class:`Stringer` — only
    the pin order (and terminator choice) is randomised, so the routing
    problem is electrically identical but much worse conditioned.
    """
    rng = random.Random(seed)
    connections: List[Connection] = []
    reserved: Set[int] = set()
    for net in board.signal_nets:
        pins = [board.pins[i] for i in net.pin_ids]
        if len(pins) < 2:
            continue
        chain = list(pins)
        rng.shuffle(chain)
        if net.family.needs_termination:
            candidates = [
                p
                for p in board.free_terminator_pins()
                if p.pin_id not in reserved
            ]
            if not candidates:
                raise StringingError(
                    f"no free terminating resistor for net {net.name}"
                )
            terminator = rng.choice(candidates)
            reserved.add(terminator.pin_id)
            terminator.net_id = net.net_id
            net.pin_ids.append(terminator.pin_id)
            chain.append(terminator)
        connections.extend(
            Stringer.connections_for_chain(
                net, chain, start_id=len(connections)
            )
        )
    return connections
