"""The stringer: nearest-neighbor chaining with ECL termination.

Stringing happens before routing and fixes both the pin order of each chain
and, for ECL nets, which terminating resistor ends it.  The router input is
then a flat list of independent pin-to-pin connections (Figure 20 shows one
drawn as lines).

Net ordering is known to matter enormously — the paper reports a factor of
25 in CPU time between this stringing and a random one on the same problem
(reproduced in ``benchmarks/bench_stringing.py``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.board.board import Board
from repro.board.nets import Connection, Net
from repro.board.parts import Pin, PinRole
from repro.grid.coords import manhattan


class StringingError(ValueError):
    """A net cannot be strung (e.g. no free terminator for an ECL net)."""


def chain_length(pins: Sequence[Pin]) -> int:
    """Total Manhattan length of a chain, in via-grid units."""
    return sum(
        manhattan(pins[i].position, pins[i + 1].position)
        for i in range(len(pins) - 1)
    )


class Stringer:
    """Prepares router input from a board's signal nets."""

    def __init__(self, board: Board) -> None:
        self.board = board

    # ------------------------------------------------------------------
    # per-net chaining
    # ------------------------------------------------------------------

    def _greedy_chain(
        self, start: Pin, outputs: List[Pin], inputs: List[Pin]
    ) -> List[Pin]:
        """Nearest-neighbor chain from ``start``; outputs before inputs.

        "Any output may start the chain, but all output pins must precede
        the input pins."
        """
        chain = [start]
        remaining_outputs = [p for p in outputs if p.pin_id != start.pin_id]
        remaining_inputs = [p for p in inputs if p.pin_id != start.pin_id]
        for pool in (remaining_outputs, remaining_inputs):
            while pool:
                tail = chain[-1].position
                nearest = min(
                    pool, key=lambda p: (manhattan(tail, p.position), p.pin_id)
                )
                pool.remove(nearest)
                chain.append(nearest)
        return chain

    def _nearest_free_terminator(
        self, position, reserved: Set[int]
    ) -> Optional[Pin]:
        """Nearest unclaimed terminating-resistor pin."""
        candidates = [
            p
            for p in self.board.free_terminator_pins()
            if p.pin_id not in reserved
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda p: (manhattan(position, p.position), p.pin_id),
        )

    def string_net(
        self, net: Net, reserved_terminators: Optional[Set[int]] = None
    ) -> List[Pin]:
        """Best chain for one net (including its terminator for ECL).

        Tries every legal starting pin and keeps the shortest overall chain.
        For ECL nets the legal starts are the output pins (all outputs must
        precede inputs); for TTL any pin may start.
        """
        reserved = (
            reserved_terminators if reserved_terminators is not None else set()
        )
        pins = [self.board.pins[i] for i in net.pin_ids]
        if len(pins) < 2:
            return pins
        outputs = [p for p in pins if p.role is PinRole.OUTPUT]
        inputs = [p for p in pins if p.role is not PinRole.OUTPUT]
        if net.family.order_matters and outputs:
            starts = outputs
        else:
            starts = pins
        best_chain: Optional[List[Pin]] = None
        best_length = None
        for start in starts:
            chain = self._greedy_chain(start, outputs, inputs)
            if net.family.needs_termination:
                terminator = self._nearest_free_terminator(
                    chain[-1].position, reserved
                )
                if terminator is None:
                    raise StringingError(
                        f"no free terminating resistor for net {net.name}"
                    )
                chain = chain + [terminator]
            length = chain_length(chain)
            if best_length is None or length < best_length:
                best_length = length
                best_chain = chain
        assert best_chain is not None
        if net.family.needs_termination:
            terminator = best_chain[-1]
            reserved.add(terminator.pin_id)
            terminator.net_id = net.net_id
            net.pin_ids.append(terminator.pin_id)
        return best_chain

    # ------------------------------------------------------------------
    # whole-board stringing
    # ------------------------------------------------------------------

    def string_all(self) -> List[Connection]:
        """String every signal net; returns the flat connection list."""
        connections: List[Connection] = []
        reserved: Set[int] = set()
        for net in self.board.signal_nets:
            chain = self.string_net(net, reserved)
            connections.extend(
                self.connections_for_chain(net, chain, start_id=len(connections))
            )
        return connections

    @staticmethod
    def connections_for_chain(
        net: Net, chain: Sequence[Pin], start_id: int = 0
    ) -> List[Connection]:
        """Pin-to-pin connections for consecutive chain members."""
        connections = []
        for i in range(len(chain) - 1):
            a, b = chain[i], chain[i + 1]
            connections.append(
                Connection(
                    conn_id=start_id + i,
                    net_id=net.net_id,
                    pin_a=a.pin_id,
                    pin_b=b.pin_id,
                    a=a.position,
                    b=b.position,
                    family=net.family,
                )
            )
        return connections
