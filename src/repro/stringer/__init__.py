"""Stringing (Section 3): turn multi-pin nets into pin-to-pin chains.

"Starting at the output pin for the net, the next nearest input pin is
repeatedly added to the chain, until the whole net has been connected.
Then for ECL nets, the nearest free terminating resistor is added to the
end of the net. ... the stringing is repeated for each legal starting pin.
The shortest overall path is then chosen."
"""

from repro.stringer.baselines import random_stringing
from repro.stringer.stringer import Stringer, StringingError

__all__ = ["Stringer", "StringingError", "random_stringing"]
