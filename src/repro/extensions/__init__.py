"""Extensions needed to build real high-speed boards (Section 10 + Appendix):
length tuning, ECL/TTL tesselation separation, and power-plane generation.
"""

from repro.extensions.dispersion import (
    DispersedPad,
    DispersionError,
    PadSpec,
    disperse_pads,
)
from repro.extensions.length_tuning import (
    DelayModel,
    TuningResult,
    route_delay_ns,
    tune_connection,
    tune_with_cost_mod,
)
from repro.extensions.postprocess import (
    TracePolyline,
    chamfer,
    link_polyline,
    postprocess_board,
    postprocess_connection,
)
from repro.extensions.power_plane import (
    PlaneFeature,
    PowerPlanePattern,
    generate_power_plane,
)
from repro.extensions.tesselation import (
    MixedRoutingResult,
    Tesselation,
    Tile,
    route_mixed,
    split_tesselation,
)

__all__ = [
    "DelayModel",
    "DispersedPad",
    "DispersionError",
    "PadSpec",
    "TracePolyline",
    "chamfer",
    "disperse_pads",
    "link_polyline",
    "postprocess_board",
    "postprocess_connection",
    "MixedRoutingResult",
    "PlaneFeature",
    "PowerPlanePattern",
    "Tesselation",
    "Tile",
    "TuningResult",
    "generate_power_plane",
    "route_delay_ns",
    "route_mixed",
    "split_tesselation",
    "tune_connection",
    "tune_with_cost_mod",
]
