"""Dispersion patterns for surface-mount and off-grid pins (Section 11).

"Surface mount devices have been used with grr, though in a somewhat
clumsy way.  A hand-designed dispersion pattern was generated to connect
the pads to a regular array of vias by traces lying only on the top
surface.  The router was told to consider the vias as the end points of
the connections."  The paper also suggests the fix for off-grid pins:
"generalizing Trace to connect arbitrary grid points rather than only via
points" — which our :func:`repro.core.single_layer.trace` already does.

This module automates the hand-designed pattern: each pad (an arbitrary
routing-grid point on the top layer) is assigned the nearest usable via
site and connected to it by a top-layer trace.  The via becomes a regular
on-grid pin that the router treats like any through-hole pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.board.board import Board
from repro.board.parts import Pin, PinRole, sip_package
from repro.channels.workspace import RoutingWorkspace
from repro.core.single_layer import trace
from repro.grid.coords import GridPoint, ViaPoint
from repro.grid.geometry import Box


class DispersionError(ValueError):
    """A pad could not be dispersed to any nearby via site."""


@dataclass(frozen=True)
class PadSpec:
    """One surface pad: an arbitrary top-layer routing-grid point."""

    position: GridPoint
    role: PinRole = PinRole.INPUT


@dataclass
class DispersedPad:
    """The result of dispersing one pad."""

    pad: PadSpec
    pin: Pin  # the on-grid pin the router will use
    via: ViaPoint
    trace_cells: int  # length of the top-layer dispersion trace
    #: Exact installed occupancy of the dispersion trace, as
    #: ``(layer_index, channel_index, lo, hi)`` pieces — what an exporter
    #: (``repro.io.kicad``) needs to draw the pad-to-via link as copper.
    segments: List[tuple] = field(default_factory=list)


def _spiral_vias(
    board: Board, center: GridPoint, max_radius: int
) -> List[ViaPoint]:
    """Via sites near a grid point, nearest Chebyshev ring first."""
    base = board.grid.grid_to_via(center)
    found: List[ViaPoint] = []
    for ring in range(max_radius + 1):
        ring_sites = []
        for dx in range(-ring, ring + 1):
            for dy in range(-ring, ring + 1):
                if max(abs(dx), abs(dy)) != ring:
                    continue
                via = ViaPoint(base.vx + dx, base.vy + dy)
                if board.grid.contains_via(via):
                    ring_sites.append(via)
        g = board.grid
        ring_sites.sort(
            key=lambda v: abs(g.via_to_grid(v).gx - center.gx)
            + abs(g.via_to_grid(v).gy - center.gy)
        )
        found.extend(ring_sites)
    return found


def disperse_pads(
    board: Board,
    workspace: RoutingWorkspace,
    pads: Sequence[PadSpec],
    part_name: str = "smd",
    max_radius: int = 3,
    top_layer: int = 0,
    avoid: Sequence[GridPoint] = (),
) -> List[DispersedPad]:
    """Connect surface pads to nearby via sites with top-layer traces.

    For each pad: pick the nearest free via site reachable by a top-layer
    trace, place a single-pin part there (the router's view of the pad),
    drill it, and install the dispersion trace under the pin's immovable
    owner.  A dispersion trace never crosses another not-yet-dispersed
    pad — neither a later entry of ``pads`` nor any point in ``avoid``
    (pads a caller will disperse in a separate call) — because a trace
    over a pending pad's cell would leave that pad unplaceable; this is
    what makes fine-pitch rows (several pads per via pitch) work.
    Raises :class:`DispersionError` if any pad cannot be placed — "an
    irregular via pattern ... would almost certainly create blockages"
    is exactly what the nearest-first search avoids.
    """
    results: List[DispersedPad] = []
    layer = workspace.layers[top_layer]
    pending = {(p.gx, p.gy) for p in avoid}
    pending.update((p.position.gx, p.position.gy) for p in pads)
    for pad in pads:
        if not board.grid.contains_grid(pad.position):
            raise DispersionError(f"pad {pad.position} is off the board")
        pending.discard((pad.position.gx, pad.position.gy))
        placed = _disperse_one(
            board, workspace, layer, top_layer, pad, part_name,
            max_radius, pending,
        )
        if placed is None:
            raise DispersionError(
                f"no usable via site within {max_radius} of {pad.position}"
            )
        results.append(placed)
    return results


def _covers_pending(layer, pieces, pending) -> bool:
    """True if any cell of a candidate trace sits on a pending pad."""
    if not pending:
        return False
    for channel_index, lo, hi in pieces:
        for coord in range(lo, hi + 1):
            point = layer.cc_point(channel_index, coord)
            if (point.gx, point.gy) in pending:
                return True
    return False


def _disperse_one(
    board: Board,
    workspace: RoutingWorkspace,
    layer,
    top_layer: int,
    pad: PadSpec,
    part_name: str,
    max_radius: int,
    pending=frozenset(),
) -> Optional[DispersedPad]:
    package = sip_package(1)
    r = max_radius * board.grid.grid_per_via
    box = Box(
        pad.position.gx - r,
        pad.position.gy - r,
        pad.position.gx + r,
        pad.position.gy + r,
    ).clipped_to(board.grid.bounds)
    for via in _spiral_vias(board, pad.position, max_radius):
        if not board.part_can_fit(package, via):
            continue
        if not workspace.via_map.is_available(via):
            continue
        via_point = board.grid.via_to_grid(via)
        pieces = trace(layer, pad.position, via_point, box)
        if pieces is None or _covers_pending(layer, pieces, pending):
            continue
        part = board.add_part(
            package,
            via,
            name=f"{part_name}_pad{len(board.pins)}",
            roles=[pad.role],
        )
        pin = part.pins[0]
        # The workspace installed pins at construction; this one arrives
        # later, so drill it explicitly, then lay the dispersion trace
        # under the same immovable owner.
        workspace.drill_via(via, pin.owner_token)
        cells = 0
        segments: List[tuple] = []
        for channel_index, lo, hi in pieces:
            installed = workspace.add_segment(
                top_layer,
                channel_index,
                lo,
                hi,
                pin.owner_token,
                passable=frozenset((pin.owner_token,)),
            )
            cells += sum(seg[3] - seg[2] + 1 for seg in installed)
            segments.extend(installed)
        return DispersedPad(
            pad=pad, pin=pin, via=via, trace_cells=cells, segments=segments
        )
    return None
