"""Power-plane pattern generation (Appendix, Figure 22).

"The etching pattern for power layers is simple.  The layer is left as
solid copper except at pin and via locations that are not to be connected
to the power net.  At these locations, a small disk is etched away so that
no electrical contact will be made during drilling and plating."  Power
pins of the net get *thermal reliefs* — partial copper removal that keeps
soldering heat from sinking into the plane — and mounting holes get large
clearance circles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.board.board import Board
from repro.channels.workspace import RoutingWorkspace
from repro.grid.coords import ViaPoint


class FeatureKind(enum.Enum):
    """What is etched (or kept) at one plane location."""

    #: Disk etched away around a hole that must NOT contact this plane.
    CLEARANCE = "clearance"
    #: Spoked relief around a pin that DOES connect to this plane.
    THERMAL_RELIEF = "thermal_relief"
    #: Large etched circle around a board mounting screw.
    MOUNTING_HOLE = "mounting_hole"


@dataclass(frozen=True)
class PlaneFeature:
    """One etch feature of a power plane."""

    kind: FeatureKind
    position: ViaPoint
    diameter_mils: float


@dataclass
class PowerPlanePattern:
    """The full etch pattern of one power layer (solid copper elsewhere)."""

    net_id: int
    net_name: str
    features: List[PlaneFeature] = field(default_factory=list)

    def count(self, kind: FeatureKind) -> int:
        """Number of features of one kind."""
        return sum(1 for f in self.features if f.kind is kind)


def default_mounting_holes(board: Board, inset: int = 1) -> List[ViaPoint]:
    """Mounting screws at the four board corners."""
    nx, ny = board.grid.via_nx, board.grid.via_ny
    return [
        ViaPoint(inset, inset),
        ViaPoint(nx - 1 - inset, inset),
        ViaPoint(inset, ny - 1 - inset),
        ViaPoint(nx - 1 - inset, ny - 1 - inset),
    ]


def generate_power_plane(
    board: Board,
    workspace: RoutingWorkspace,
    net_id: int,
    mounting_holes: Optional[Sequence[ViaPoint]] = None,
) -> PowerPlanePattern:
    """Generate a plane's etch pattern after routing.

    "The generation of power layer patterns is straightforward once the
    complete pattern of vias is known": every drilled hole (pin or signal
    via) that is not a pin of this power net gets a clearance disk; the
    net's own pins get thermal reliefs.
    """
    net = board.nets[net_id]
    rules = board.rules
    pattern = PowerPlanePattern(net_id=net_id, net_name=net.name)
    member_pins = set()
    for pin_id in net.pin_ids:
        pin = board.pins[pin_id]
        member_pins.add(pin.position)
    if mounting_holes is None:
        mounting_holes = default_mounting_holes(board)
    hole_positions = set(mounting_holes)
    for via, _owner in sorted(workspace.via_map.drilled_sites().items()):
        if via in hole_positions:
            continue
        if via in member_pins:
            pattern.features.append(
                PlaneFeature(
                    FeatureKind.THERMAL_RELIEF,
                    via,
                    rules.via_pad_diameter,
                )
            )
        else:
            pattern.features.append(
                PlaneFeature(
                    FeatureKind.CLEARANCE,
                    via,
                    rules.power_clearance_diameter,
                )
            )
    for hole in mounting_holes:
        pattern.features.append(
            PlaneFeature(
                FeatureKind.MOUNTING_HOLE,
                hole,
                rules.via_pitch * 2.0,
            )
        )
    return pattern
