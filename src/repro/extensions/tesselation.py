"""ECL/TTL separation by layer tesselation (Section 10.2).

A 5-volt TTL transition next to a sub-volt ECL signal induces enough noise
to flip logic values, so traces of the two families must be kept apart.
The method of J. Prisner and R. Kao: each signal layer is tesselated into
tiles reserved exclusively for ECL or TTL wires; the board is routed as two
superimposed problems.  "Before starting the ECL pass, grr fills all empty
space in TTL tiles, making them unavailable for traces or vias. ... After
all ECL connections are made, the TTL 'filler' is removed", and vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.board.board import Board
from repro.board.nets import Connection
from repro.board.technology import LogicFamily
from repro.channels.workspace import FillRecord, RoutingWorkspace
from repro.core.result import RoutingResult
from repro.core.router import GreedyRouter, RouterConfig
from repro.grid.geometry import Box


@dataclass(frozen=True)
class Tile:
    """One rectangle of one signal layer reserved for a logic family."""

    layer_index: int
    box: Box  # routing-grid coordinates
    family: LogicFamily


@dataclass
class Tesselation:
    """A complete tiling of the signal layers by logic family."""

    tiles: List[Tile] = field(default_factory=list)

    def tiles_for(self, family: LogicFamily) -> List[Tile]:
        """Tiles reserved for the given family."""
        return [t for t in self.tiles if t.family is family]

    def tiles_against(self, family: LogicFamily) -> List[Tile]:
        """Tiles reserved for the *other* family (to be filled)."""
        return [t for t in self.tiles if t.family is not family]


def split_tesselation(
    board: Board, split_via_column: int
) -> Tesselation:
    """Simple vertical split: ECL left of the column, TTL right of it.

    "Usually the chips of one or other technology can be arranged in a
    compact area on the board.  The signal layers under this area are
    reserved for that technology."
    """
    grid = board.grid
    split_gx = split_via_column * grid.grid_per_via
    tiles: List[Tile] = []
    for index in range(board.stack.n_signal):
        tiles.append(
            Tile(
                layer_index=index,
                box=Box(0, 0, split_gx - 1, grid.ny - 1),
                family=LogicFamily.ECL,
            )
        )
        tiles.append(
            Tile(
                layer_index=index,
                box=Box(split_gx, 0, grid.nx - 1, grid.ny - 1),
                family=LogicFamily.TTL,
            )
        )
    return Tesselation(tiles)


@dataclass
class MixedRoutingResult:
    """Results of the two superimposed routing passes."""

    by_family: Dict[LogicFamily, RoutingResult] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True if both passes routed everything."""
        return all(r.complete for r in self.by_family.values())

    @property
    def routed_count(self) -> int:
        """Total connections routed across both passes."""
        return sum(r.routed_count for r in self.by_family.values())

    @property
    def total_count(self) -> int:
        """Total connections across both passes."""
        return sum(r.total_count for r in self.by_family.values())

    def summary(self) -> Dict[str, object]:
        """Flat summary over both families."""
        return {
            "routed": self.routed_count,
            "connections": self.total_count,
            "complete": self.complete,
            "ecl": self.by_family[LogicFamily.ECL].summary()
            if LogicFamily.ECL in self.by_family
            else None,
            "ttl": self.by_family[LogicFamily.TTL].summary()
            if LogicFamily.TTL in self.by_family
            else None,
        }


def _fill_tiles(
    workspace: RoutingWorkspace, tiles: Sequence[Tile]
) -> List[FillRecord]:
    """Block all free space in the given tiles."""
    return [
        workspace.fill_free_space(tile.layer_index, tile.box)
        for tile in tiles
    ]


def _unfill_all(
    workspace: RoutingWorkspace, records: List[FillRecord]
) -> None:
    for record in records:
        workspace.unfill(record)


def route_mixed(
    board: Board,
    connections: Sequence[Connection],
    tesselation: Tesselation,
    config: Optional[RouterConfig] = None,
    workspace: Optional[RoutingWorkspace] = None,
) -> MixedRoutingResult:
    """Route a mixed ECL/TTL board as two superimposed problems.

    ECL first (it is the majority family on the Titan boards), then TTL;
    each pass sees the other family's tiles as solid filler.
    """
    workspace = workspace or RoutingWorkspace(board)
    result = MixedRoutingResult()
    for family in (LogicFamily.ECL, LogicFamily.TTL):
        batch = [c for c in connections if c.family is family]
        if not batch:
            continue
        fills = _fill_tiles(workspace, tesselation.tiles_against(family))
        try:
            router = GreedyRouter(board, config, workspace=workspace)
            result.by_family[family] = router.route(batch)
        finally:
            _unfill_all(workspace, fills)
    return result
