"""Length tuning (Section 10.1): making connections *longer* on purpose.

ECL nets are transmission lines, so trace length controls delay; matching
root-to-leaf delays in a clock tree requires stretching the short branches.
"In common epoxy/glass printed circuit boards, signals propagate at around
six inches per nanosecond", about 10% faster on the two outer layers.

Two implementations, as in the paper:

* :func:`tune_connection` — the shipping method: start from the standard
  route and repeatedly add two-via detours between consecutive path nodes
  (Figure 17) until the target delay is reached.
* :func:`tune_with_cost_mod` — the *failed first attempt*: a Lee cost
  function aimed at the target delay.  Kept as the E8 ablation; it
  generates many plausible-but-wrong candidate paths because the per-layer
  speed variation makes the estimate inaccurate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.board.board import Board
from repro.board.nets import Connection
from repro.channels.workspace import RouteRecord, RoutingWorkspace
from repro.core.lee import lee_route
from repro.core.optimal import find_zero_via
from repro.grid.coords import ViaPoint, manhattan


@dataclass(frozen=True)
class DelayModel:
    """Per-layer propagation speeds derived from the board's tech rules."""

    inches_per_cell: float
    layer_speeds: Tuple[float, ...]  # inches per nanosecond per signal layer

    @classmethod
    def for_board(cls, board: Board) -> "DelayModel":
        """Build the model from the board's rules and layer stack."""
        rules = board.rules
        inches_per_cell = (
            board.grid.via_pitch_mils / board.grid.grid_per_via / 1000.0
        )
        speeds = tuple(
            rules.layer_speed(layer.is_outer)
            for layer in board.stack.signal_layers
        )
        return cls(inches_per_cell=inches_per_cell, layer_speeds=speeds)

    def link_delay_ns(self, layer_index: int, cells: int) -> float:
        """Delay of ``cells`` grid units of trace on one layer."""
        inches = cells * self.inches_per_cell
        return inches / self.layer_speeds[layer_index]

    def min_delay_ns(self, a: ViaPoint, b: ViaPoint, grid_per_via: int) -> float:
        """Lower bound: Manhattan length on the fastest layer."""
        cells = manhattan(a, b) * grid_per_via
        return cells * self.inches_per_cell / max(self.layer_speeds)


def route_delay_ns(board: Board, record: RouteRecord) -> float:
    """Total propagation delay of a routed connection."""
    model = DelayModel.for_board(board)
    return sum(
        model.link_delay_ns(link.layer_index, link.wire_length)
        for link in record.links
    )


@dataclass
class TuningResult:
    """Outcome of tuning one connection to a target delay."""

    success: bool
    achieved_ns: float
    target_ns: float
    detours_added: int = 0
    candidates_tried: int = 0
    reason: str = ""


#: Detour offsets (via units) tried around each path node, nearest first —
#: "the stretching algorithm attempts to add a two-via detour" one via away.
_DETOUR_OFFSETS = ((0, 1), (0, -1), (1, 0), (-1, 0), (0, 2), (0, -2), (2, 0), (-2, 0))


def _detour_candidates(
    u: ViaPoint, v: ViaPoint, max_candidates: int = 48
) -> List[Tuple[ViaPoint, ViaPoint]]:
    """Two-via detours between consecutive path nodes (Figure 17).

    For an axis-aligned link, detours bump sideways anywhere along the
    span — candidates ordered by bump depth, then by distance from the
    link midpoint.  Skewed links fall back to whole-link parallel shifts.
    """
    candidates: List[Tuple[int, int, ViaPoint, ViaPoint]] = []
    if u.vy == v.vy and u.vx != v.vx:
        lo, hi = sorted((u.vx, v.vx))
        mid = (lo + hi) // 2
        for depth in (1, -1, 2, -2):
            for s in range(lo, hi):
                w1 = ViaPoint(s, u.vy + depth)
                w2 = ViaPoint(s + 1, u.vy + depth)
                candidates.append((abs(depth), abs(s - mid), w1, w2))
    elif u.vx == v.vx and u.vy != v.vy:
        lo, hi = sorted((u.vy, v.vy))
        mid = (lo + hi) // 2
        for depth in (1, -1, 2, -2):
            for s in range(lo, hi):
                w1 = ViaPoint(u.vx + depth, s)
                w2 = ViaPoint(u.vx + depth, s + 1)
                candidates.append((abs(depth), abs(s - mid), w1, w2))
    else:
        for dx, dy in _DETOUR_OFFSETS:
            w1 = ViaPoint(u.vx + dx, u.vy + dy)
            w2 = ViaPoint(v.vx + dx, v.vy + dy)
            candidates.append((abs(dx) + abs(dy), 0, w1, w2))
    candidates.sort(key=lambda item: (item[0], item[1]))
    return [(w1, w2) for _, _, w1, w2 in candidates[:max_candidates]]


def _chain_nodes(conn: Connection, record: RouteRecord, grid) -> List[ViaPoint]:
    """Via-point chain of a route: endpoints plus intermediate vias in order."""
    nodes = [conn.a]
    for link in record.links[:-1]:
        nodes.append(grid.grid_to_via(link.b))
    nodes.append(conn.b)
    return nodes


def _rebuild_chain(
    workspace: RoutingWorkspace,
    conn: Connection,
    nodes: List[ViaPoint],
    radius: int,
    passable: FrozenSet[int],
) -> Optional[RouteRecord]:
    """Install a route following a via chain with direct traces per hop."""
    builder = workspace.route_builder(conn.conn_id, passable)
    grid = workspace.grid
    for i in range(len(nodes) - 1):
        u, v = nodes[i], nodes[i + 1]
        found = find_zero_via(workspace, u, v, radius, passable)
        if found is None:
            builder.abort()
            return None
        layer_index, pieces = found
        builder.add_link(
            layer_index, grid.via_to_grid(u), grid.via_to_grid(v), pieces
        )
        if i < len(nodes) - 2:
            drilled = workspace.via_map.drilled_owner(v)
            if drilled is None:
                builder.drill(v)
            elif drilled != conn.conn_id:
                builder.abort()
                return None
    return builder.commit()


def tune_connection(
    workspace: RoutingWorkspace,
    board: Board,
    conn: Connection,
    target_ns: float,
    radius: int = 1,
    tolerance_ns: float = 0.05,
    max_detours: int = 40,
) -> TuningResult:
    """Stretch a routed connection to the target delay by adding detours.

    The connection must already be routed.  The target "must of course be
    greater than the propagation time on the minimum-length path on the
    fastest layer".  Each round inserts a two-via detour between some pair
    of consecutive path nodes; rounds repeat using the newly added vias
    until the delay is within tolerance or no detour helps.
    """
    if not workspace.is_routed(conn.conn_id):
        raise ValueError(f"connection {conn.conn_id} is not routed")
    passable = frozenset(
        (conn.conn_id, -(conn.pin_a + 1), -(conn.pin_b + 1))
    )
    model = DelayModel.for_board(board)
    grid = workspace.grid
    record = workspace.records[conn.conn_id]
    delay = route_delay_ns(board, record)
    if delay > target_ns + tolerance_ns:
        return TuningResult(
            False, delay, target_ns, reason="already slower than target"
        )
    detours = 0
    tried = 0
    while delay < target_ns - tolerance_ns and detours < max_detours:
        nodes = _chain_nodes(conn, record, grid)
        improved = False
        for i in range(len(nodes) - 1):
            u, v = nodes[i], nodes[i + 1]
            for w1, w2 in _detour_candidates(u, v):
                tried += 1
                candidate = nodes[: i + 1] + [w1, w2] + nodes[i + 1 :]
                if not _detour_usable(workspace, conn, (w1, w2), passable):
                    continue
                old_record = workspace.remove_connection(conn.conn_id)
                new_record = _rebuild_chain(
                    workspace, conn, candidate, radius, passable
                )
                if new_record is None:
                    if not workspace.restore_record(old_record):
                        return TuningResult(
                            False,
                            delay,
                            target_ns,
                            detours,
                            tried,
                            reason="restore failed",
                        )
                    continue
                new_delay = route_delay_ns(board, new_record)
                if new_delay <= delay + 1e-9 or new_delay > target_ns + tolerance_ns:
                    # Detour did not lengthen, or overshot: undo.
                    workspace.remove_connection(conn.conn_id)
                    if not workspace.restore_record(old_record):
                        return TuningResult(
                            False,
                            new_delay,
                            target_ns,
                            detours,
                            tried,
                            reason="restore failed",
                        )
                    continue
                record = new_record
                delay = new_delay
                detours += 1
                improved = True
                break
            if improved:
                break
        if not improved:
            return TuningResult(
                False, delay, target_ns, detours, tried, reason="no detour found"
            )
    success = abs(delay - target_ns) <= tolerance_ns or delay >= target_ns - tolerance_ns
    return TuningResult(success, delay, target_ns, detours, tried)


def _detour_usable(
    workspace: RoutingWorkspace,
    conn: Connection,
    vias: Tuple[ViaPoint, ...],
    passable: FrozenSet[int],
) -> bool:
    """Both detour via sites must exist and be drillable."""
    for v in vias:
        if not workspace.grid.contains_via(v):
            return False
        drilled = workspace.via_map.drilled_owner(v)
        if drilled is not None and drilled != conn.conn_id:
            return False
        if not workspace.via_map.is_available(v, passable):
            return False
    return True


def tune_with_cost_mod(
    workspace: RoutingWorkspace,
    board: Board,
    conn: Connection,
    target_ns: float,
    radius: int = 1,
    tolerance_ns: float = 0.05,
    max_candidates: int = 20,
) -> TuningResult:
    """The paper's failed first attempt: delay-targeted Lee cost function.

    The cost function prefers wavefront points whose estimated total delay
    (distance so far plus Manhattan estimate to the destination, at an
    assumed average layer speed) is close to the target.  Because the path
    may end up on fast or slow layers and need not be close to Manhattan
    length, "many candidate solutions ... when completed with Trace proved
    to be too fast or too slow" — this routine re-routes and checks up to
    ``max_candidates`` times and reports how many were false solutions.
    """
    if workspace.is_routed(conn.conn_id):
        raise ValueError("tune_with_cost_mod routes from scratch; rip first")
    model = DelayModel.for_board(board)
    grid_per_via = workspace.grid.grid_per_via
    mean_speed = sum(model.layer_speeds) / len(model.layer_speeds)
    ns_per_via = grid_per_via * model.inches_per_cell / mean_speed

    def delay_cost(n: ViaPoint, target: ViaPoint, hops: int) -> float:
        source = conn.a if target == conn.b else conn.b
        est = (manhattan(source, n) + manhattan(n, target)) * ns_per_via
        return abs(est - target_ns) * hops

    tried = 0
    best_delay = 0.0
    while tried < max_candidates:
        tried += 1
        search = lee_route(
            workspace,
            conn,
            radius=radius,
            passable=frozenset(
                (conn.conn_id, -(conn.pin_a + 1), -(conn.pin_b + 1))
            ),
            cost_fn=delay_cost,
        )
        if not search.routed:
            return TuningResult(
                False, best_delay, target_ns, 0, tried, reason="unroutable"
            )
        delay = route_delay_ns(board, search.record)
        best_delay = delay
        if abs(delay - target_ns) <= tolerance_ns:
            return TuningResult(True, delay, target_ns, 0, tried)
        # False solution: too fast or too slow; rip and try again.  (The
        # search is deterministic, so repeated attempts mostly rediscover
        # similar paths — exactly the pathology the paper describes.)
        workspace.remove_connection(conn.conn_id)
    return TuningResult(
        False, best_delay, target_ns, 0, tried, reason="false solutions"
    )
