"""Photoplot postprocessing: rectilinear routes to chamfered polylines.

Figure 21's caption: "The rectilinear grr output was postprocessed to
generate this photoplot.  Local modifications were made to produce the
rounded corners and diagonal traces ... These optimizations improve the
manufacturing yield and electrical characteristics of the circuit board."

This module performs the geometric half of that postprocessor: it converts
each routed link's channel pieces into an ordered rectilinear polyline and
replaces every 90-degree corner with a 45-degree chamfer.  (The paper's
"spread apart long parallel trace runs" step operates on photoplot flash
data and is out of scope; the chamfering is what changes the geometry in
Figure 21.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.channels.workspace import RouteLink, RoutingWorkspace
from repro.grid.geometry import Orientation

#: A polyline vertex in routing-grid coordinates (may be half-integral
#: after chamfering, hence floats).
Point = Tuple[float, float]


@dataclass
class TracePolyline:
    """One link's centerline after postprocessing."""

    layer_index: int
    points: List[Point]

    @property
    def length(self) -> float:
        """Euclidean length in routing-grid units."""
        total = 0.0
        for (x0, y0), (x1, y1) in zip(self.points, self.points[1:]):
            total += ((x1 - x0) ** 2 + (y1 - y0) ** 2) ** 0.5
        return total


def link_polyline(
    workspace: RoutingWorkspace, link: RouteLink
) -> List[Point]:
    """Ordered rectilinear corner points of a link (before chamfering).

    The trimmed pieces share single junction coordinates (Section 7.1);
    the polyline runs along each piece and steps one channel at each
    junction.
    """
    layer = workspace.layers[link.layer_index]

    def to_xy(channel: int, coord: float) -> Point:
        if layer.orientation is Orientation.HORIZONTAL:
            return (float(coord), float(channel))
        return (float(channel), float(coord))

    a_channel, a_coord = layer.point_cc(link.a)
    b_channel, b_coord = layer.point_cc(link.b)
    points: List[Point] = [to_xy(a_channel, a_coord)]
    pieces = link.pieces
    for i, (channel, lo, hi) in enumerate(pieces):
        if i + 1 < len(pieces):
            next_channel, next_lo, next_hi = pieces[i + 1]
            # The junction is the endpoint the two trimmed pieces share
            # (overlaps were cut back to a single point, Section 7.1).
            common = {lo, hi} & {next_lo, next_hi}
            if common:
                junction = common.pop()
            else:
                junction = max(lo, next_lo)  # defensive fallback
            points.append(to_xy(channel, junction))
            points.append(to_xy(next_channel, junction))
        else:
            points.append(to_xy(channel, b_coord))
    return _dedupe(points)


def _dedupe(points: List[Point]) -> List[Point]:
    """Drop repeated and collinear intermediate vertices."""
    cleaned: List[Point] = []
    for p in points:
        if cleaned and cleaned[-1] == p:
            continue
        if len(cleaned) >= 2:
            (x0, y0), (x1, y1) = cleaned[-2], cleaned[-1]
            # Collinear (all rectilinear here): same x or same y throughout.
            if (x0 == x1 == p[0]) or (y0 == y1 == p[1]):
                cleaned[-1] = p
                continue
        cleaned.append(p)
    return cleaned


def chamfer(points: List[Point], cut: float = 1.0) -> List[Point]:
    """Replace each right-angle corner with a 45-degree chamfer.

    ``cut`` is the distance backed off along each arm (clamped to half
    the arm length so adjacent corners cannot overlap).  Endpoints are
    preserved exactly — they are pads and vias.
    """
    if len(points) < 3:
        return list(points)
    out: List[Point] = [points[0]]
    for i in range(1, len(points) - 1):
        prev_pt, corner, next_pt = points[i - 1], points[i], points[i + 1]
        arm_in = _distance(prev_pt, corner)
        arm_out = _distance(corner, next_pt)
        c = min(cut, arm_in / 2.0, arm_out / 2.0)
        if c <= 0:
            out.append(corner)
            continue
        out.append(_along(corner, prev_pt, c))
        out.append(_along(corner, next_pt, c))
    out.append(points[-1])
    return _dedupe_eps(out)


def _distance(a: Point, b: Point) -> float:
    return ((a[0] - b[0]) ** 2 + (a[1] - b[1]) ** 2) ** 0.5


def _along(origin: Point, towards: Point, distance: float) -> Point:
    length = _distance(origin, towards)
    if length == 0:
        return origin
    t = distance / length
    return (
        origin[0] + (towards[0] - origin[0]) * t,
        origin[1] + (towards[1] - origin[1]) * t,
    )


def _dedupe_eps(points: List[Point], eps: float = 1e-9) -> List[Point]:
    cleaned = [points[0]]
    for p in points[1:]:
        if _distance(cleaned[-1], p) > eps:
            cleaned.append(p)
    return cleaned


def postprocess_connection(
    workspace: RoutingWorkspace, conn_id: int, cut: float = 1.0
) -> List[TracePolyline]:
    """Chamfered polylines for every link of a routed connection."""
    record = workspace.records[conn_id]
    polylines = []
    for link in record.links:
        raw = link_polyline(workspace, link)
        polylines.append(
            TracePolyline(
                layer_index=link.layer_index, points=chamfer(raw, cut)
            )
        )
    return polylines


def postprocess_board(
    workspace: RoutingWorkspace, cut: float = 1.0
) -> dict:
    """Postprocess every routed connection: {conn_id: [TracePolyline]}."""
    return {
        conn_id: postprocess_connection(workspace, conn_id, cut)
        for conn_id in workspace.records
    }
