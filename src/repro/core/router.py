"""The complete routing algorithm (Section 8.4).

Per connection, a collection of strategies of increasing desperation:
already-routed check, zero-via, one-via, Lee, rip-up-and-retry.  Around
that, passes over the (sorted) connection list continue while each pass
leaves fewer unrouted connections — "progress is true only while each
successive pass through the connection list leaves fewer unrouted
connections.  This stops infinite looping on impossible problems."
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.board.board import Board
from repro.board.nets import Connection
from repro.channels.workspace import RouteRecord, RoutingWorkspace
from repro.core.budget import (
    FAIL_BLOCKED,
    STOP_DEADLINE,
    STOP_MAX_PASSES,
    STOP_STALLED,
    BudgetTracker,
    RouteBudget,
)
from repro.core import fastpath
from repro.core.bounds import SEARCH_MODES, TargetBounds
from repro.core.cost import COST_FUNCTIONS, CostFunction
from repro.core.lee import LeeSearchResult, lee_route
from repro.core.optimal import try_one_via, try_two_via, try_zero_via
from repro.core.profiling import RouterProfile
from repro.core.result import RoutingResult, Strategy
from repro.core.ripup import rip_up, select_victims
from repro.core.sorting import sort_connections
from repro.grid.coords import ViaPoint
from repro.obs.audit import WorkspaceAuditor
from repro.obs.events import (
    AuditRun,
    BackendSelected,
    BoundsStats,
    CacheStats,
    ConnectionFailed,
    ConnectionRouted,
    PassEnd,
    PassStart,
    PutbackResult,
    StrategyAttempt,
)
from repro.obs.sinks import NULL_SINK, EventSink


#: Gap-cap multiplier for the one retry a cap-truncated Lee search gets
#: before rip-up may act on it.  A blocked result with ``cap_hits > 0``
#: is a truncation, not a proven blockage — ripping up neighbors on that
#: evidence destroys innocent routes (and the truncated ``best_points``
#: may not even be near the real congestion).
CAP_RETRY_FACTOR = 4


def _audit_default() -> bool:
    """Audit after every pass when ``GRR_AUDIT`` is set (CI's audit tier)."""
    return os.environ.get("GRR_AUDIT", "") not in ("", "0")


def _backend_default() -> str:
    """Search backend from ``GRR_BACKEND`` (CI's backend matrix leg).

    Defaults to the zero-dependency pure-python kernels, *not* "auto":
    the default path must behave identically whether or not numpy
    happens to be importable.
    """
    return os.environ.get("GRR_BACKEND", "") or "python"


def _search_default() -> str:
    """Search mode from ``GRR_SEARCH`` (CI's goal-mode matrix leg).

    Defaults to the paper's classic multiplicative heuristic; ``"goal"``
    selects the A*-style search over reusable lower bounds
    (:mod:`repro.core.bounds`).
    """
    return os.environ.get("GRR_SEARCH", "") or "classic"


@dataclass
class RouterConfig:
    """Tuning knobs of the router; defaults follow the paper.

    ``radius`` (Section 8.1) bounds orthogonal movement per layer — typical
    values are 1 or 2, and "large values of radius are counterproductive".
    The ``enable_*`` switches exist for the ablation benchmarks.

    All effort and wall-clock limits live in the nested :attr:`budget`
    (:class:`repro.core.budget.RouteBudget`).  The pre-budget flat knobs
    (``max_lee_expansions`` / ``max_gaps`` / ``max_ripup_rounds``),
    deprecated through one release, are gone: pass
    ``budget=RouteBudget(...)``.
    """

    radius: int = 1
    cost: str = "distance_hops"
    sort: bool = True
    enable_zero_via: bool = True
    enable_one_via: bool = True
    #: The divide-and-conquer two-via strategy the paper tried and
    #: rejected (Section 8.1); off by default, available for ablation.
    enable_two_via: bool = False
    enable_lee: bool = True
    enable_ripup: bool = True
    #: Every effort cap and wall-clock limit for one ``route()`` call.
    budget: RouteBudget = field(default_factory=RouteBudget)
    rip_radius: int = 2
    max_passes: int = 24
    #: Extra passes tolerated without reducing the unrouted count.  The
    #: paper's guard is strict ("fewer unrouted connections"); allowing a
    #: short stall lets pass N+1 profit from space freed by pass N's
    #: rip-ups before declaring the problem impossible.
    max_stalled_passes: int = 2
    #: Worker processes for parallel wave routing.  1 keeps the classic
    #: serial router; >1 makes :func:`make_router` return a
    #: :class:`repro.parallel.ParallelRouter` that bulk-routes spatially
    #: disjoint groups concurrently and repairs the remainder serially.
    workers: int = 1
    #: Parallel runs that end incomplete discard their attempt and
    #: re-route the whole board serially, so an incomplete parallel
    #: result is always exactly the serial result (pure-accelerator
    #: guarantee).  Disable for ablation of the fallback cost.
    parity_fallback: bool = True
    #: Relaunch attempts for a wave worker that crashes, errors, or blows
    #: its group deadline before its group is degraded to the serial
    #: residue pass.
    worker_retries: int = 2
    #: Base backoff before a worker relaunch; doubles per attempt.
    worker_backoff_seconds: float = 0.05
    #: Let the parallel router skip the worker pool and route serially
    #: when the board is too small or too congested for waves to pay
    #: (see :func:`repro.parallel.partition.pool_decision`).  Off forces
    #: the pool regardless of board size (tests, ablation).
    pool_auto_serial: bool = True
    #: Minimum estimated routing demand (grid units of wire, summed over
    #: connections) before the pool is worth its startup cost.
    pool_min_demand: int = 50_000
    #: Maximum demand/supply utilization for wave routing: above this
    #: the board is congested enough that wave-routed groups poison the
    #: serial residue, so the whole call routes serially instead.
    pool_max_utilization: float = 0.20
    #: Run the :class:`repro.obs.WorkspaceAuditor` after every pass
    #: (and after every parallel merge), raising on any violation.
    #: Defaults on when the ``GRR_AUDIT`` environment variable is set.
    audit: bool = field(default_factory=_audit_default)
    #: Search-kernel backend for the single-layer hot loops:
    #: ``"python"`` (the always-available default), ``"numpy"`` (the
    #: vectorized :mod:`repro.core.fastpath` kernels, bit-identical
    #: routes), or ``"auto"`` (numpy when installed, else python).
    #: Defaults from the ``GRR_BACKEND`` environment variable.
    backend: str = field(default_factory=_backend_default)
    #: Lee wavefront mode: ``"classic"`` (the paper's ``distance *
    #: hops`` heuristic, stop at first meet) or ``"goal"`` (A*-style
    #: ``g + lb`` ordering over the reusable
    #: :class:`repro.core.bounds.LowerBoundCache` lower bounds, with
    #: meet-cost pruning and early bidirectional termination).
    #: Defaults from the ``GRR_SEARCH`` environment variable.
    search: str = field(default_factory=_search_default)

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError("radius must be non-negative")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.worker_retries < 0:
            raise ValueError("worker_retries must be non-negative")
        if self.worker_backoff_seconds < 0:
            raise ValueError("worker_backoff_seconds must be non-negative")
        if self.pool_min_demand < 0:
            raise ValueError("pool_min_demand must be non-negative")
        if self.pool_max_utilization < 0:
            raise ValueError("pool_max_utilization must be non-negative")
        if self.cost not in COST_FUNCTIONS:
            raise ValueError(
                f"unknown cost function {self.cost!r}; "
                f"choose from {sorted(COST_FUNCTIONS)}"
            )
        if self.backend not in fastpath.BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"choose from {fastpath.BACKENDS}"
            )
        if self.search not in SEARCH_MODES:
            raise ValueError(
                f"unknown search mode {self.search!r}; "
                f"choose from {SEARCH_MODES}"
            )

    @property
    def cost_fn(self) -> CostFunction:
        """The resolved wavefront cost function."""
        return COST_FUNCTIONS[self.cost]



def make_router(
    board: Board,
    config: Optional[RouterConfig] = None,
    workspace: Optional[RoutingWorkspace] = None,
    sink: Optional[EventSink] = None,
):
    """Build the router the config asks for.

    ``workers == 1`` (the default) gives the classic serial
    :class:`GreedyRouter`; ``workers > 1`` gives the wave-parallel
    :class:`repro.parallel.ParallelRouter`, which shares the same
    ``route()`` contract.  The import is deferred because the parallel
    package builds on this module.  ``sink`` receives the routing event
    stream (``repro.obs``); None keeps the zero-overhead null sink.
    """
    cfg = config or RouterConfig()
    if cfg.workers > 1:
        from repro.parallel import ParallelRouter

        return ParallelRouter(board, cfg, workspace, sink)
    return GreedyRouter(board, cfg, workspace, sink)


class GreedyRouter:
    """grr: the greedy printed-circuit-board router."""

    def __init__(
        self,
        board: Board,
        config: Optional[RouterConfig] = None,
        workspace: Optional[RoutingWorkspace] = None,
        sink: Optional[EventSink] = None,
        budget_tracker: Optional[BudgetTracker] = None,
    ) -> None:
        self.board = board
        self.config = config or RouterConfig()
        self.workspace = workspace or RoutingWorkspace(board)
        #: The resolved search backend ("python"/"numpy"), applied to
        #: every workspace layer; raises here — not mid-route — when an
        #: explicit backend="numpy" has no numpy to dispatch to.
        self.backend = fastpath.resolve_backend(self.config.backend)
        self.workspace.set_backend(self.backend)
        #: Routing event stream (repro.obs); the null sink by default.
        self.sink = sink if sink is not None else NULL_SINK
        #: Per-phase CPU profile (Section 12), refreshed by each route().
        self.profile = RouterProfile()
        #: Shared deadline clock: the parallel router passes its own
        #: tracker so residue/fallback phases honor the *call's* deadline
        #: rather than starting a fresh one.  None = per-route() tracker.
        self.budget_tracker = budget_tracker

    # ------------------------------------------------------------------
    # the outer pass loop (Section 8.4)
    # ------------------------------------------------------------------

    def route(self, connections: Sequence[Connection]) -> RoutingResult:
        """Route a connection list; returns the result with statistics.

        Never raises on exhaustion: when the configured
        :class:`~repro.core.budget.RouteBudget` deadline runs out the
        pass loop unwinds between connections, everything already
        installed stays installed, and the partial result reports
        ``stopped_reason`` plus per-connection ``failure_reasons``.
        """
        started = time.perf_counter()
        self.profile = RouterProfile()
        cfg = self.config
        tracker = self.budget_tracker or BudgetTracker(
            cfg.budget, self.sink
        )
        timed = tracker.timed
        ordered = (
            sort_connections(connections) if cfg.sort else list(connections)
        )
        result = RoutingResult(
            workspace=self.workspace, connections=list(connections)
        )
        unrouted = [
            c for c in ordered if not self.workspace.is_routed(c.conn_id)
        ]
        previous = len(unrouted) + 1
        stalled = 0
        sink = self.sink
        self.profile.bump(f"backend_{self.backend}", 1)
        if sink.enabled:
            sink.emit(BackendSelected(cfg.backend, self.backend))
        cache_before = self.workspace.gap_cache_stats()
        bounds_before = self.workspace.bounds_stats()
        while unrouted and result.passes < cfg.max_passes:
            if len(unrouted) < previous:
                stalled = 0
            else:
                stalled += 1
                if stalled > cfg.max_stalled_passes:
                    # No progress: the problem is too hard (§8.4).
                    result.stopped_reason = STOP_STALLED
                    break
            previous = len(unrouted)
            if timed:
                if tracker.deadline_exceeded(f"pass {result.passes + 1}"):
                    result.stopped_reason = STOP_DEADLINE
                    break
                tracker.checkpoint(f"pass {result.passes + 1}")
            result.passes += 1
            if sink.enabled:
                sink.emit(PassStart(result.passes, len(unrouted)))
            for conn in unrouted:
                if self.workspace.is_routed(conn.conn_id):
                    continue  # restored during an earlier putback
                if timed and tracker.deadline_exceeded(
                    f"pass {result.passes}"
                ):
                    result.stopped_reason = STOP_DEADLINE
                    break
                self._route_connection(conn, result, tracker)
            pending_before = len(unrouted)
            unrouted = [
                c for c in ordered if not self.workspace.is_routed(c.conn_id)
            ]
            if sink.enabled:
                sink.emit(
                    PassEnd(result.passes, pending_before, len(unrouted))
                )
            if cfg.audit:
                self._audit(f"pass {result.passes}")
            if result.stopped_reason is not None:
                break
        result.failed = [c.conn_id for c in unrouted]
        if result.failed and result.stopped_reason is None:
            result.stopped_reason = STOP_MAX_PASSES
        default_reason = (
            STOP_DEADLINE
            if result.stopped_reason == STOP_DEADLINE
            else FAIL_BLOCKED
        )
        result.failure_reasons = {
            cid: result.failure_reasons.get(cid, default_reason)
            for cid in result.failed
        }
        result.cpu_seconds = time.perf_counter() - started
        self._note_cache_stats(cache_before, "route")
        self._note_bounds_stats(bounds_before, "route")
        return result

    def _note_cache_stats(
        self, before: Tuple[int, int, int], context: str
    ) -> None:
        """Fold this run's free-gap cache delta into profile counters
        and emit one :class:`~repro.obs.events.CacheStats` event."""
        hits_after, misses_after, bypassed_after = (
            self.workspace.gap_cache_stats()
        )
        hits = hits_after - before[0]
        misses = misses_after - before[1]
        bypassed = bypassed_after - before[2]
        if hits or misses:
            self.profile.bump("gap_cache_hits", hits)
            self.profile.bump("gap_cache_misses", misses)
        if bypassed:
            self.profile.bump("gap_cache_bypassed", bypassed)
        if self.sink.enabled:
            total = hits + misses
            self.sink.emit(
                CacheStats(
                    context,
                    hits,
                    misses,
                    hits / total if total else 0.0,
                    bypassed,
                )
            )

    def _note_bounds_stats(
        self, before: Tuple[int, int], context: str
    ) -> None:
        """Fold this run's lower-bound cache delta into profile counters
        and emit one :class:`~repro.obs.events.BoundsStats` event.

        A no-op under ``search="classic"`` (the cache is never consulted,
        so the delta is zero and nothing is bumped or emitted)."""
        hits_after, rebuilds_after = self.workspace.bounds_stats()
        hits = hits_after - before[0]
        rebuilds = rebuilds_after - before[1]
        if not hits and not rebuilds:
            return
        self.profile.bump("lb_hits", hits)
        self.profile.bump("lb_rebuilds", rebuilds)
        if self.sink.enabled:
            total = hits + rebuilds
            self.sink.emit(
                BoundsStats(
                    context,
                    hits,
                    rebuilds,
                    hits / total if total else 0.0,
                )
            )

    def _note_search(self, search: LeeSearchResult) -> None:
        """Fold per-search goal-mode counters into the profile."""
        if search.heap_stale:
            self.profile.bump("heap_stale", search.heap_stale)
        if search.lb_prunes:
            self.profile.bump("lb_prunes", search.lb_prunes)

    def _bounds_for(
        self, conn: Connection, passable: FrozenSet[int]
    ) -> Optional[Tuple[TargetBounds, TargetBounds]]:
        """Per-side distance lower bounds for goal-oriented search.

        Returns None under ``search="classic"`` (the Lee search then runs
        its historical cost-function ordering untouched).  In goal mode
        the pair is (bounds toward ``conn.b``, bounds toward ``conn.a``) —
        side 0 of the bidirectional search grows from ``a`` toward ``b``
        and vice versa.  Lookups hit the workspace-resident
        :class:`~repro.core.bounds.LowerBoundCache`, so retries, rip-up
        rounds and ECO reroutes of the same connection reuse warm entries
        until a cover change touches the target's arrival bands.
        """
        if self.config.search != "goal":
            return None
        cache = self.workspace.lower_bounds
        radius = self.config.radius
        return (
            cache.lookup(conn.b, passable, radius),
            cache.lookup(conn.a, passable, radius),
        )

    def _audit(self, context: str) -> None:
        """Verify workspace invariants, emit the event, raise on breakage."""
        report = WorkspaceAuditor(self.workspace).audit()
        if self.sink.enabled:
            self.sink.emit(AuditRun(context, len(report.violations)))
        if not report.ok:
            from repro.obs.audit import WorkspaceAuditError

            raise WorkspaceAuditError(report, context)

    # ------------------------------------------------------------------
    # per-connection strategy stack
    # ------------------------------------------------------------------

    def passable_for(self, conn: Connection) -> FrozenSet[int]:
        """Owners this connection may route over: itself and its two pins."""
        return frozenset(
            (conn.conn_id, -(conn.pin_a + 1), -(conn.pin_b + 1))
        )

    def _try_strategies(
        self,
        conn: Connection,
        passable: FrozenSet[int],
        attempt: int = 0,
        budget: Optional[BudgetTracker] = None,
    ) -> Tuple[Optional[RouteRecord], Optional[Strategy], Optional[LeeSearchResult]]:
        """One attempt through zero-via, one-via and Lee.

        A timed ``budget`` is consulted between strategies and threaded
        into every search; exhaustion truncates the attempt (returns the
        all-None triple) and the caller unwinds.
        """
        cfg = self.config
        caps = cfg.budget
        ws = self.workspace
        sink = self.sink
        if conn.a == conn.b:
            # Degenerate connection (both pins on one via site — possible
            # for stacked pin models); it is trivially connected.
            builder = ws.route_builder(conn.conn_id, passable)
            return builder.commit(), Strategy.ZERO_VIA, None
        if cfg.enable_zero_via:
            with self.profile.measure("zero_via"):
                record = try_zero_via(
                    ws, conn, cfg.radius, passable, caps.max_gaps, budget
                )
            if sink.enabled:
                sink.emit(
                    StrategyAttempt(
                        conn.conn_id, "zero_via", record is not None, attempt
                    )
                )
            if record is not None:
                return record, Strategy.ZERO_VIA, None
            if budget is not None and budget.search_exceeded():
                return None, None, None
        if cfg.enable_one_via:
            with self.profile.measure("one_via"):
                record = try_one_via(
                    ws, conn, cfg.radius, passable, caps.max_gaps, budget
                )
            if sink.enabled:
                sink.emit(
                    StrategyAttempt(
                        conn.conn_id, "one_via", record is not None, attempt
                    )
                )
            if record is not None:
                return record, Strategy.ONE_VIA, None
            if budget is not None and budget.search_exceeded():
                return None, None, None
        if cfg.enable_two_via:
            with self.profile.measure("two_via"):
                record = try_two_via(
                    ws,
                    conn,
                    cfg.radius,
                    passable,
                    caps.max_gaps,
                    budget=budget,
                )
            if sink.enabled:
                sink.emit(
                    StrategyAttempt(
                        conn.conn_id, "two_via", record is not None, attempt
                    )
                )
            if record is not None:
                return record, Strategy.TWO_VIA, None
            if budget is not None and budget.search_exceeded():
                return None, None, None
        if cfg.enable_lee:
            with self.profile.measure("lee"):
                search = lee_route(
                    ws,
                    conn,
                    radius=cfg.radius,
                    passable=passable,
                    cost_fn=cfg.cost_fn,
                    max_expansions=caps.max_lee_expansions,
                    max_gaps=caps.max_gaps,
                    sink=sink,
                    budget=budget,
                    bounds=self._bounds_for(conn, passable),
                )
            if sink.enabled:
                sink.emit(
                    StrategyAttempt(
                        conn.conn_id, "lee", search.routed, attempt
                    )
                )
            if search.routed:
                return search.record, Strategy.LEE, search
            return None, None, search
        return None, None, None

    def _rip_points(
        self, conn: Connection, search: Optional[LeeSearchResult]
    ) -> List[ViaPoint]:
        """Points around which to rip, most promising first.

        The least-cost point of the exhausted wavefront made the most
        progress towards the target (Section 8.3); the other side's best
        point is the fallback.  Without a Lee result (strategy disabled)
        the endpoints themselves are used.
        """
        if search is None:
            return [conn.a, conn.b]
        best_a, best_b = search.best_points
        if search.exhausted_side == "b":
            points = [best_b, best_a]
        else:
            points = [best_a, best_b]
        points.extend([conn.a, conn.b])
        return [p for p in points if p is not None]

    def _route_connection(
        self,
        conn: Connection,
        result: RoutingResult,
        tracker: Optional[BudgetTracker] = None,
    ) -> bool:
        """Route one connection, ripping up obstacles if necessary."""
        cfg = self.config
        ws = self.workspace
        sink = self.sink
        passable = self.passable_for(conn)
        ripped: Dict[int, Tuple[RouteRecord, Optional[Strategy]]] = {}
        routed = False
        attempt = 0
        budget = tracker.hot() if tracker is not None else None
        if budget is not None:
            budget.start_connection(conn.conn_id)
        for attempt in range(cfg.budget.max_ripup_rounds + 1):
            if budget is not None and budget.exceeded_scope(
                f"connection {conn.conn_id}"
            ):
                break
            record, strategy, search = self._try_strategies(
                conn, passable, attempt, budget
            )
            if search is not None:
                result.lee_expansions += search.expansions
                self._note_search(search)
                if search.cap_hits:
                    self.profile.bump("cap_hits", search.cap_hits)
            still_truncated = False
            if (
                record is None
                and search is not None
                and search.blocked
                and search.cap_hits > 0
                and not (budget is not None and budget.search_exceeded())
            ):
                # The Lee search was cap-truncated, so "blocked" is
                # unproven — hidden reachable neighbors may exist past
                # the gap cap.  Retry once with the cap raised before
                # letting rip-up act on the result (see CAP_RETRY_FACTOR).
                self.profile.bump("cap_retries", 1)
                with self.profile.measure("lee"):
                    search = lee_route(
                        ws,
                        conn,
                        radius=cfg.radius,
                        passable=passable,
                        cost_fn=cfg.cost_fn,
                        max_expansions=cfg.budget.max_lee_expansions,
                        max_gaps=cfg.budget.max_gaps * CAP_RETRY_FACTOR,
                        sink=sink,
                        budget=budget,
                        bounds=self._bounds_for(conn, passable),
                    )
                result.lee_expansions += search.expansions
                self._note_search(search)
                if search.cap_hits:
                    self.profile.bump("cap_hits", search.cap_hits)
                if search.routed:
                    record, strategy = search.record, Strategy.LEE
                elif search.cap_hits > 0:
                    # Still truncated at the raised cap: the blockage
                    # stays unproven, and victim selection on it would
                    # rip up routes that may not be in the way at all.
                    still_truncated = True
            if record is not None:
                result.routed_by[conn.conn_id] = strategy
                routed = True
                if sink.enabled:
                    sink.emit(
                        ConnectionRouted(
                            conn.conn_id,
                            strategy.value,
                            attempt,
                            record.via_count,
                            record.wire_length,
                        )
                    )
                break
            if not cfg.enable_ripup or attempt == cfg.budget.max_ripup_rounds:
                break
            if still_truncated:
                break  # unproven blockage: do not rip up on it
            if budget is not None and budget.search_exceeded():
                break  # no clock left to spend on rip-up rounds
            victims: set = set()
            with self.profile.measure("ripup"):
                # Widen the rip neighborhood as attempts fail: "this
                # process of ripping up and restarting continues until
                # enough obstacles have been removed" (Section 8.3).
                rip_radius = cfg.rip_radius + attempt // 2
                for point in self._rip_points(conn, search):
                    victims = select_victims(
                        ws,
                        point,
                        rip_radius,
                        passable,
                        sink=sink,
                        for_conn=conn.conn_id,
                        attempt=attempt,
                    )
                    if victims:
                        break
            if not victims:
                break  # nothing movable is in the way; truly stuck
            removed = rip_up(ws, victims)
            for conn_id, route_record in removed.items():
                previous = result.routed_by.pop(conn_id, None)
                ripped[conn_id] = (route_record, previous)
        if routed:
            result.failure_reasons.pop(conn.conn_id, None)
        else:
            scope = (
                budget.exceeded_scope(f"connection {conn.conn_id}")
                if budget is not None
                else None
            )
            result.failure_reasons[conn.conn_id] = scope or FAIL_BLOCKED
            if sink.enabled:
                sink.emit(ConnectionFailed(conn.conn_id, attempt + 1))
        # Putback (Section 8.3): most ripped-up connections fit back
        # unchanged; the rest stay unrouted and a later pass re-routes
        # them.  Only victims that do NOT go back unchanged count as
        # rip-up displacements; unchanged restores count as putbacks.
        if ripped:
            with self.profile.measure("putback"):
                for conn_id, (route_record, previous) in ripped.items():
                    if ws.is_routed(conn_id):
                        result.rip_up_count += 1  # displaced: re-routed
                        continue
                    restored = ws.restore_record(route_record)
                    if restored:
                        result.putback_count += 1
                        result.routed_by[conn_id] = (
                            previous or Strategy.PUTBACK
                        )
                    else:
                        result.rip_up_count += 1
                    if sink.enabled:
                        sink.emit(
                            PutbackResult(conn_id, restored, conn.conn_id)
                        )
        return routed
