"""The complete routing algorithm (Section 8.4).

Per connection, a collection of strategies of increasing desperation:
already-routed check, zero-via, one-via, Lee, rip-up-and-retry.  Around
that, passes over the (sorted) connection list continue while each pass
leaves fewer unrouted connections — "progress is true only while each
successive pass through the connection list leaves fewer unrouted
connections.  This stops infinite looping on impossible problems."
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.board.board import Board
from repro.board.nets import Connection
from repro.channels.workspace import RouteRecord, RoutingWorkspace
from repro.core.cost import COST_FUNCTIONS, CostFunction
from repro.core.lee import LeeSearchResult, lee_route
from repro.core.optimal import try_one_via, try_two_via, try_zero_via
from repro.core.profiling import RouterProfile
from repro.core.result import RoutingResult, Strategy
from repro.core.ripup import rip_up, select_victims
from repro.core.sorting import sort_connections
from repro.grid.coords import ViaPoint


@dataclass
class RouterConfig:
    """Tuning knobs of the router; defaults follow the paper.

    ``radius`` (Section 8.1) bounds orthogonal movement per layer — typical
    values are 1 or 2, and "large values of radius are counterproductive".
    The ``enable_*`` switches exist for the ablation benchmarks.
    """

    radius: int = 1
    cost: str = "distance_hops"
    sort: bool = True
    enable_zero_via: bool = True
    enable_one_via: bool = True
    #: The divide-and-conquer two-via strategy the paper tried and
    #: rejected (Section 8.1); off by default, available for ablation.
    enable_two_via: bool = False
    enable_lee: bool = True
    enable_ripup: bool = True
    max_lee_expansions: int = 4000
    max_gaps: int = 20000
    max_ripup_rounds: int = 10
    rip_radius: int = 2
    max_passes: int = 24
    #: Extra passes tolerated without reducing the unrouted count.  The
    #: paper's guard is strict ("fewer unrouted connections"); allowing a
    #: short stall lets pass N+1 profit from space freed by pass N's
    #: rip-ups before declaring the problem impossible.
    max_stalled_passes: int = 2
    #: Worker processes for parallel wave routing.  1 keeps the classic
    #: serial router; >1 makes :func:`make_router` return a
    #: :class:`repro.parallel.ParallelRouter` that bulk-routes spatially
    #: disjoint groups concurrently and repairs the remainder serially.
    workers: int = 1
    #: Parallel runs that end incomplete discard their attempt and
    #: re-route the whole board serially, so an incomplete parallel
    #: result is always exactly the serial result (pure-accelerator
    #: guarantee).  Disable for ablation of the fallback cost.
    parity_fallback: bool = True

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError("radius must be non-negative")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.cost not in COST_FUNCTIONS:
            raise ValueError(
                f"unknown cost function {self.cost!r}; "
                f"choose from {sorted(COST_FUNCTIONS)}"
            )

    @property
    def cost_fn(self) -> CostFunction:
        """The resolved wavefront cost function."""
        return COST_FUNCTIONS[self.cost]


def make_router(
    board: Board,
    config: Optional[RouterConfig] = None,
    workspace: Optional[RoutingWorkspace] = None,
):
    """Build the router the config asks for.

    ``workers == 1`` (the default) gives the classic serial
    :class:`GreedyRouter`; ``workers > 1`` gives the wave-parallel
    :class:`repro.parallel.ParallelRouter`, which shares the same
    ``route()`` contract.  The import is deferred because the parallel
    package builds on this module.
    """
    cfg = config or RouterConfig()
    if cfg.workers > 1:
        from repro.parallel import ParallelRouter

        return ParallelRouter(board, cfg, workspace)
    return GreedyRouter(board, cfg, workspace)


class GreedyRouter:
    """grr: the greedy printed-circuit-board router."""

    def __init__(
        self,
        board: Board,
        config: Optional[RouterConfig] = None,
        workspace: Optional[RoutingWorkspace] = None,
    ) -> None:
        self.board = board
        self.config = config or RouterConfig()
        self.workspace = workspace or RoutingWorkspace(board)
        #: Per-phase CPU profile (Section 12), refreshed by each route().
        self.profile = RouterProfile()

    # ------------------------------------------------------------------
    # the outer pass loop (Section 8.4)
    # ------------------------------------------------------------------

    def route(self, connections: Sequence[Connection]) -> RoutingResult:
        """Route a connection list; returns the result with statistics."""
        started = time.perf_counter()
        self.profile = RouterProfile()
        cfg = self.config
        ordered = (
            sort_connections(connections) if cfg.sort else list(connections)
        )
        result = RoutingResult(
            workspace=self.workspace, connections=list(connections)
        )
        unrouted = [
            c for c in ordered if not self.workspace.is_routed(c.conn_id)
        ]
        previous = len(unrouted) + 1
        stalled = 0
        while unrouted and result.passes < cfg.max_passes:
            if len(unrouted) < previous:
                stalled = 0
            else:
                stalled += 1
                if stalled > cfg.max_stalled_passes:
                    break  # no progress: the problem is too hard (§8.4)
            previous = len(unrouted)
            result.passes += 1
            for conn in unrouted:
                if self.workspace.is_routed(conn.conn_id):
                    continue  # restored during an earlier putback
                self._route_connection(conn, result)
            unrouted = [
                c for c in ordered if not self.workspace.is_routed(c.conn_id)
            ]
        result.failed = [c.conn_id for c in unrouted]
        result.cpu_seconds = time.perf_counter() - started
        return result

    # ------------------------------------------------------------------
    # per-connection strategy stack
    # ------------------------------------------------------------------

    def passable_for(self, conn: Connection) -> FrozenSet[int]:
        """Owners this connection may route over: itself and its two pins."""
        return frozenset(
            (conn.conn_id, -(conn.pin_a + 1), -(conn.pin_b + 1))
        )

    def _try_strategies(
        self, conn: Connection, passable: FrozenSet[int]
    ) -> Tuple[Optional[RouteRecord], Optional[Strategy], Optional[LeeSearchResult]]:
        """One attempt through zero-via, one-via and Lee."""
        cfg = self.config
        ws = self.workspace
        if conn.a == conn.b:
            # Degenerate connection (both pins on one via site — possible
            # for stacked pin models); it is trivially connected.
            builder = ws.route_builder(conn.conn_id, passable)
            return builder.commit(), Strategy.ZERO_VIA, None
        if cfg.enable_zero_via:
            with self.profile.measure("zero_via"):
                record = try_zero_via(
                    ws, conn, cfg.radius, passable, cfg.max_gaps
                )
            if record is not None:
                return record, Strategy.ZERO_VIA, None
        if cfg.enable_one_via:
            with self.profile.measure("one_via"):
                record = try_one_via(
                    ws, conn, cfg.radius, passable, cfg.max_gaps
                )
            if record is not None:
                return record, Strategy.ONE_VIA, None
        if cfg.enable_two_via:
            with self.profile.measure("two_via"):
                record = try_two_via(
                    ws, conn, cfg.radius, passable, cfg.max_gaps
                )
            if record is not None:
                return record, Strategy.TWO_VIA, None
        if cfg.enable_lee:
            with self.profile.measure("lee"):
                search = lee_route(
                    ws,
                    conn,
                    radius=cfg.radius,
                    passable=passable,
                    cost_fn=cfg.cost_fn,
                    max_expansions=cfg.max_lee_expansions,
                    max_gaps=cfg.max_gaps,
                )
            if search.routed:
                return search.record, Strategy.LEE, search
            return None, None, search
        return None, None, None

    def _rip_points(
        self, conn: Connection, search: Optional[LeeSearchResult]
    ) -> List[ViaPoint]:
        """Points around which to rip, most promising first.

        The least-cost point of the exhausted wavefront made the most
        progress towards the target (Section 8.3); the other side's best
        point is the fallback.  Without a Lee result (strategy disabled)
        the endpoints themselves are used.
        """
        if search is None:
            return [conn.a, conn.b]
        best_a, best_b = search.best_points
        if search.exhausted_side == "b":
            points = [best_b, best_a]
        else:
            points = [best_a, best_b]
        points.extend([conn.a, conn.b])
        return [p for p in points if p is not None]

    def _route_connection(
        self, conn: Connection, result: RoutingResult
    ) -> bool:
        """Route one connection, ripping up obstacles if necessary."""
        cfg = self.config
        ws = self.workspace
        passable = self.passable_for(conn)
        ripped: Dict[int, Tuple[RouteRecord, Optional[Strategy]]] = {}
        routed = False
        for attempt in range(cfg.max_ripup_rounds + 1):
            record, strategy, search = self._try_strategies(conn, passable)
            if search is not None:
                result.lee_expansions += search.expansions
            if record is not None:
                result.routed_by[conn.conn_id] = strategy
                routed = True
                break
            if not cfg.enable_ripup or attempt == cfg.max_ripup_rounds:
                break
            victims: set = set()
            with self.profile.measure("ripup"):
                # Widen the rip neighborhood as attempts fail: "this
                # process of ripping up and restarting continues until
                # enough obstacles have been removed" (Section 8.3).
                rip_radius = cfg.rip_radius + attempt // 2
                for point in self._rip_points(conn, search):
                    victims = select_victims(
                        ws, point, rip_radius, passable
                    )
                    if victims:
                        break
            if not victims:
                break  # nothing movable is in the way; truly stuck
            removed = rip_up(ws, victims)
            result.rip_up_count += len(removed)
            for conn_id, route_record in removed.items():
                previous = result.routed_by.pop(conn_id, None)
                ripped[conn_id] = (route_record, previous)
        # Putback (Section 8.3): most ripped-up connections fit back
        # unchanged; the rest stay unrouted and a later pass re-routes them.
        if ripped:
            with self.profile.measure("putback"):
                for conn_id, (route_record, previous) in ripped.items():
                    if ws.is_routed(conn_id):
                        continue
                    if ws.restore_record(route_record):
                        result.routed_by[conn_id] = (
                            previous or Strategy.PUTBACK
                        )
        return routed
