"""The three single-layer algorithms (Section 7): Trace, Vias, Obstructions.

All three are variations of one underlying method: a depth-first search of
the *free space* of a single layer, viewed as a graph of free gaps — maximal
free intervals in each channel — where two gaps are adjacent when they lie
in neighboring channels and overlap.  The cost of a search is proportional
to the number of gaps examined, not to the distance between the end points:
"in the absence of obstacles, it is just as fast to make a connection across
the board as to the neighboring pin".

* :func:`trace` — "Is there a trace between a and b on layer l lying
  entirely within box?"  Returns the trimmed list of channel pieces.
* :func:`reachable_vias` — "What via sites are reachable from point a on
  layer l by paths lying entirely within box?"  (The paper's *Vias*.)
* :func:`obstructions` — "What connections are near point a on layer l
  lying in box?"  Victim selection for rip-up.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.channels.layer_data import ChannelPiece, LayerData
from repro.core import fastpath
from repro.core.budget import SEARCH_CHECK_MASK

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.budget import BudgetTracker
from repro.channels.via_map import ViaMap
from repro.grid.coords import GridPoint, ViaPoint
from repro.grid.geometry import Box

#: Identity of a free gap: (channel index, index in the channel's gap list).
GapKey = Tuple[int, int]

#: Default cap on gaps examined per search, a safety net against
#: pathological congestion.  A capped search is *truncated*, not proven
#: blocked; callers that care pass a :class:`SearchStats` to tell the two
#: apart (rip-up victim selection must not treat truncation as blockage).
DEFAULT_MAX_GAPS = 20000


@dataclass
class SearchStats:
    """Accumulated effort of free-space searches (an out-parameter).

    All three Section 7 searches count the same unit — gaps popped off
    the search stack — and call :meth:`note` exactly once on the way out,
    so the ``max_gaps`` cap means one thing everywhere.
    """

    searches: int = 0
    examined: int = 0
    #: Searches that hit the ``max_gaps`` cap and were truncated.
    cap_hits: int = 0

    def note(self, examined: int, capped: bool) -> None:
        """Record one finished (or truncated) search."""
        self.searches += 1
        self.examined += examined
        if capped:
            self.cap_hits += 1


#: Sentinel larger than any gap hi-bound, so ``(coord, _COORD_INF)`` sorts
#: after every gap starting at ``coord`` in ``gap_index_at``'s bisect.
_COORD_INF = 1 << 62


class _FreeSpace:
    """Box-clipped free-gap view of one layer region for one search.

    A thin view over the layer's :class:`~repro.channels.gap_cache.
    GapCache`: the per-channel lists survive across searches there (the
    board does not change between most searches), while this object only
    holds the box clip and a per-search ``{channel: list}`` memo so the
    hot ``gaps()`` call is a single int-keyed dict lookup.
    """

    def __init__(
        self, layer: LayerData, box: Box, passable: FrozenSet[int]
    ) -> None:
        self.layer = layer
        self.passable = passable
        c_lo, c_hi, lo, hi = layer.box_cc(box)
        self.c_lo = max(c_lo, 0)
        self.c_hi = min(c_hi, layer.n_channels - 1)
        self.lo = max(lo, 0)
        self.hi = min(hi, layer.channel_length - 1)
        self._cache = layer.gap_cache
        self._gaps: Dict[int, List[Tuple[int, int]]] = {}

    @property
    def is_empty(self) -> bool:
        """True if the box misses the layer entirely."""
        return self.c_lo > self.c_hi or self.lo > self.hi

    def in_box(self, channel_index: int, coord: int) -> bool:
        """True if channel coordinates lie inside the clipped box."""
        return (
            self.c_lo <= channel_index <= self.c_hi
            and self.lo <= coord <= self.hi
        )

    def gaps(self, channel_index: int) -> List[Tuple[int, int]]:
        """Free gaps of one channel, clipped to the box (cached).

        Repeat reads within this search count as cache hits: they are
        requests the gap-serving subsystem answered without recomputing,
        same as a shared-store hit, so the hit/miss counters describe
        every ``gaps()`` request a search makes.
        """
        cached = self._gaps.get(channel_index)
        if cached is None:
            cached = self._cache.gaps(
                channel_index, self.lo, self.hi, self.passable
            )
            self._gaps[channel_index] = cached
        else:
            self._cache.hits += 1
        return cached

    def gap_index_at(self, channel_index: int, coord: int) -> Optional[int]:
        """Index of the gap containing ``coord``, or None if blocked.

        The gap list is sorted and disjoint, so the candidate is the last
        gap starting at or before ``coord`` — found by bisect, not by
        scanning from index 0 (this runs at the start of every search and
        on every Lee neighbor expansion).
        """
        gaps = self.gaps(channel_index)
        i = bisect_right(gaps, (coord, _COORD_INF)) - 1
        if i >= 0 and gaps[i][1] >= coord:
            return i
        return None


def _interval_distance(lo: int, hi: int, x: int) -> int:
    """Distance from coordinate ``x`` to the interval ``[lo, hi]``."""
    if x < lo:
        return lo - x
    if x > hi:
        return x - hi
    return 0


def _adjacent_gaps(
    fs: _FreeSpace, channel_index: int, glo: int, ghi: int
) -> Iterator[Tuple[GapKey, Tuple[int, int]]]:
    """Gaps in the two neighboring channels overlapping ``[glo, ghi]``."""
    for nc in (channel_index - 1, channel_index + 1):
        if not fs.c_lo <= nc <= fs.c_hi:
            continue
        for ngi, (nglo, nghi) in enumerate(fs.gaps(nc)):
            if nghi < glo:
                continue
            if nglo > ghi:
                break
            yield (nc, ngi), (nglo, nghi)


def trace(
    layer: LayerData,
    a: GridPoint,
    b: GridPoint,
    box: Box,
    passable: FrozenSet[int] = frozenset(),
    max_gaps: int = DEFAULT_MAX_GAPS,
    stats: Optional[SearchStats] = None,
    budget: Optional["BudgetTracker"] = None,
) -> Optional[List[ChannelPiece]]:
    """Find a rectilinear path from ``a`` to ``b`` on one layer inside ``box``.

    Returns the path as channel pieces ``(channel_index, lo, hi)`` with the
    large gap overlaps already trimmed back to single junction points
    (Figure 7), or None if no path exists within the box.  A search that
    pops more than ``max_gaps`` gaps gives up and also returns None, but
    marks ``stats`` as capped — truncation, not a proven blockage.  A
    timed ``budget`` (see :mod:`repro.core.budget`) is consulted every few
    dozen pops; exhaustion truncates the search exactly like the cap.
    """
    ca, xa = layer.point_cc(a)
    cb, xb = layer.point_cc(b)
    fs = _FreeSpace(layer, box, passable)
    if fs.is_empty or not fs.in_box(ca, xa) or not fs.in_box(cb, xb):
        return None
    if layer.backend != "python":
        return fastpath.trace_kernel(fs, ca, xa, cb, xb, max_gaps, stats, budget)
    start_index = fs.gap_index_at(ca, xa)
    if start_index is None:
        return None
    start: GapKey = (ca, start_index)
    parents: Dict[GapKey, Optional[GapKey]] = {start: None}
    goal: Optional[GapKey] = None
    slo, shi = fs.gaps(ca)[start_index]
    if ca == cb and slo <= xb <= shi:
        goal = start
    stack: List[GapKey] = [start]
    examined = 0
    capped = False
    while stack and goal is None:
        key = stack.pop()
        examined += 1
        if examined > max_gaps:
            capped = True
            break
        if (
            budget is not None
            and (examined & SEARCH_CHECK_MASK) == 0
            and budget.search_exceeded()
        ):
            capped = True
            break
        c, gi = key
        glo, ghi = fs.gaps(c)[gi]
        children: List[Tuple[int, GapKey]] = []
        for nkey, (nglo, nghi) in _adjacent_gaps(fs, c, glo, ghi):
            if nkey in parents:
                continue
            parents[nkey] = key
            if nkey[0] == cb and nglo <= xb <= nghi:
                goal = nkey
                break
            # Best-to-worst: nearest the destination searched first
            # (pushed last so the DFS pops it first).
            distance = abs(nkey[0] - cb) + _interval_distance(nglo, nghi, xb)
            children.append((distance, nkey))
        if goal is not None:
            break
        children.sort(key=lambda item: -item[0])
        stack.extend(k for _, k in children)
    if stats is not None:
        stats.note(examined, capped)
    if goal is None:
        return None
    chain: List[GapKey] = []
    node: Optional[GapKey] = goal
    while node is not None:
        chain.append(node)
        node = parents[node]
    chain.reverse()
    return _trim_chain(fs, chain, xa, xb)


def _trim_chain(
    fs: _FreeSpace, chain: List[GapKey], xa: int, xb: int
) -> List[ChannelPiece]:
    """Trim gap overlaps back to single junction points (Section 7.1).

    Junctions are chosen by clamping the destination coordinate into each
    overlap, working backwards from the target, which funnels the trace
    towards ``b`` and keeps it short.
    """
    channels = [c for c, _ in chain]
    gaps = [fs.gaps(c)[gi] for c, gi in chain]
    n = len(chain)
    if n == 1:
        return [(channels[0], min(xa, xb), max(xa, xb))]
    overlaps: List[Tuple[int, int]] = []
    for i in range(n - 1):
        (l1, h1), (l2, h2) = gaps[i], gaps[i + 1]
        overlaps.append((max(l1, l2), min(h1, h2)))
    junctions = [0] * (n - 1)
    desired = xb
    for i in range(n - 2, -1, -1):
        lo, hi = overlaps[i]
        junctions[i] = min(max(desired, lo), hi)
        desired = junctions[i]
    pieces: List[ChannelPiece] = []
    prev = xa
    for i in range(n - 1):
        j = junctions[i]
        pieces.append((channels[i], min(prev, j), max(prev, j)))
        prev = j
    pieces.append((channels[-1], min(prev, xb), max(prev, xb)))
    return pieces


def _explore_all(
    fs: _FreeSpace,
    start: GapKey,
    max_gaps: int,
    stats: Optional[SearchStats] = None,
    budget: Optional["BudgetTracker"] = None,
) -> Iterator[GapKey]:
    """Enumerate all gaps reachable from ``start``, up to ``max_gaps``.

    Counts popped gaps — the same accounting as :func:`trace` — so one
    ``max_gaps`` value caps both search shapes identically.  Hitting the
    cap (or an exhausted ``budget``) truncates the enumeration and marks
    ``stats`` as capped.
    """
    seen: Set[GapKey] = {start}
    stack = [start]
    examined = 0
    capped = False
    while stack:
        key = stack.pop()
        examined += 1
        if examined > max_gaps:
            capped = True
            break
        if (
            budget is not None
            and (examined & SEARCH_CHECK_MASK) == 0
            and budget.search_exceeded()
        ):
            capped = True
            break
        yield key
        c, gi = key
        glo, ghi = fs.gaps(c)[gi]
        for nkey, _ in _adjacent_gaps(fs, c, glo, ghi):
            if nkey not in seen:
                seen.add(nkey)
                stack.append(nkey)
    if stats is not None:
        stats.note(examined, capped)


def reachable_vias(
    layer: LayerData,
    a: GridPoint,
    box: Box,
    passable: FrozenSet[int],
    via_map: ViaMap,
    max_gaps: int = DEFAULT_MAX_GAPS,
    stats: Optional[SearchStats] = None,
    budget: Optional["BudgetTracker"] = None,
) -> List[ViaPoint]:
    """All free via sites reachable from ``a`` on one layer within ``box``.

    This is the paper's *Vias* procedure: it defines the "neighbors" of a
    via in the generalized Lee algorithm (Modification 1).  A site counts
    as free when the via map allows drilling for a passable owner.
    """
    ca, xa = layer.point_cc(a)
    fs = _FreeSpace(layer, box, passable)
    if fs.is_empty or not fs.in_box(ca, xa):
        return []
    a_via = (
        layer.grid.grid_to_via(a) if layer.grid.is_via_site(a) else None
    )
    if layer.backend != "python":
        return fastpath.reachable_vias_kernel(
            fs, ca, xa, a_via, via_map, passable, max_gaps, stats, budget
        )
    start_index = fs.gap_index_at(ca, xa)
    if start_index is None:
        return []
    found: List[ViaPoint] = []
    for c, gi in _explore_all(fs, (ca, start_index), max_gaps, stats, budget):
        if not layer.is_via_channel(c):
            continue
        glo, ghi = fs.gaps(c)[gi]
        for via in layer.via_sites_in(c, glo, ghi):
            if via != a_via and via_map.is_available(via, passable):
                found.append(via)
    return found


def obstructions(
    layer: LayerData,
    a: GridPoint,
    box: Box,
    passable: FrozenSet[int] = frozenset(),
    max_gaps: int = DEFAULT_MAX_GAPS,
    stats: Optional[SearchStats] = None,
) -> Set[int]:
    """Owners of the used segments immediately surrounding ``a`` (Section 7.3).

    Enumerates the free space around ``a`` exhaustively and collects the
    owner of every used segment bounding or flanking a visited gap — "the
    list of immediate obstacles that surround a point on a given layer",
    used to select victims to be ripped up.
    """
    ca, xa = layer.point_cc(a)
    fs = _FreeSpace(layer, box, passable)
    if fs.is_empty or not fs.in_box(ca, xa):
        return set()
    owners: Set[int] = set()
    channel_a = layer.channel(ca)
    start_index = fs.gap_index_at(ca, xa)
    if start_index is None:
        # The point itself is buried under another connection: that owner
        # is the obstruction.
        blocker = channel_a.owner_at(xa)
        if blocker is not None and blocker not in passable:
            owners.add(blocker)
        return owners
    for c, gi in _explore_all(fs, (ca, start_index), max_gaps, stats):
        channel = layer.channel(c)
        glo, ghi = fs.gaps(c)[gi]
        # Used segments bounding the gap along the channel.
        for x in (glo - 1, ghi + 1):
            if 0 <= x < layer.channel_length:
                owner = channel.owner_at(x)
                if owner is not None and owner not in passable:
                    owners.add(owner)
        # Used segments flanking the gap in the neighboring channels.
        for nc in (c - 1, c + 1):
            if 0 <= nc < layer.n_channels:
                owners |= layer.channel(nc).owners_in(glo, ghi, passable)
    return owners
