"""Wavefront cost functions for the generalized Lee search (Section 8.2).

Modification 3 replaces Lee's breadth-first guarantee with a cost-ordered
frontier.  Three cost functions from the paper:

* ``unit_cost`` — ``cost(n) = cost(p) + 1``, i.e. the hop count.  This is
  the original Lee behaviour under Modification 1: it guarantees the
  minimum number of vias but examines every (k-1)-via solution before any
  k-via one.
* ``distance_cost`` — ``cost(n) = distance(n, target)``.  Greedy; fast but
  "can lead to solutions that use many vias to circumvent minor obstacles".
* ``distance_hops_cost`` — ``cost(n) = distance(n, target) * hops(n)``,
  the compromise grr ships with: every via used in a path must bring
  progress towards the target.

Distances are Manhattan distances in via-grid units.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.grid.coords import ViaPoint, manhattan

#: cost(neighbor, target, hops_from_source) -> ordering key.
CostFunction = Callable[[ViaPoint, ViaPoint, int], float]


def unit_cost(neighbor: ViaPoint, target: ViaPoint, hops: int) -> float:
    """Original Lee ordering: frontier ordered by via count."""
    return float(hops)


def distance_cost(neighbor: ViaPoint, target: ViaPoint, hops: int) -> float:
    """Pure goal-directed ordering: remaining Manhattan distance."""
    return float(manhattan(neighbor, target))


def distance_hops_cost(
    neighbor: ViaPoint, target: ViaPoint, hops: int
) -> float:
    """The paper's compromise: remaining distance magnified by via count."""
    return float(manhattan(neighbor, target) * hops)


COST_FUNCTIONS: Dict[str, CostFunction] = {
    "unit": unit_cost,
    "distance": distance_cost,
    "distance_hops": distance_hops_cost,
}
