"""Vectorized wavefront kernels behind the router's backend seam.

The profile work of PR 3-7 keeps finding the same three inner loops at
the top of every flame graph: :func:`repro.core.single_layer.
reachable_vias` (the paper's *Vias* — the neighbor generator of every
Lee expansion), :func:`~repro.core.single_layer.trace` (the single-layer
path search behind the zero/one-via strategies and every retrace hop),
and the free-gap recomputes feeding both.  This module holds drop-in
kernels for those loops, selected at runtime by
``RouterConfig.backend``:

* ``"python"`` — the pure-python implementations in
  :mod:`repro.core.single_layer` / :mod:`repro.channels.channel`; the
  always-available, zero-dependency default.
* ``"numpy"`` — the kernels below: the DFS walks *full-span* per-channel
  gap arrays (:meth:`repro.channels.gap_cache.GapCache.full_bounds`)
  and clamps extents to the search box on the fly, so no box-clipped
  gap list is ever built on the hot path; adjacency windows come from
  bisect over the shared bound arrays instead of prefix scans; via-site
  enumeration and availability testing are batched through numpy over
  the whole search's frontier at once; and free-gap recomputes are
  vectorized over the channel's segment arrays.
* ``"auto"`` — ``"numpy"`` when numpy imports, else ``"python"``.

**Parity contract.**  A kernel must be *bit-for-bit* substitutable for
its pure-python twin: same routes, same
:class:`~repro.core.single_layer.SearchStats` (``searches`` /
``examined`` / ``cap_hits``), same truncation points at the
``max_gaps`` cap and at :data:`~repro.core.budget.SEARCH_CHECK_MASK`
budget checkpoints, and — because Lee heap entries tiebreak on the
``itertools.count`` discipline — the same *emission order* for every
neighbor list.  The kernels therefore replicate the exact pop order of
the python DFS (a stack, children pushed worst-to-best) and only batch
work whose evaluation order is unobservable: via availability is
checked against state that cannot change mid-search, so testing the
whole frontier's candidate sites in one vectorized sweep yields the
identical list the per-site loop produces.

Traversing full-span arrays instead of the python twin's box-clipped
lists is exact, not approximate: for a current gap clamped to
``[glo, ghi]`` (within the box, so ``glo >= lo`` and ``ghi <= hi``), a
neighbor's *full* gap overlaps it iff its *clipped* gap exists and
overlaps it — ``min(nghi, hi) >= glo ⟺ nghi >= glo`` since
``hi >= ghi >= glo``, and symmetrically for the other bound.  Clipped
lists are contiguous subranges of the full lists, so window order (and
hence pop order) is preserved, and clamped extents equal clipped
extents wherever the python twin reads them (distances, goal tests,
via ranges, chain trimming).  The hypothesis suite in
``tests/test_fastpath.py`` drives both backends over random channel
states and full boards to hold this contract.

numpy stays an *optional* dependency (``pip install repro[fast]``):
importing this module without numpy is fine, ``"auto"`` quietly falls
back, and only an explicit ``backend="numpy"`` raises.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, FrozenSet, List, Optional, Tuple

# Bound as a module (not ``from ... import SEARCH_CHECK_MASK``) because
# this module is reached through ``repro.channels`` while ``repro.core.
# budget`` is still mid-import; the constant is read at kernel entry,
# long after both modules have finished initialising.
from repro.channels.via_map import MIXED as _MIXED
from repro.core import budget as _budget
from repro.grid.coords import ViaPoint
from repro.grid.geometry import Orientation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.channels.channel import Channel
    from repro.channels.via_map import ViaMap
    from repro.core.budget import BudgetTracker
    from repro.core.single_layer import SearchStats, _FreeSpace

try:  # pragma: no cover - exercised via both CI backend legs
    import numpy as _np
except ImportError:  # pragma: no cover - the zero-dependency install
    _np = None

#: True when the numpy backend can be selected in this interpreter.
HAVE_NUMPY = _np is not None

#: The three recognised spellings of ``RouterConfig.backend``.
BACKENDS = ("auto", "python", "numpy")

#: Below this many candidate via sites a search's availability batch is
#: checked with the scalar loop: numpy's per-call overhead only pays for
#: itself on wider frontiers (with the probe inlined, the measured
#: crossover on the titan suite sits near two hundred sites; typical
#: frontiers are ~30).  The threshold compares deterministic counts,
#: never timings, so either path returns the identical list.
MIN_VECTOR_SITES = 192

#: Channels with fewer segments than this recompute their free gaps with
#: the pure-python walk even on the numpy backend; building the segment
#: array view costs more than the walk saves below this size.
MIN_VECTOR_SEGMENTS = 48


def resolve_backend(requested: str) -> str:
    """Map a ``RouterConfig.backend`` value to the backend to run.

    ``"auto"`` degrades silently to ``"python"`` when numpy is missing;
    an explicit ``"numpy"`` without numpy installed is a configuration
    error and raises.
    """
    if requested not in BACKENDS:
        raise ValueError(
            f"unknown backend {requested!r}; choose from {BACKENDS}"
        )
    if requested == "auto":
        return "numpy" if HAVE_NUMPY else "python"
    if requested == "numpy" and not HAVE_NUMPY:
        raise ValueError(
            "backend='numpy' requested but numpy is not installed "
            "(pip install repro[fast]); use backend='auto' to fall back"
        )
    return requested


# ----------------------------------------------------------------------
# free-gap scanning over the channel's segment arrays
# ----------------------------------------------------------------------


def free_gaps_vectorized(
    channel: "Channel", lo: int, hi: int
) -> List[Tuple[int, int]]:
    """``Channel.free_gaps(lo, hi)`` over numpy views of the segment arrays.

    Bit-identical to the python walk for the passable-free case (the gap
    cache's base recomputes — the hot ones); only worth calling above
    :data:`MIN_VECTOR_SEGMENTS` segments (the caller gates on size).
    The segment-array mirror is stamped with the channel generation, so
    repeat recomputes between mutations (distinct boxes) share one
    list-to-array conversion.
    """
    if hi < lo:
        return []
    mirror = channel.array_mirror
    if mirror is None or mirror[0] != channel.generation:
        seg_los, seg_his = channel.segment_bounds()
        mirror = (
            channel.generation,
            _np.array(seg_los, dtype=_np.int64),
            _np.array(seg_his, dtype=_np.int64),
        )
        channel.array_mirror = mirror
    _, los, his = mirror
    # Window of segments overlapping [lo, hi]: disjoint + sorted means
    # both bound arrays are sorted — the same bisect the python walk does.
    i = int(his.searchsorted(lo, side="left"))
    j = int(los.searchsorted(hi, side="right"))
    if i >= j:
        return [(lo, hi)]
    n = j - i
    # Gap k lies between blocker k-1 and blocker k; the edges are the box
    # bounds.  Disjointness means no merging is ever needed.
    starts = _np.empty(n + 1, dtype=_np.int64)
    starts[0] = lo
    _np.add(his[i:j], 1, out=starts[1:])
    ends = _np.empty(n + 1, dtype=_np.int64)
    ends[-1] = hi
    _np.subtract(los[i:j], 1, out=ends[:-1])
    keep = starts <= ends
    if not keep.all():
        starts = starts[keep]
        ends = ends[keep]
    return list(zip(starts.tolist(), ends.tolist()))


# ----------------------------------------------------------------------
# the DFS kernels (trace / reachable_vias)
# ----------------------------------------------------------------------


def trace_kernel(
    fs: "_FreeSpace",
    ca: int,
    xa: int,
    cb: int,
    xb: int,
    max_gaps: int,
    stats: Optional["SearchStats"] = None,
    budget: Optional["BudgetTracker"] = None,
) -> Optional[List[Tuple[int, int, int]]]:
    """The ``trace`` DFS over full-span gap arrays.

    Returns the trimmed channel pieces exactly as
    :func:`repro.core.single_layer.trace` would, or None exactly when
    the python DFS returns None (including a blocked start, which —
    like the twin — touches ``stats`` not at all).  Pop order, children
    sort order, cap and budget truncation points all replicate the twin
    bit for bit; see the module docstring for why full-span traversal
    with box clamping is exact.
    """
    layer = fs.layer
    lo, hi, passable = fs.lo, fs.hi, fs.passable
    cache = fs._cache
    full_bounds = cache.full_bounds
    # Inline replica of full_bounds' hit path; see reachable_vias_kernel.
    entries_get = cache._entries.get if cache.enabled else None
    channels = layer.channels
    no_pass = not passable
    stride = layer.channel_length + 1
    c_lo, c_hi = fs.c_lo, fs.c_hi
    # Per-search view memo, indexed by channel offset from the box edge
    # (a list probe beats a dict probe on this hottest of lookups).
    views = [None] * (c_hi - c_lo + 1)
    start_view = None
    if entries_get is not None:
        entry = entries_get(ca)
        if entry is not None and entry[0] == channels[ca].generation:
            start_view = entry[1] if no_pass else entry[3].get(passable)
            if start_view is False:
                start_view = None
            elif start_view is not None:
                cache.hits += 1
    if start_view is None:
        start_view = full_bounds(ca, passable)
    views[ca - c_lo] = start_view
    los_s = start_view[1]
    si = bisect_right(los_s, xa) - 1
    if si < 0 or start_view[2][si] < xa:
        return None
    start_lo = los_s[si]
    if start_lo < lo:
        start_lo = lo
    start_hi = start_view[2][si]
    if start_hi > hi:
        start_hi = hi
    start_key = ca * stride + si
    parents = {start_key: -1}
    goal = -1
    if ca == cb and start_lo <= xb <= start_hi:
        goal = start_key
    # Stack entries carry (key, channel, clamped lo, clamped hi) so a
    # pop never re-derives its gap from the views.
    stack = [(start_key, ca, start_lo, start_hi)]
    pop = stack.pop
    extend = stack.extend
    examined = 0
    capped = False
    check_mask = _budget.SEARCH_CHECK_MASK
    search_exceeded = None if budget is None else budget.search_exceeded
    while stack and goal < 0:
        key, c, glo, ghi = pop()
        examined += 1
        if examined > max_gaps:
            capped = True
            break
        if (
            search_exceeded is not None
            and (examined & check_mask) == 0
            and search_exceeded()
        ):
            capped = True
            break
        children: List[tuple] = []
        found_goal = -1
        for nc in (c - 1, c + 1):
            if nc < c_lo or nc > c_hi:
                continue
            nview = views[nc - c_lo]
            if nview is None:
                if entries_get is not None:
                    entry = entries_get(nc)
                    if (
                        entry is not None
                        and entry[0] == channels[nc].generation
                    ):
                        nview = (
                            entry[1] if no_pass else entry[3].get(passable)
                        )
                        if nview is False:
                            nview = None
                        elif nview is not None:
                            cache.hits += 1
                if nview is None:
                    nview = full_bounds(nc, passable)
                views[nc - c_lo] = nview
            los_n = nview[1]
            his_n = nview[2]
            i = bisect_left(his_n, glo)
            j = bisect_right(los_n, ghi, i)
            base = nc * stride
            for ngi in range(i, j):
                nkey = base + ngi
                if nkey in parents:
                    continue
                parents[nkey] = key
                nglo = los_n[ngi]
                if nglo < lo:
                    nglo = lo
                nghi = his_n[ngi]
                if nghi > hi:
                    nghi = hi
                if nc == cb and nglo <= xb <= nghi:
                    found_goal = nkey
                    break
                if xb < nglo:
                    distance = nglo - xb
                elif xb > nghi:
                    distance = xb - nghi
                else:
                    distance = 0
                children.append(
                    (distance + abs(nc - cb), (nkey, nc, nglo, nghi))
                )
            if found_goal >= 0:
                break
        if found_goal >= 0:
            goal = found_goal
            break
        # Best-to-worst, stable on ties — the python twin's
        # ``children.sort(key=lambda item: -item[0])``.
        children.sort(key=_negate_first)
        extend(item[1] for item in children)
    if stats is not None:
        stats.note(examined, capped)
    if goal < 0:
        return None
    chain: List[Tuple[int, int, int]] = []
    node = goal
    while node >= 0:
        c, gi = divmod(node, stride)
        view = views[c - c_lo]
        glo = view[1][gi]
        if glo < lo:
            glo = lo
        ghi = view[2][gi]
        if ghi > hi:
            ghi = hi
        chain.append((c, glo, ghi))
        node = parents[node]
    chain.reverse()
    return _trim_chain_extents(chain, xa, xb)


def _negate_first(item: Tuple[int, int]) -> int:
    return -item[0]


def _trim_chain_extents(
    chain: List[Tuple[int, int, int]], xa: int, xb: int
) -> List[Tuple[int, int, int]]:
    """``single_layer._trim_chain`` on ``(channel, lo, hi)`` extents.

    Same junction arithmetic; the clamped extents carried by the kernel
    equal the clipped extents the twin reads back from ``fs.gaps``.
    """
    n = len(chain)
    if n == 1:
        return [(chain[0][0], min(xa, xb), max(xa, xb))]
    overlaps: List[Tuple[int, int]] = []
    for i in range(n - 1):
        _, l1, h1 = chain[i]
        _, l2, h2 = chain[i + 1]
        overlaps.append((max(l1, l2), min(h1, h2)))
    junctions = [0] * (n - 1)
    desired = xb
    for i in range(n - 2, -1, -1):
        olo, ohi = overlaps[i]
        junctions[i] = min(max(desired, olo), ohi)
        desired = junctions[i]
    pieces: List[Tuple[int, int, int]] = []
    prev = xa
    for i in range(n - 1):
        j = junctions[i]
        pieces.append((chain[i][0], min(prev, j), max(prev, j)))
        prev = j
    pieces.append((chain[-1][0], min(prev, xb), max(prev, xb)))
    return pieces


def reachable_vias_kernel(
    fs: "_FreeSpace",
    ca: int,
    xa: int,
    a_via: Optional[ViaPoint],
    via_map: "ViaMap",
    passable: FrozenSet[int],
    max_gaps: int,
    stats: Optional["SearchStats"] = None,
    budget: Optional["BudgetTracker"] = None,
) -> List[ViaPoint]:
    """``reachable_vias``'s explore-and-collect on the fast path.

    The DFS replicates :func:`~repro.core.single_layer._explore_all`'s
    pop order exactly (a blocked start returns ``[]`` without touching
    ``stats``, like the twin); via-channel gaps are collected in pop
    order and their candidate sites expanded arithmetically and
    availability-tested in one numpy batch at the end.  Deferring the
    test is safe because nothing mutates the via map mid-search, and
    the flat (gap-pop order, ascending site) expansion is precisely the
    order the per-site python loop emits.
    """
    layer = fs.layer
    g = layer.grid.grid_per_via
    horizontal = layer.orientation is Orientation.HORIZONTAL
    lo, hi = fs.lo, fs.hi
    cache = fs._cache
    full_bounds = cache.full_bounds
    # Inline replica of full_bounds' *hit* path: entry layout is
    # [generation, base_full, base_clips, pass_fulls, pass_clips] (see
    # gap_cache), and the probed-once marker is ``False``.  Any miss —
    # absent entry, stale generation, marker — falls through to the
    # real method.  Inline hits still bump ``cache.hits`` so the
    # profile's cache-traffic counters stay meaningful on this backend.
    entries_get = cache._entries.get if cache.enabled else None
    channels = layer.channels
    no_pass = not passable
    stride = layer.channel_length + 1
    c_lo, c_hi = fs.c_lo, fs.c_hi
    # Per-search view memo, indexed by channel offset from the box edge.
    views = [None] * (c_hi - c_lo + 1)
    start_view = None
    if entries_get is not None:
        entry = entries_get(ca)
        if entry is not None and entry[0] == channels[ca].generation:
            start_view = entry[1] if no_pass else entry[3].get(passable)
            if start_view is False:
                start_view = None
            elif start_view is not None:
                cache.hits += 1
    if start_view is None:
        start_view = full_bounds(ca, passable)
    views[ca - c_lo] = start_view
    los_s = start_view[1]
    si = bisect_right(los_s, xa) - 1
    if si < 0 or start_view[2][si] < xa:
        return []
    slo = los_s[si]
    if slo < lo:
        slo = lo
    shi = start_view[2][si]
    if shi > hi:
        shi = hi
    seen = {ca * stride + si}
    seen_add = seen.add
    # Stack entries carry (channel, clamped lo, clamped hi); the packed
    # int key exists only inside ``seen``, so a pop touches no view.
    stack = [(ca, slo, shi)]
    pop = stack.pop
    append = stack.append
    examined = 0
    capped = False
    check_mask = _budget.SEARCH_CHECK_MASK
    search_exceeded = None if budget is None else budget.search_exceeded
    # Via-channel gaps are divided down to site ranges as they pop (in
    # emission order); _collect_sites only expands and probes them.
    rows_append = (rows_l := []).append
    slo_append = (site_los := []).append
    shi_append = (site_his := []).append
    total = 0
    while stack:
        c, glo, ghi = pop()
        examined += 1
        if examined > max_gaps:
            capped = True
            break
        if (
            search_exceeded is not None
            and (examined & check_mask) == 0
            and search_exceeded()
        ):
            capped = True
            break
        if not c % g:
            v_lo = (glo + g - 1) // g
            v_hi = ghi // g
            if v_hi >= v_lo:
                rows_append(c // g)
                slo_append(v_lo)
                shi_append(v_hi)
                total += v_hi - v_lo + 1
        # The two neighbor directions, unrolled (this is the hottest
        # loop on the board): c - 1 pushed first, then c + 1, exactly
        # like the twin's iteration order.
        nc = c - 1
        while True:
            if c_lo <= nc <= c_hi:
                nview = views[nc - c_lo]
                if nview is None:
                    if entries_get is not None:
                        entry = entries_get(nc)
                        if (
                            entry is not None
                            and entry[0] == channels[nc].generation
                        ):
                            nview = (
                                entry[1]
                                if no_pass
                                else entry[3].get(passable)
                            )
                            if nview is False:
                                nview = None
                            elif nview is not None:
                                cache.hits += 1
                    if nview is None:
                        nview = full_bounds(nc, passable)
                    views[nc - c_lo] = nview
                los_n = nview[1]
                his_n = nview[2]
                i = bisect_left(his_n, glo)
                j = bisect_right(los_n, ghi, i)
                base = nc * stride
                for ngi in range(i, j):
                    nkey = base + ngi
                    if nkey not in seen:
                        seen_add(nkey)
                        nglo = los_n[ngi]
                        if nglo < lo:
                            nglo = lo
                        nghi = his_n[ngi]
                        if nghi > hi:
                            nghi = hi
                        append((nc, nglo, nghi))
            if nc > c:
                break
            nc = c + 1
    if stats is not None:
        stats.note(examined, capped)
    if not total:
        return []
    return _collect_sites(
        rows_l, site_los, site_his, total, horizontal, a_via, via_map,
        passable,
    )


def _collect_sites(
    chans_l: List[int],
    los_l: List[int],
    his_l: List[int],
    total: int,
    horizontal: bool,
    a_via: Optional[ViaPoint],
    via_map: "ViaMap",
    passable: FrozenSet[int],
) -> List[ViaPoint]:
    """Expand via-site ranges to available sites, in emission order.

    ``chans_l``/``los_l``/``his_l`` are parallel lists of inclusive
    via-coordinate ranges in gap-pop order, ``total`` their combined
    site count (``> 0``).
    """
    if total < MIN_VECTOR_SITES:
        # Narrow frontier: the scalar loop beats numpy's call overhead.
        # Candidates are filtered on bare coordinates; only survivors
        # become ViaPoint objects (the python twin filters ViaPoints,
        # but equality and probe accounting are coordinate-wise, so the
        # emitted list and counters are identical).
        found: List[ViaPoint] = []
        # Inline of via_map.is_available_xy: free sites (count zero) are
        # available to everyone, covered sites only when solely owned by
        # a passable owner.  The probe tally is added in one lump — the
        # per-candidate accounting is identical to the method calls.
        count = via_map._count
        via_ny = via_map.via_ny
        sole_get = via_map._sole.get
        probes = 0
        a_vx = a_via.vx if a_via is not None else -1
        a_vy = a_via.vy if a_via is not None else -1
        for vc, v_lo, v_hi in zip(chans_l, los_l, his_l):
            for v in range(v_lo, v_hi + 1):
                vx, vy = (v, vc) if horizontal else (vc, v)
                if vx == a_vx and vy == a_vy:
                    continue
                probes += 1
                if not count[vx * via_ny + vy]:
                    found.append(ViaPoint(vx, vy))
                else:
                    sole = sole_get((vx, vy))
                    if sole is not _MIXED and sole in passable:
                        found.append(ViaPoint(vx, vy))
        via_map.probe_count += probes
        return found
    starts = _np.array(los_l, dtype=_np.int64)
    reps = _np.array(his_l, dtype=_np.int64)
    reps -= starts
    reps += 1
    chans = _np.array(chans_l, dtype=_np.int64)
    ends = _np.cumsum(reps)
    sites = _np.repeat(starts - (ends - reps), reps) + _np.arange(total)
    chan_flat = _np.repeat(chans, reps)
    if horizontal:
        vx, vy = sites, chan_flat
    else:
        vx, vy = chan_flat, sites
    if a_via is not None:
        keep = (vx != a_via.vx) | (vy != a_via.vy)
        if not keep.all():
            vx = vx[keep]
            vy = vy[keep]
    mask = via_map.available_mask(vx, vy, passable)
    return list(map(ViaPoint, vx[mask].tolist(), vy[mask].tolist()))


def band_available_kernel(
    via_map: "ViaMap", xs: List[int], ys: List[int], passable: FrozenSet[int]
) -> List[bool]:
    """numpy twin of the lower-bound band scan's availability probes.

    ``repro.core.bounds`` collects the candidate arrival-band sites for
    a target and asks which are available; this kernel answers with one
    :meth:`ViaMap.available_mask` sweep.  Bit-for-bit parity with the
    scalar loop (one ``is_available_xy`` per site, same order) holds by
    the mask's own contract — values and ``probe_count`` included — so
    goal-mode routes cannot depend on which backend built the bounds.
    """
    vx = _np.asarray(xs, dtype=_np.int64)
    vy = _np.asarray(ys, dtype=_np.int64)
    return via_map.available_mask(vx, vy, passable).tolist()
