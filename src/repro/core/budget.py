"""Routing budgets: wall-clock deadlines and unified search limits.

The paper's router is bounded everywhere it could loop — Lee expansion
caps, the ``max_gaps`` search cap, bounded rip-up rounds, the pass
progress guard ("this stops infinite looping on impossible problems",
Section 8.4) — but none of those bounds is a *wall-clock* bound.  One
pathological board could still pin a worker for an arbitrary time.

:class:`RouteBudget` gathers every bound in one frozen value object:

* ``deadline_seconds`` — total wall clock for the whole ``route()`` call;
* ``per_connection_seconds`` — wall clock per connection (all strategy
  attempts and rip-up rounds for that connection together);
* ``max_lee_expansions`` / ``max_gaps`` / ``max_ripup_rounds`` — the
  paper's effort caps, previously loose ``RouterConfig`` knobs.

:class:`BudgetTracker` is the runtime companion: routers create one per
``route()`` call and thread it through the strategy stack as cooperative
checkpoints.  Exhaustion never raises — checkpoints *report* exhaustion
and the routing loops unwind gracefully, returning a partial
:class:`~repro.core.result.RoutingResult` with ``stopped_reason`` set,
the same way a capped Lee search reports "wavefront exhausted (gap cap)"
instead of a false blockage.

Cost discipline: an *untimed* budget (no deadline set, the default) must
not change routing output or cost anything measurable.  Routers therefore
pass ``tracker.hot()`` — which is ``None`` when untimed — into the hot
search loops, so the per-iteration cost of the feature is a single
``budget is not None`` test, and the timed checks themselves are gated to
every few dozen iterations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.obs.events import BudgetCheckpoint, BudgetExhausted
from repro.obs.sinks import NULL_SINK, EventSink

#: Default effort caps; identical to the pre-budget ``RouterConfig``
#: defaults so an unconfigured budget reproduces historical behaviour.
DEFAULT_MAX_LEE_EXPANSIONS = 4000
DEFAULT_MAX_GAPS = 20000
DEFAULT_MAX_RIPUP_ROUNDS = 10

#: Reason strings carried by ``RoutingResult.stopped_reason`` and the
#: per-connection ``failure_reasons`` map.
STOP_DEADLINE = "deadline"
STOP_CONNECTION = "connection_timeout"
STOP_STALLED = "stalled"
STOP_MAX_PASSES = "max_passes"
#: Per-connection failure reason when every strategy and rip-up round was
#: genuinely exhausted (as opposed to the clock running out first).
FAIL_BLOCKED = "blocked"


@dataclass(frozen=True)
class RouteBudget:
    """Every bound on one routing call, as a single frozen value.

    All-defaults (``RouteBudget()``) is *untimed*: no wall-clock limits,
    and the effort caps equal the paper-era ``RouterConfig`` defaults, so
    routing output is identical to the pre-budget router.
    """

    #: Total wall-clock limit for the whole ``route()`` call; None = no
    #: limit.  On exhaustion the router stops starting new work, keeps
    #: everything already installed, and reports ``stopped_reason =
    #: "deadline"``.
    deadline_seconds: Optional[float] = None
    #: Wall-clock limit per connection (strategies + rip-up rounds
    #: together); None = no limit.  An exhausted connection fails with
    #: reason ``"connection_timeout"`` and routing moves on.
    per_connection_seconds: Optional[float] = None
    #: Lee wavefront expansion cap (Section 8.2's safety bound).
    max_lee_expansions: int = DEFAULT_MAX_LEE_EXPANSIONS
    #: Gaps examined per single-layer search before truncation (§7).
    max_gaps: int = DEFAULT_MAX_GAPS
    #: Rip-up-and-retry rounds per connection (§8.3).
    max_ripup_rounds: int = DEFAULT_MAX_RIPUP_ROUNDS

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds < 0:
            raise ValueError("deadline_seconds must be non-negative")
        if (
            self.per_connection_seconds is not None
            and self.per_connection_seconds < 0
        ):
            raise ValueError("per_connection_seconds must be non-negative")
        if self.max_lee_expansions < 0:
            raise ValueError("max_lee_expansions must be non-negative")
        if self.max_gaps < 0:
            raise ValueError("max_gaps must be non-negative")
        if self.max_ripup_rounds < 0:
            raise ValueError("max_ripup_rounds must be non-negative")

    @property
    def timed(self) -> bool:
        """True when any wall-clock limit is set."""
        return (
            self.deadline_seconds is not None
            or self.per_connection_seconds is not None
        )


class BudgetTracker:
    """Runtime clock for one routing call's :class:`RouteBudget`.

    One tracker is created per top-level ``route()`` call (the parallel
    router shares its tracker with the serial residue phase so the whole
    call honors one deadline).  Exhaustion is *latched*: once the total
    deadline has been observed exceeded the tracker keeps reporting it,
    so every later checkpoint unwinds instead of re-measuring.
    """

    __slots__ = (
        "budget",
        "sink",
        "started",
        "checkpoints",
        "deadline_hit",
        "_clock",
        "_deadline_at",
        "_deadline_emitted",
        "_conn_id",
        "_conn_deadline_at",
        "_conn_hit",
        "_conn_emitted",
    )

    def __init__(
        self,
        budget: RouteBudget,
        sink: EventSink = NULL_SINK,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.budget = budget
        self.sink = sink
        self._clock = clock
        self.started = clock()
        self.checkpoints = 0
        #: Latched: the total deadline has been observed exceeded.
        self.deadline_hit = False
        self._deadline_at = (
            self.started + budget.deadline_seconds
            if budget.deadline_seconds is not None
            else None
        )
        self._deadline_emitted = False
        self._conn_id: Optional[int] = None
        self._conn_deadline_at: Optional[float] = None
        self._conn_hit = False
        self._conn_emitted = False

    # ------------------------------------------------------------------
    # cheap predicates for the hot paths
    # ------------------------------------------------------------------

    @property
    def timed(self) -> bool:
        """True when any wall-clock limit can ever fire."""
        return self.budget.timed

    def hot(self) -> Optional["BudgetTracker"]:
        """Self when timed, else None.

        Hot loops receive this value so an untimed run pays exactly one
        ``budget is not None`` test per checkpoint site and the routing
        output is trivially bit-identical to a budget-free build.
        """
        return self if self.budget.timed else None

    def elapsed(self) -> float:
        """Seconds since the tracker (i.e. the routing call) started."""
        return self._clock() - self.started

    def remaining(self) -> Optional[float]:
        """Seconds left on the total deadline; None when unlimited."""
        if self._deadline_at is None:
            return None
        return max(0.0, self._deadline_at - self._clock())

    def search_exceeded(self) -> bool:
        """Combined deadline check for inner search loops.

        Returns True when either the total deadline or the current
        connection's allowance is exhausted.  Latches the total deadline
        but emits no events — the coarse checkpoints that observe the
        latch report the exhaustion exactly once.
        """
        if self.deadline_hit or self._conn_hit:
            return True
        now = self._clock()
        if self._deadline_at is not None and now >= self._deadline_at:
            self.deadline_hit = True
            return True
        if (
            self._conn_deadline_at is not None
            and now >= self._conn_deadline_at
        ):
            self._conn_hit = True
            return True
        return False

    # ------------------------------------------------------------------
    # coarse checkpoints (pass / wave / connection granularity)
    # ------------------------------------------------------------------

    def checkpoint(self, context: str) -> None:
        """Record a coarse progress checkpoint (pass or wave boundary)."""
        if not self.budget.timed:
            return
        self.checkpoints += 1
        if self.sink.enabled:
            self.sink.emit(
                BudgetCheckpoint(context, self.elapsed(), self.remaining())
            )

    def deadline_exceeded(self, context: str) -> bool:
        """Check (and latch) the total deadline at a coarse boundary.

        The first observation emits one
        :class:`~repro.obs.events.BudgetExhausted` event; later calls
        return True silently.
        """
        if self._deadline_at is None:
            return False
        if not self.deadline_hit:
            if self._clock() < self._deadline_at:
                return False
            self.deadline_hit = True
        # The latch may have been set silently by ``search_exceeded`` in
        # an inner loop; whichever coarse boundary observes it first owns
        # the (single) exhaustion event.
        if not self._deadline_emitted:
            self._deadline_emitted = True
            if self.sink.enabled:
                self.sink.emit(
                    BudgetExhausted(
                        STOP_DEADLINE,
                        context,
                        self.elapsed(),
                        self.budget.deadline_seconds or 0.0,
                    )
                )
        return True

    def start_connection(self, conn_id: int) -> None:
        """Open a fresh per-connection allowance for ``conn_id``."""
        self._conn_hit = False
        self._conn_emitted = False
        if self.budget.per_connection_seconds is None:
            return
        self._conn_id = conn_id
        self._conn_deadline_at = (
            self._clock() + self.budget.per_connection_seconds
        )

    def connection_exceeded(self, context: str = "") -> bool:
        """Check the current connection's allowance (emits once)."""
        if self._conn_deadline_at is None:
            return False
        if not self._conn_hit:
            if self._clock() < self._conn_deadline_at:
                return False
            self._conn_hit = True
        if not self._conn_emitted:
            self._conn_emitted = True
            if self.sink.enabled:
                self.sink.emit(
                    BudgetExhausted(
                        STOP_CONNECTION,
                        context or f"connection {self._conn_id}",
                        self.elapsed(),
                        self.budget.per_connection_seconds or 0.0,
                    )
                )
        return True

    def exceeded_scope(self, context: str = "") -> Optional[str]:
        """Which budget scope is exhausted right now, if any.

        Returns :data:`STOP_DEADLINE`, :data:`STOP_CONNECTION` or None.
        The total deadline takes precedence: a connection that ran out of
        wall clock because the whole call did is a deadline stop.
        """
        if self.deadline_exceeded(context):
            return STOP_DEADLINE
        if self.connection_exceeded(context):
            return STOP_CONNECTION
        return None


#: How often (in loop iterations) the inner search loops consult the
#: tracker's clock.  Power of two so the test compiles to a mask.
SEARCH_CHECK_MASK = 63
