"""CPU profiling of the router's strategy stack.

Section 12: "The most effective tools for improving program performance
were ... profiles of the CPU usage of each procedure in the program.  The
profiles allowed design effort to be concentrated in that small part of
the program where there were large potential performance gains."

Section 8.2's headline profile result: once the optimal strategies have
routed ~90% of the connections, "finding solutions for [the rest]
represents well over 90% of CPU time for difficult boards" — i.e. Lee
dominates the profile.  ``benchmarks/bench_profile.py`` (E12) checks that.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class PhaseTiming:
    """Accumulated calls and wall time of one router phase."""

    calls: int = 0
    seconds: float = 0.0


@dataclass
class RouterProfile:
    """Per-phase timing of a routing run."""

    phases: Dict[str, PhaseTiming] = field(default_factory=dict)

    @contextmanager
    def measure(self, phase: str) -> Iterator[None]:
        """Time one call of a phase."""
        timing = self.phases.setdefault(phase, PhaseTiming())
        timing.calls += 1
        started = time.perf_counter()
        try:
            yield
        finally:
            timing.seconds += time.perf_counter() - started

    @property
    def total_seconds(self) -> float:
        """Wall time across all measured phases."""
        return sum(t.seconds for t in self.phases.values())

    def fraction(self, phase: str) -> float:
        """Share of measured time spent in one phase (0..1)."""
        total = self.total_seconds
        if total == 0:
            return 0.0
        return self.phases.get(phase, PhaseTiming()).seconds / total

    def rows(self) -> list:
        """Table rows sorted by time, for reporting."""
        total = self.total_seconds
        rows = []
        for phase, timing in sorted(
            self.phases.items(), key=lambda item: -item[1].seconds
        ):
            rows.append(
                {
                    "phase": phase,
                    "calls": timing.calls,
                    "seconds": round(timing.seconds, 3),
                    "pct": round(
                        100 * timing.seconds / total if total else 0.0, 1
                    ),
                }
            )
        return rows
