"""CPU profiling of the router's strategy stack.

Section 12: "The most effective tools for improving program performance
were ... profiles of the CPU usage of each procedure in the program.  The
profiles allowed design effort to be concentrated in that small part of
the program where there were large potential performance gains."

Section 8.2's headline profile result: once the optimal strategies have
routed ~90% of the connections, "finding solutions for [the rest]
represents well over 90% of CPU time for difficult boards" — i.e. Lee
dominates the profile.  ``benchmarks/bench_profile.py`` (E12) checks that.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class PhaseTiming:
    """Accumulated calls and wall time of one router phase."""

    calls: int = 0
    seconds: float = 0.0


@dataclass
class RouterProfile:
    """Per-phase timing and event counters of a routing run."""

    phases: Dict[str, PhaseTiming] = field(default_factory=dict)
    #: Named event tallies (``gap_cache_hits``, ``gap_cache_misses``,
    #: ``cap_hits``, ...) — merged across workers like the phases are.
    counters: Dict[str, int] = field(default_factory=dict)
    #: Live nesting depth per phase; only the outermost ``measure`` of a
    #: phase accumulates wall time, so re-entrant calls don't double-count.
    _depth: Dict[str, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    @contextmanager
    def measure(self, phase: str) -> Iterator[None]:
        """Time one call of a phase.

        Re-entrant calls on the same phase count as calls but only the
        outermost frame adds elapsed wall time — nested frames would
        otherwise be counted twice (once themselves, once inside their
        caller's interval).
        """
        timing = self.phases.setdefault(phase, PhaseTiming())
        timing.calls += 1
        depth = self._depth.get(phase, 0)
        self._depth[phase] = depth + 1
        started = time.perf_counter()
        try:
            yield
        finally:
            self._depth[phase] -= 1
            if depth == 0:
                timing.seconds += time.perf_counter() - started

    def bump(self, counter: str, amount: int = 1) -> None:
        """Add ``amount`` to one named counter."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def merge(self, other: "RouterProfile") -> "RouterProfile":
        """Fold another profile's phases and counters into this one
        (returns self).

        Used by the parallel router to aggregate the per-worker profiles
        returned from routing waves into the master profile.
        """
        for phase, timing in other.phases.items():
            mine = self.phases.setdefault(phase, PhaseTiming())
            mine.calls += timing.calls
            mine.seconds += timing.seconds
        for counter, amount in other.counters.items():
            self.bump(counter, amount)
        return self

    @property
    def total_seconds(self) -> float:
        """Wall time across all measured phases."""
        return sum(t.seconds for t in self.phases.values())

    def fraction(self, phase: str) -> float:
        """Share of measured time spent in one phase (0..1)."""
        total = self.total_seconds
        if total == 0:
            return 0.0
        return self.phases.get(phase, PhaseTiming()).seconds / total

    def rows(self) -> list:
        """Table rows sorted by time, for reporting."""
        total = self.total_seconds
        rows = []
        for phase, timing in sorted(
            self.phases.items(), key=lambda item: -item[1].seconds
        ):
            rows.append(
                {
                    "phase": phase,
                    "calls": timing.calls,
                    "seconds": round(timing.seconds, 3),
                    "pct": round(
                        100 * timing.seconds / total if total else 0.0, 1
                    ),
                }
            )
        return rows
