"""Reusable goal-oriented distance lower bounds for the Lee search.

The paper's wavefront heuristic ``distance(n, target) * hops`` guides the
search but never *prunes*: every reachable via stays expandable even when
a sound bound proves it cannot beat the best known meeting path.  Ahrens
et al. (arXiv 2111.06169) show that goal-oriented search with
precomputed, **reusable** lower bounds is the dominant speedup for bulk
and incremental detailed routing.  This module supplies those bounds to
``search="goal"`` mode (see :mod:`repro.core.lee`).

Two bounds are served per (target, passable) pair, both in via-grid
units and both valid for the search metric goal mode orders on — the
accumulated Manhattan length of the via-waypoint chain:

* :meth:`TargetBounds.lower_bound` — distance.  The floor is plain
  Manhattan distance (the rectilinear analogue of the octile bound, and
  the fallback whenever the interval scan cannot strengthen it).  On top
  of that sits a *channel-interval* refinement derived from via-site
  availability around the target: the final hop onto the target must
  start at an available via site inside the target's arrival band (rows
  within ``radius`` on a horizontal layer, columns within ``radius`` on
  a vertical one — the strip geometry of
  :meth:`repro.grid.routing_grid.RoutingGrid.via_strip`).  When the
  nearest such landing column/row sits ``D`` via units away, any
  approach from closer than ``D`` must overshoot and come back, which
  adds ``2*D - |delta|`` to the straight-line cost.  Near congested
  pins — exactly where Lee searches blow up — this lifts the bound well
  above Manhattan.
* :meth:`TargetBounds.hop_bound` — a floor on remaining *hops* from the
  per-hop strip geometry: a horizontal-layer hop moves at most
  ``radius`` via rows off its channel (and any distance along it), a
  vertical-layer hop at most ``radius`` via columns.  On
  single-orientation boards this exposes provably unreachable targets
  (``HOPS_UNREACHABLE``), which goal mode prunes outright.

Entries live in a :class:`LowerBoundCache` with the same invalidation
discipline as :class:`repro.channels.gap_cache.GapCache`: generation
stamps, lazy revalidation at lookup, no explicit invalidation calls.
The stamps are the via map's per-row/per-column mutation generations
(:attr:`repro.channels.via_map.ViaMap.row_gen` / ``col_gen``), bumped by
the same ``add_segment``/``remove_segment`` funnel that bumps
``Channel.generation`` — an entry goes stale exactly when a mutation
touches the via rows or columns of its arrival bands, so warm entries
survive across connections, waves, and ECO edits untouched by the bands.

Because a rebuilt entry is a pure function of current board state (never
of cache history), warm and cold caches always serve identical values —
the property that makes python/numpy and workers 1-vs-4 parity *within*
goal mode structurally safe.  The band scan itself dispatches on the
workspace backend: the scalar loop and the
:func:`repro.core.fastpath.band_available_kernel` numpy twin probe the
same sites in the same order (``ViaMap.probe_count`` included).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, List, Tuple

# Import the channels package before repro.core.fastpath: fastpath and
# repro.channels.gap_cache import each other, and the cycle only
# resolves when channels/__init__ is entered first (fastpath's own
# channels import targets the via_map submodule directly, which doesn't
# need the package init to have finished; gap_cache's fastpath import
# needs the whole module).  Every pre-existing path into fastpath goes
# through a workspace import, so this module must too.
import repro.channels  # noqa: F401  (import-order anchor, see above)
from repro.core import fastpath
from repro.grid.coords import ViaPoint, manhattan
from repro.grid.geometry import Orientation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.channels.workspace import RoutingWorkspace

#: The two recognised spellings of ``RouterConfig.search``.
SEARCH_MODES = ("classic", "goal")

#: How far (in via units) the band scan looks for an available landing
#: site on each side of the target before giving up.  Beyond the horizon
#: the true distance can only be larger, so the capped value stays a
#: lower bound — the refinement just stops growing.
BAND_HORIZON = 12

#: ``hop_bound`` result meaning the target is provably unreachable by
#: the hop geometry (single-orientation board, ``radius`` too small to
#: ever change the cross coordinate).  Any finite expansion budget is
#: exceeded by it.
HOPS_UNREACHABLE = 1 << 30


class TargetBounds:
    """Lower bounds toward one target for one passable set.

    Immutable after construction; rebuilt (never patched) when stale.
    All distances are via-grid-unit integers, so heap keys built from
    them stay exact across backends.
    """

    __slots__ = (
        "target",
        "radius",
        "has_h",
        "has_v",
        "d_left",
        "d_right",
        "d_down",
        "d_up",
        "stamp",
    )

    def __init__(
        self,
        target: ViaPoint,
        radius: int,
        has_h: bool,
        has_v: bool,
        d_left: int,
        d_right: int,
        d_down: int,
        d_up: int,
        stamp: Tuple[int, ...],
    ) -> None:
        self.target = target
        self.radius = radius
        self.has_h = has_h
        self.has_v = has_v
        #: Via units from the target to the nearest available landing
        #: column on its left/right inside the horizontal arrival band
        #: (``BAND_HORIZON + 1`` when none was found within the horizon).
        self.d_left = d_left
        self.d_right = d_right
        #: Same for the nearest landing row below/above inside the
        #: vertical arrival band.
        self.d_down = d_down
        self.d_up = d_up
        #: Via-map row/col generations the entry was computed under.
        self.stamp = stamp

    def lower_bound(self, via: ViaPoint) -> int:
        """Admissible lower bound on the waypoint-chain length to target.

        Any route ends with a hop from an available via site ``p`` inside
        an arrival band onto the target ``t``; the chain length from
        ``via`` is at least ``manhattan(via, p) + manhattan(p, t)``.
        Minimising over each band's nearest available sites (one per
        side) gives the per-orientation bounds combined here.  Never
        below plain Manhattan distance.
        """
        t = self.target
        dx = via.vx - t.vx
        dy = via.vy - t.vy
        if dx == 0 and dy == 0:
            return 0
        adx = -dx if dx < 0 else dx
        ady = -dy if dy < 0 else dy
        base = adx + ady
        refined = HOPS_UNREACHABLE
        if self.has_h:
            # Arrive on a horizontal layer: p in the row band, so the
            # x-detour is governed by the nearest landing columns.
            if dx <= -self.d_left:
                x_part = -dx
            elif dx >= self.d_right:
                x_part = dx
            else:
                x_part = min(dx + 2 * self.d_left, 2 * self.d_right - dx)
            h_bound = ady + x_part
            if h_bound < refined:
                refined = h_bound
        if self.has_v:
            if dy <= -self.d_down:
                y_part = -dy
            elif dy >= self.d_up:
                y_part = dy
            else:
                y_part = min(dy + 2 * self.d_down, 2 * self.d_up - dy)
            v_bound = adx + y_part
            if v_bound < refined:
                refined = v_bound
        if refined > base and refined < HOPS_UNREACHABLE:
            return refined
        return base

    def hop_bound(self, via: ViaPoint) -> int:
        """Floor on remaining hops to the target from strip geometry.

        A horizontal-layer hop changes the via row by at most ``radius``
        (a vertical-layer hop the via column); with both orientations
        available two hops always suffice geometrically, so the value
        only bites near exhausted budgets — and on single-orientation
        boards, where it can prove a target unreachable outright.
        """
        t = self.target
        dx = via.vx - t.vx
        dy = via.vy - t.vy
        if dx == 0 and dy == 0:
            return 0
        adx = -dx if dx < 0 else dx
        ady = -dy if dy < 0 else dy
        r = self.radius
        if self.has_h and self.has_v:
            if ady <= r or adx <= r:
                return 1
            return 2
        if self.has_h:
            if ady == 0:
                return 1
            if r == 0:
                return HOPS_UNREACHABLE
            return -(-ady // r)  # ceil
        if self.has_v:
            if adx == 0:
                return 1
            if r == 0:
                return HOPS_UNREACHABLE
            return -(-adx // r)
        return HOPS_UNREACHABLE


class LowerBoundCache:
    """Generation-stamped cache of :class:`TargetBounds` entries.

    One per workspace (see ``RoutingWorkspace.lower_bounds``), shared by
    every goal-mode search against it.  Lookup revalidates the entry's
    stamp against the via map's row/col generations and rebuilds in
    place when stale; ``hits``/``rebuilds`` feed the ``lb_hits`` /
    ``lb_rebuilds`` profile counters and the ``bounds_stats`` obs event.
    """

    def __init__(self, workspace: "RoutingWorkspace") -> None:
        self.workspace = workspace
        self._entries: Dict[
            Tuple[ViaPoint, FrozenSet[int], int], TargetBounds
        ] = {}
        self.hits = 0
        self.rebuilds = 0

    # ------------------------------------------------------------------
    # lookup (the only public entry point)
    # ------------------------------------------------------------------

    def lookup(
        self, target: ViaPoint, passable: FrozenSet[int], radius: int
    ) -> TargetBounds:
        """The bounds toward ``target`` for ``passable``, warm or rebuilt."""
        key = (target, passable, radius)
        stamp = self._stamp(target, radius)
        entry = self._entries.get(key)
        if entry is not None and entry.stamp == stamp:
            self.hits += 1
            return entry
        entry = self._build(target, passable, radius, stamp)
        self._entries[key] = entry
        self.rebuilds += 1
        return entry

    def stats(self) -> Tuple[int, int]:
        """(hits, rebuilds) since construction or :meth:`reset_stats`."""
        return self.hits, self.rebuilds

    def reset_stats(self) -> None:
        self.hits = 0
        self.rebuilds = 0

    def clear(self) -> None:
        """Drop every entry (stats survive)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # stamping
    # ------------------------------------------------------------------

    def _stamp(self, target: ViaPoint, radius: int) -> Tuple[int, ...]:
        """Via-map generations of the target's arrival bands.

        Any availability change inside the horizontal band happens at a
        site whose via row is stamped; any change inside the vertical
        band at a site whose via column is stamped — so a matching stamp
        proves every probe of the band scan would answer the same today.
        """
        via_map = self.workspace.via_map
        row_gen = via_map.row_gen
        col_gen = via_map.col_gen
        ny = via_map.via_ny
        nx = via_map.via_nx
        rows = range(
            max(0, target.vy - radius), min(ny - 1, target.vy + radius) + 1
        )
        cols = range(
            max(0, target.vx - radius), min(nx - 1, target.vx + radius) + 1
        )
        return tuple(row_gen[y] for y in rows) + tuple(
            col_gen[x] for x in cols
        )

    # ------------------------------------------------------------------
    # rebuild: the channel-interval band scan
    # ------------------------------------------------------------------

    def _build(
        self,
        target: ViaPoint,
        passable: FrozenSet[int],
        radius: int,
        stamp: Tuple[int, ...],
    ) -> TargetBounds:
        """Scan the arrival bands for their nearest available landings.

        Both backends probe the exact same candidate list in the same
        order (no early exit), so values *and* ``ViaMap.probe_count``
        match bit for bit between the scalar loop and the numpy kernel.
        """
        ws = self.workspace
        via_map = ws.via_map
        nx, ny = via_map.via_nx, via_map.via_ny
        has_h = any(
            layer.orientation is Orientation.HORIZONTAL
            for layer in ws.layers
        )
        has_v = any(
            layer.orientation is Orientation.VERTICAL
            for layer in ws.layers
        )
        tx, ty = target.vx, target.vy
        xs: List[int] = []
        ys: List[int] = []
        if has_h:
            rows = range(max(0, ty - radius), min(ny - 1, ty + radius) + 1)
            for x in range(max(0, tx - BAND_HORIZON),
                           min(nx - 1, tx + BAND_HORIZON) + 1):
                for y in rows:
                    if x == tx and y == ty:
                        continue  # the target itself is not a landing
                    xs.append(x)
                    ys.append(y)
        h_sites = len(xs)
        if has_v:
            cols = range(max(0, tx - radius), min(nx - 1, tx + radius) + 1)
            for y in range(max(0, ty - BAND_HORIZON),
                           min(ny - 1, ty + BAND_HORIZON) + 1):
                for x in cols:
                    if x == tx and y == ty:
                        continue
                    xs.append(x)
                    ys.append(y)
        if (
            ws.backend == "numpy"
            and fastpath.HAVE_NUMPY
            and len(xs) >= fastpath.MIN_VECTOR_SITES
        ):
            available = fastpath.band_available_kernel(
                via_map, xs, ys, passable
            )
        else:
            is_available = via_map.is_available_xy
            available = [is_available(x, y, passable) for x, y in zip(xs, ys)]
        cap = BAND_HORIZON + 1
        d_left = d_right = d_down = d_up = cap
        for i in range(h_sites):
            if not available[i]:
                continue
            off = xs[i] - tx
            if off < 0:
                if -off < d_left:
                    d_left = -off
            elif off < d_right:
                d_right = off
        for i in range(h_sites, len(xs)):
            if not available[i]:
                continue
            off = ys[i] - ty
            if off < 0:
                if -off < d_down:
                    d_down = -off
            elif off < d_up:
                d_up = off
        return TargetBounds(
            target, radius, has_h, has_v,
            d_left, d_right, d_down, d_up, stamp,
        )

    # ------------------------------------------------------------------
    # pickling: snapshots start cold, like the gap cache
    # ------------------------------------------------------------------

    def __getstate__(self):
        return self.workspace

    def __setstate__(self, workspace) -> None:
        self.workspace = workspace
        self._entries = {}
        self.hits = 0
        self.rebuilds = 0


def chain_cost(waypoints: List[ViaPoint]) -> int:
    """Accumulated Manhattan length of a via-waypoint chain, in via units.

    The metric goal mode's ``g`` accumulates and its bounds must stay
    under — exported for the admissibility property tests.
    """
    return sum(
        manhattan(waypoints[i], waypoints[i + 1])
        for i in range(len(waypoints) - 1)
    )
