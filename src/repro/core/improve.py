"""Post-routing improvement: re-route the worst detours.

Section 12 describes the development loop: "careful analysis of the router
output to find inefficient routing patterns".  This pass automates the
obvious cleanup — connections whose installed wire is much longer than
their Manhattan bound are ripped up and re-routed on the finished board
(where congestion that forced the detour may have moved); the new route is
kept only if strictly shorter, otherwise the old one is restored exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.board.nets import Connection
from repro.core.router import GreedyRouter
from repro.obs.audit import RestoreBlockedError, WorkspaceAuditor
from repro.obs.events import ImproveAttempt


@dataclass
class ImproveStats:
    """Outcome of one improvement pass."""

    examined: int = 0
    attempted: int = 0
    improved: int = 0
    wire_before: int = 0
    wire_after: int = 0
    improved_ids: List[int] = field(default_factory=list)

    @property
    def wire_saved(self) -> int:
        """Grid cells of trace removed by the pass."""
        return self.wire_before - self.wire_after


def improve_routes(
    router: GreedyRouter,
    connections: Sequence[Connection],
    detour_threshold: float = 1.3,
    max_attempts: Optional[int] = None,
) -> ImproveStats:
    """Re-route the connections with the largest detours, keep wins only.

    ``detour_threshold`` is the minimum installed-wire / Manhattan ratio
    for a connection to be reconsidered.  The pass never leaves the board
    worse: a failed or longer re-route restores the original exactly; a
    restore that cannot succeed raises :class:`RestoreBlockedError` with
    the auditor's diff of what occupies the route's space (this guard
    must survive ``python -O``, so it is not an ``assert``).
    """
    workspace = router.workspace
    sink = router.sink
    grid = workspace.grid
    stats = ImproveStats()
    candidates = []
    for conn in connections:
        record = workspace.records.get(conn.conn_id)
        if record is None:
            continue
        stats.examined += 1
        bound = conn.manhattan_length * grid.grid_per_via
        if bound == 0:
            continue
        ratio = record.wire_length / bound
        if ratio >= detour_threshold:
            candidates.append((ratio, conn))
    candidates.sort(key=lambda item: -item[0])
    if max_attempts is not None:
        candidates = candidates[:max_attempts]
    for _, conn in candidates:
        stats.attempted += 1
        old_record = workspace.remove_connection(conn.conn_id)
        stats.wire_before += old_record.wire_length
        new_record, strategy, _search = router._try_strategies(
            conn, router.passable_for(conn)
        )
        improved = (
            new_record is not None
            and new_record.wire_length < old_record.wire_length
        )
        if sink.enabled:
            sink.emit(
                ImproveAttempt(
                    conn.conn_id,
                    old_record.wire_length,
                    new_record.wire_length
                    if new_record is not None
                    else old_record.wire_length,
                    improved,
                )
            )
        if improved:
            stats.improved += 1
            stats.improved_ids.append(conn.conn_id)
            stats.wire_after += new_record.wire_length
            continue
        # Not better: undo and put the original back exactly.
        if new_record is not None:
            workspace.remove_connection(conn.conn_id)
        if not workspace.restore_record(old_record):
            # The board would be corrupt (the route's space is gone);
            # report exactly what holds it — a failure here is a router
            # bug, and silent corruption under ``python -O`` is worse.
            raise RestoreBlockedError(
                conn.conn_id,
                WorkspaceAuditor(workspace).restore_blockers(old_record),
            )
        stats.wire_after += old_record.wire_length
    return stats
