"""Optimal zero-via and one-via connection strategies (Section 8.1).

The ``radius`` control parameter bounds orthogonal movement on a layer
(Figure 9): a direct connection from a to b may be attempted on a
horizontal layer only if the endpoints' via rows differ by at most
``radius``, and on a vertical layer only if their via columns do.  Typical
values are 1 or 2; large values reach more vias but block more channels
for later connections.

One-via solutions (Figure 10) pick an intermediate via v from the two
(2·radius+1)² squares at diagonally opposite corners of the bounding
rectangle, enumerated best-to-worst (square centers first), and solve two
zero-via subproblems a→v and v→b.

As a matter of practical experience (the paper, Section 8.1), about 90% of
connections must be routed by these optimal strategies for a board to be
completable at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.board.nets import Connection
from repro.channels.layer_data import ChannelPiece
from repro.channels.workspace import RouteRecord, RoutingWorkspace
from repro.core.budget import BudgetTracker
from repro.core.single_layer import DEFAULT_MAX_GAPS, trace
from repro.grid.coords import GridPoint, ViaPoint
from repro.grid.geometry import Box, Orientation


def direct_layers(
    workspace: RoutingWorkspace, a: ViaPoint, b: ViaPoint, radius: int
) -> List[int]:
    """Signal layers on which a direct (zero-via) a→b trace is permitted.

    Ordered best-first: layers whose orientation matches the connection's
    major axis come before the others, so a mostly-horizontal connection
    tries horizontal layers first.
    """
    dx = abs(a.vx - b.vx)
    dy = abs(a.vy - b.vy)
    ranked: List[Tuple[int, int]] = []
    for index, layer in enumerate(workspace.layers):
        if layer.orientation is Orientation.HORIZONTAL:
            if dy <= radius:
                ranked.append((0 if dx >= dy else 1, index))
        else:
            if dx <= radius:
                ranked.append((0 if dy >= dx else 1, index))
    ranked.sort()
    return [index for _, index in ranked]


def direct_box(
    workspace: RoutingWorkspace,
    a: GridPoint,
    b: GridPoint,
    orientation: Orientation,
    radius: int,
) -> Box:
    """Search box for a direct trace: the bounding box widened by the
    radius strip in the layer's orthogonal direction (Figure 9)."""
    box = Box.bounding(a, b)
    r = radius * workspace.grid.grid_per_via
    if orientation is Orientation.HORIZONTAL:
        box = box.expanded(0, r)
    else:
        box = box.expanded(r, 0)
    return box.clipped_to(workspace.grid.bounds)


def find_zero_via(
    workspace: RoutingWorkspace,
    a: ViaPoint,
    b: ViaPoint,
    radius: int,
    passable: FrozenSet[int],
    max_gaps: int = DEFAULT_MAX_GAPS,
    budget: Optional[BudgetTracker] = None,
) -> Optional[Tuple[int, List[ChannelPiece]]]:
    """Search (without installing) a direct trace between two via points.

    Returns ``(layer_index, pieces)`` for the first layer that admits one,
    or None.  "We stop after the first successful call."
    """
    a_g = workspace.grid.via_to_grid(a)
    b_g = workspace.grid.via_to_grid(b)
    for index in direct_layers(workspace, a, b, radius):
        layer = workspace.layers[index]
        box = direct_box(workspace, a_g, b_g, layer.orientation, radius)
        pieces = trace(layer, a_g, b_g, box, passable, max_gaps, budget=budget)
        if pieces is not None:
            return index, pieces
    return None


def try_zero_via(
    workspace: RoutingWorkspace,
    conn: Connection,
    radius: int,
    passable: FrozenSet[int],
    max_gaps: int = DEFAULT_MAX_GAPS,
    budget: Optional[BudgetTracker] = None,
) -> Optional[RouteRecord]:
    """Route a connection as a single trace on one layer, if possible."""
    found = find_zero_via(
        workspace, conn.a, conn.b, radius, passable, max_gaps, budget
    )
    if found is None:
        return None
    layer_index, pieces = found
    builder = workspace.route_builder(conn.conn_id, passable)
    builder.add_link(
        layer_index,
        workspace.grid.via_to_grid(conn.a),
        workspace.grid.via_to_grid(conn.b),
        pieces,
    )
    return builder.commit()


def one_via_candidates(
    workspace: RoutingWorkspace, a: ViaPoint, b: ViaPoint, radius: int
) -> List[ViaPoint]:
    """Candidate intermediate vias, best-to-worst (Figure 10).

    Two (2·radius+1)² squares centered on the diagonal corners of the
    bounding rectangle; "the vias at the center of each square are the best
    since connections to them will block the fewest channels", so candidates
    are enumerated by growing Chebyshev ring, alternating between squares.
    """
    corners = [ViaPoint(a.vx, b.vy), ViaPoint(b.vx, a.vy)]
    if corners[0] == corners[1]:
        corners = corners[:1]
    grid = workspace.grid
    seen = set()
    ordered: List[ViaPoint] = []
    for ring in range(radius + 1):
        for corner in corners:
            if ring == 0:
                offsets = [(0, 0)]
            else:
                offsets = []
                for d in range(-ring, ring + 1):
                    offsets.extend(
                        [(d, -ring), (d, ring), (-ring, d), (ring, d)]
                    )
            for dx, dy in offsets:
                v = ViaPoint(corner.vx + dx, corner.vy + dy)
                if v in seen or v == a or v == b:
                    continue
                seen.add(v)
                if grid.contains_via(v):
                    ordered.append(v)
    return ordered


def try_one_via(
    workspace: RoutingWorkspace,
    conn: Connection,
    radius: int,
    passable: FrozenSet[int],
    max_gaps: int = DEFAULT_MAX_GAPS,
    budget: Optional[BudgetTracker] = None,
) -> Optional[RouteRecord]:
    """Route a connection as two traces joined by one via (Figure 10)."""
    via_map = workspace.via_map
    grid = workspace.grid
    for v in one_via_candidates(workspace, conn.a, conn.b, radius):
        if budget is not None and budget.search_exceeded():
            return None
        drilled = via_map.drilled_owner(v)
        if drilled is not None and drilled != conn.conn_id:
            continue
        if not via_map.is_available(v, passable):
            continue
        leg1 = find_zero_via(
            workspace, conn.a, v, radius, passable, max_gaps, budget
        )
        if leg1 is None:
            continue
        leg2 = find_zero_via(
            workspace, v, conn.b, radius, passable, max_gaps, budget
        )
        if leg2 is None:
            continue
        builder = workspace.route_builder(conn.conn_id, passable)
        builder.add_link(
            leg1[0], grid.via_to_grid(conn.a), grid.via_to_grid(v), leg1[1]
        )
        if leg1[0] != leg2[0]:
            # Both legs on one layer need no hole; the joint is copper.
            builder.drill(v)
        builder.add_link(
            leg2[0], grid.via_to_grid(v), grid.via_to_grid(conn.b), leg2[1]
        )
        return builder.commit()
    return None


@dataclass
class TwoViaStats:
    """Effort counters for the rejected two-via strategy (Section 8.1)."""

    candidates: int = 0
    leg_searches: int = 0


def two_via_candidates(
    workspace: RoutingWorkspace, a: ViaPoint, b: ViaPoint, radius: int
) -> List[ViaPoint]:
    """Intermediate-via candidates for the two-via strategy.

    "One might choose an intermediate via and attempt a zero-via
    connection to one of the pins and a one-via connection to the other."
    The candidates are every via reachable from ``a`` by a direct trace
    under the radius discipline — the cross-shaped strips around ``a``
    clipped to the (expanded) bounding rectangle.  They are enumerated
    "in a pre-determined order without concern for local congestion",
    nearest-to-the-corner first; the point of the experiment is that
    there are too many of them.
    """
    grid = workspace.grid
    lo_x = min(a.vx, b.vx) - radius
    hi_x = max(a.vx, b.vx) + radius
    lo_y = min(a.vy, b.vy) - radius
    hi_y = max(a.vy, b.vy) + radius
    candidates = []
    seen = set()
    for vx in range(lo_x, hi_x + 1):
        for vy in range(lo_y, hi_y + 1):
            v = ViaPoint(vx, vy)
            if v in seen or v == a or v == b:
                continue
            if abs(vx - a.vx) > radius and abs(vy - a.vy) > radius:
                continue  # not direct-reachable from a on any layer
            if not grid.contains_via(v):
                continue
            seen.add(v)
            candidates.append(v)
    # Pre-determined order: distance from a, then row-major.
    candidates.sort(
        key=lambda v: (abs(v.vx - a.vx) + abs(v.vy - a.vy), v.vy, v.vx)
    )
    return candidates


def try_two_via(
    workspace: RoutingWorkspace,
    conn: Connection,
    radius: int,
    passable: FrozenSet[int],
    max_gaps: int = DEFAULT_MAX_GAPS,
    stats: Optional[TwoViaStats] = None,
    budget: Optional[BudgetTracker] = None,
) -> Optional[RouteRecord]:
    """The two-via divide-and-conquer strategy grr tried and rejected.

    Kept for the E10 ablation: it works, but the candidate set explodes
    ("combinatorially intractable for three-via solutions"), which is why
    the paper replaces it with the generalized Lee search.
    """
    if stats is None:
        stats = TwoViaStats()
    via_map = workspace.via_map
    grid = workspace.grid
    for v in two_via_candidates(workspace, conn.a, conn.b, radius):
        if budget is not None and budget.search_exceeded():
            return None
        stats.candidates += 1
        drilled = via_map.drilled_owner(v)
        if drilled is not None and drilled != conn.conn_id:
            continue
        if not via_map.is_available(v, passable):
            continue
        stats.leg_searches += 1
        leg1 = find_zero_via(workspace, conn.a, v, radius, passable, max_gaps)
        if leg1 is None:
            continue
        # Second part: a one-via subproblem v -> b.
        for w in one_via_candidates(workspace, v, conn.b, radius):
            stats.candidates += 1
            w_drilled = via_map.drilled_owner(w)
            if w_drilled is not None and w_drilled != conn.conn_id:
                continue
            if not via_map.is_available(w, passable):
                continue
            stats.leg_searches += 1
            leg2 = find_zero_via(workspace, v, w, radius, passable, max_gaps)
            if leg2 is None:
                continue
            leg3 = find_zero_via(
                workspace, w, conn.b, radius, passable, max_gaps
            )
            if leg3 is None:
                continue
            builder = workspace.route_builder(conn.conn_id, passable)
            builder.add_link(
                leg1[0], grid.via_to_grid(conn.a), grid.via_to_grid(v),
                leg1[1],
            )
            if leg1[0] != leg2[0]:
                # Same-layer joints need no hole (see try_one_via).
                builder.drill(v)
            builder.add_link(
                leg2[0], grid.via_to_grid(v), grid.via_to_grid(w), leg2[1]
            )
            if leg2[0] != leg3[0]:
                builder.drill(w)
            builder.add_link(
                leg3[0], grid.via_to_grid(w), grid.via_to_grid(conn.b),
                leg3[1],
            )
            return builder.commit()
    return None
