"""The grr routing algorithms (Sections 5-8 of the paper).

Strategy stack, in order of increasing desperation per connection:

1. connection sorting (easiest first),
2. optimal zero-via and one-via solutions under the ``radius`` parameter,
3. generalized Lee's algorithm (via-graph neighbors, bidirectional
   cost-ordered wavefronts),
4. rip-up of obstructing connections and putback.
"""

from repro.core.bounds import (
    SEARCH_MODES,
    LowerBoundCache,
    TargetBounds,
)
from repro.core.budget import BudgetTracker, RouteBudget
from repro.core.cost import (
    COST_FUNCTIONS,
    distance_cost,
    distance_hops_cost,
    unit_cost,
)
from repro.core.lee import LeeSearchResult, lee_route
from repro.core.optimal import try_one_via, try_zero_via
from repro.core.result import RoutingResult, Strategy
from repro.core.router import GreedyRouter, RouterConfig
from repro.core.single_layer import obstructions, reachable_vias, trace
from repro.core.sorting import minimal_path_count, sort_connections

__all__ = [
    "BudgetTracker",
    "COST_FUNCTIONS",
    "GreedyRouter",
    "LeeSearchResult",
    "LowerBoundCache",
    "RouteBudget",
    "RouterConfig",
    "RoutingResult",
    "SEARCH_MODES",
    "Strategy",
    "TargetBounds",
    "distance_cost",
    "distance_hops_cost",
    "lee_route",
    "minimal_path_count",
    "obstructions",
    "reachable_vias",
    "sort_connections",
    "trace",
    "try_one_via",
    "try_zero_via",
    "unit_cost",
]
