"""Routing results and statistics — everything Table 1 reports per board."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.board.nets import Connection
from repro.channels.workspace import RoutingWorkspace


class Strategy(enum.Enum):
    """Which strategy finally routed a connection (Section 8.4 loop)."""

    ZERO_VIA = "zero_via"
    ONE_VIA = "one_via"
    #: Optional divide-and-conquer strategy (off by default; E10 ablation).
    TWO_VIA = "two_via"
    LEE = "lee"
    #: Restored unchanged during putback after a rip-up.
    PUTBACK = "putback"


@dataclass
class RoutingResult:
    """Outcome of routing one board's connection list."""

    workspace: RoutingWorkspace
    connections: List[Connection]
    routed_by: Dict[int, Strategy] = field(default_factory=dict)
    failed: List[int] = field(default_factory=list)
    #: Net rip-up displacements: victims whose route did NOT go back
    #: unchanged during putback.  Victims restored exactly where they
    #: were are counted in :attr:`putback_count` instead — counting them
    #: here would overstate how much wiring rip-up actually moved.
    rip_up_count: int = 0
    #: Rip-up victims restored unchanged by putback (Section 8.3: "Most
    #: can be re-inserted").
    putback_count: int = 0
    passes: int = 0
    cpu_seconds: float = 0.0
    lee_expansions: int = 0
    #: Parallel wave routing statistics (zero for serial runs).
    waves: int = 0
    #: Wave-routed connections whose merge collided with an earlier route
    #: and were demoted to a later wave or the serial residue.
    demoted: int = 0
    #: True when the parallel pipeline came up short and the whole board
    #: was re-routed serially from scratch (parity fallback).
    fallback_serial: bool = False
    #: True when the parallel router's size heuristic routed the whole
    #: board serially without starting the worker pool (small or
    #: congested boards, where waves cannot pay for themselves).
    auto_serial: bool = False
    #: Why routing stopped short of completing every connection: one of
    #: ``"deadline"`` (wall-clock budget ran out), ``"stalled"`` (the
    #: §8.4 progress guard fired) or ``"max_passes"``.  None exactly when
    #: the run is complete.
    stopped_reason: Optional[str] = None
    #: Per-connection failure reasons for :attr:`failed` entries:
    #: ``"blocked"`` (every strategy exhausted), ``"deadline"`` (the call
    #: ran out of wall clock first) or ``"connection_timeout"``.
    failure_reasons: Dict[int, str] = field(default_factory=dict)
    #: Wave workers relaunched after a crash / error / group deadline.
    worker_retries: int = 0
    #: Wave groups that exhausted their retry budget and were reassigned
    #: to the serial residue pass.
    degraded_groups: int = 0

    @property
    def routed_count(self) -> int:
        """Connections successfully routed."""
        return len(self.routed_by)

    @property
    def total_count(self) -> int:
        """Connections in the problem."""
        return len(self.connections)

    @property
    def complete(self) -> bool:
        """True if every connection was routed."""
        return not self.failed and self.routed_count == self.total_count

    @property
    def completion_rate(self) -> float:
        """Fraction of connections routed."""
        if not self.connections:
            return 1.0
        return self.routed_count / self.total_count

    def strategy_count(self, strategy: Strategy) -> int:
        """Connections whose final route came from ``strategy``."""
        return sum(1 for s in self.routed_by.values() if s is strategy)

    @property
    def percent_lee(self) -> float:
        """The '% lee' column of Table 1.

        Percentage of all connections that were routed by Lee's algorithm;
        higher on denser boards where congestion blocks optimal solutions.
        """
        if not self.connections:
            return 0.0
        return 100.0 * self.strategy_count(Strategy.LEE) / self.total_count

    @property
    def vias_added(self) -> int:
        """Total vias drilled for signal routing (pins excluded)."""
        return sum(
            record.via_count for record in self.workspace.records.values()
        )

    @property
    def vias_per_connection(self) -> float:
        """The 'vias' column of Table 1: vias added per connection.

        "This number is below 1 for all examples, which indicates that most
        connections are routed with zero or one vias."
        """
        if not self.routed_by:
            return 0.0
        return self.vias_added / self.routed_count

    @property
    def total_wire_length(self) -> int:
        """Installed trace length in routing-grid units."""
        return sum(
            record.wire_length for record in self.workspace.records.values()
        )

    def summary(self) -> Dict[str, object]:
        """Flat dict of the headline numbers (one Table 1 row's worth)."""
        return {
            "connections": self.total_count,
            "routed": self.routed_count,
            "complete": self.complete,
            "percent_lee": round(self.percent_lee, 1),
            "rip_ups": self.rip_up_count,
            "putbacks": self.putback_count,
            "vias_per_conn": round(self.vias_per_connection, 2),
            "passes": self.passes,
            "cpu_seconds": round(self.cpu_seconds, 2),
            "zero_via": self.strategy_count(Strategy.ZERO_VIA),
            "one_via": self.strategy_count(Strategy.ONE_VIA),
            "two_via": self.strategy_count(Strategy.TWO_VIA),
            "lee": self.strategy_count(Strategy.LEE),
            "putback": self.strategy_count(Strategy.PUTBACK),
            "waves": self.waves,
            "demoted": self.demoted,
            "fallback_serial": self.fallback_serial,
            "auto_serial": self.auto_serial,
            "stopped_reason": self.stopped_reason,
            "worker_retries": self.worker_retries,
            "degraded_groups": self.degraded_groups,
        }
