"""Connection sorting (Section 6): attempt the easiest connections first.

"The easiest connection to route is the one that has the fewest
possibilities for a minimal path between its end points."  The number of
minimal Manhattan paths between points separated by (dx, dy) is
C(dx + dy, dx); the paper approximates that ordering with two sort keys,
``min(dx, dy)`` (straightness) then ``max(dx, dy)`` (length), so the
shortest straight connections come first and the longest diagonal ones
last.
"""

from __future__ import annotations

from math import comb
from typing import List, Sequence

from repro.board.nets import Connection


def minimal_path_count(dx: int, dy: int) -> int:
    """Exact number of minimal rectilinear paths for a (dx, dy) separation.

    Any minimal path makes dx horizontal and dy vertical unit steps in some
    order: C(dx + dy, dx) of them.
    """
    if dx < 0 or dy < 0:
        raise ValueError("separations must be non-negative")
    return comb(dx + dy, dx)


def sort_connections(connections: Sequence[Connection]) -> List[Connection]:
    """Return connections in the paper's routing order (easiest first)."""
    return sorted(connections, key=lambda c: c.sort_key())
