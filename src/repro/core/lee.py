"""The generalized Lee maze search (Section 8.2), with all three
modifications from the paper:

1. the neighbors of a via are the via sites reachable from it by a trace
   on one layer (the *Vias* procedure) — neighbors radiate in a cross of
   radius strips (Figure 11), generalizing Hightower's line search;
2. wavefronts spread from both ends simultaneously; if either wavefront is
   exhausted the connection is blocked, and the point that made the most
   progress is remembered for rip-up victim selection;
3. wavefront lists are kept in increasing order of a pluggable cost
   function (``distance(n, target) * hops(n, source)`` by default).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.board.nets import Connection
from repro.channels.workspace import RouteRecord, RoutingWorkspace
from repro.core.budget import SEARCH_CHECK_MASK, BudgetTracker
from repro.core.cost import CostFunction, distance_hops_cost
from repro.core.single_layer import (
    DEFAULT_MAX_GAPS,
    SearchStats,
    reachable_vias,
    trace,
)
from repro.grid.coords import ViaPoint
from repro.grid.geometry import Orientation
from repro.obs.events import LeeExhausted, SearchCapHit
from repro.obs.sinks import NULL_SINK, EventSink

#: Per-side wavefront mark: (hops from source, parent via, layer index used).
Mark = Tuple[int, Optional[ViaPoint], Optional[int]]


@dataclass
class LeeSearchResult:
    """Outcome of one bidirectional Lee search."""

    routed: bool
    record: Optional[RouteRecord] = None
    expansions: int = 0
    marked: int = 0
    blocked: bool = False
    reason: str = ""
    #: Single-layer searches truncated at the ``max_gaps`` cap during this
    #: route.  A blocked result with ``cap_hits > 0`` (reason suffixed
    #: "(gap cap)") was truncated, not proven blocked — rip-up victim
    #: selection should not treat it as a hard blockage.
    cap_hits: int = 0
    #: Gaps popped across all single-layer searches of this route.
    gaps_examined: int = 0
    #: Least-cost point ever inserted into each wavefront (a-side, b-side);
    #: the rip-up strategy removes obstacles around these (Section 8.3).
    best_points: Tuple[Optional[ViaPoint], Optional[ViaPoint]] = (None, None)
    #: Which side exhausted first ("a", "b" or "" if not blocked).
    exhausted_side: str = ""


def _strip_axis(orientation: Orientation) -> str:
    """Strip direction for ``RoutingGrid.via_strip`` on a layer."""
    return "x" if orientation is Orientation.HORIZONTAL else "y"


def _neighbors(
    workspace: RoutingWorkspace,
    via: ViaPoint,
    radius: int,
    passable: FrozenSet[int],
    max_gaps: int,
    stats: Optional[SearchStats] = None,
    budget: Optional[BudgetTracker] = None,
) -> List[Tuple[ViaPoint, int]]:
    """All (neighbor via, layer index) pairs reachable in one hop.

    "To find the neighbors of a via, Vias is called once for each layer,
    and the result added to an accumulating list" — the cross of Figure 11.
    """
    point = workspace.grid.via_to_grid(via)
    result: List[Tuple[ViaPoint, int]] = []
    for layer_index, layer in enumerate(workspace.layers):
        box = workspace.grid.via_strip(
            via, radius, _strip_axis(layer.orientation)
        )
        for n in reachable_vias(
            layer,
            point,
            box,
            passable,
            workspace.via_map,
            max_gaps,
            stats,
            budget,
        ):
            result.append((n, layer_index))
    return result


def _back_chain(
    marks: Dict[ViaPoint, Mark], via: ViaPoint, side: str
) -> List[Tuple[ViaPoint, Optional[int]]]:
    """Chain from the wavefront source to ``via``: [(via, layer to reach it)].

    Every via on the chain was inserted into ``marks`` before its children,
    so a missing mark can only mean the table was corrupted after the
    search — raise with enough context to tell *where* the chain broke
    (a bare KeyError here made backend-parity debugging hopeless).
    """
    chain: List[Tuple[ViaPoint, Optional[int]]] = []
    current: Optional[ViaPoint] = via
    while current is not None:
        mark = marks.get(current)
        if mark is None:
            raise RuntimeError(
                f"retrace walked off the {side}-side wavefront at "
                f"{current}: no mark among {len(marks)} — the parent "
                f"chain is corrupt"
            )
        chain.append((current, mark[2]))
        current = mark[1]
    chain.reverse()
    return chain


def lee_route(
    workspace: RoutingWorkspace,
    conn: Connection,
    radius: int = 1,
    passable: Optional[FrozenSet[int]] = None,
    cost_fn: CostFunction = distance_hops_cost,
    max_expansions: int = 4000,
    max_gaps: int = DEFAULT_MAX_GAPS,
    single_front: bool = False,
    sink: EventSink = NULL_SINK,
    budget: Optional[BudgetTracker] = None,
) -> LeeSearchResult:
    """Route one connection with the generalized bidirectional Lee search.

    ``single_front=True`` disables Modification 2: only the a-side
    wavefront spreads (the pre-modification behaviour benchmarked in
    ``benchmarks/bench_bidirectional.py``); the search still terminates
    when a neighbor of the frontier is the target pin.  ``sink`` receives
    a :class:`repro.obs.events.LeeExhausted` event when the search dies,
    carrying the best points rip-up will center on.  A timed ``budget``
    is consulted every few dozen expansions; exhaustion ends the search
    with reason ``"budget exhausted"`` — a truncation like the expansion
    limit, never an exception.
    """
    if passable is None:
        passable = frozenset((conn.conn_id,))
    stats = SearchStats()
    a, b = conn.a, conn.b
    sources = (a, b)
    targets = (b, a)
    marks: Tuple[Dict[ViaPoint, Mark], Dict[ViaPoint, Mark]] = (
        {a: (0, None, None)},
        {b: (0, None, None)},
    )
    heaps: Tuple[list, list] = ([(0.0, 0, a)], [(0.0, 0, b)])
    counter = itertools.count(1)
    best: List[Tuple[float, ViaPoint]] = [
        (float("inf"), a),
        (float("inf"), b),
    ]
    expansions = 0
    meet: Optional[Tuple[int, ViaPoint, ViaPoint, int]] = None
    reason = ""
    exhausted = ""
    while meet is None:
        if not heaps[0] or not heaps[1]:
            # Modification 2: one exhausted wavefront means blocked.
            exhausted = "a" if not heaps[0] else "b"
            reason = "wavefront exhausted"
            break
        if expansions >= max_expansions:
            reason = "expansion limit"
            break
        if (
            budget is not None
            and (expansions & SEARCH_CHECK_MASK) == 0
            and budget.search_exceeded()
        ):
            reason = "budget exhausted"
            break
        if single_front:
            side = 0
        else:
            side = 0 if heaps[0][0][0] <= heaps[1][0][0] else 1
        _, _, p = heappop(heaps[side])
        expansions += 1
        hops_p = marks[side][p][0]
        found_meet = None
        for n, layer_index in _neighbors(
            workspace, p, radius, passable, max_gaps, stats, budget
        ):
            if n in marks[side]:
                continue
            hops_n = hops_p + 1
            marks[side][n] = (hops_n, p, layer_index)
            if n in marks[1 - side]:
                found_meet = (side, p, n, layer_index)
                break
            cost = cost_fn(n, targets[side], hops_n)
            heappush(heaps[side], (cost, next(counter), n))
            if cost < best[side][0]:
                best[side] = (cost, n)
        if found_meet is not None:
            meet = found_meet
    best_points = (best[0][1], best[1][1])
    marked = len(marks[0]) + len(marks[1])
    if meet is None:
        # A cap-truncated search may have hidden reachable neighbors: the
        # failure is then unproven, and the reason says so.  Every
        # blocked reason gets the suffix — consumers (failure_reasons in
        # the api/serve summaries, rip-up victim selection) key on it to
        # tell truncations from hard blockages, so it must track
        # ``cap_hits`` exactly, whatever ended the search.
        if stats.cap_hits > 0:
            reason += " (gap cap)"
        if sink.enabled:
            sink.emit(
                LeeExhausted(
                    conn.conn_id,
                    exhausted,
                    reason,
                    expansions,
                    best_points[0],
                    best_points[1],
                )
            )
            if stats.cap_hits > 0:
                sink.emit(
                    SearchCapHit(
                        conn.conn_id,
                        stats.cap_hits,
                        stats.searches,
                        max_gaps,
                        False,
                    )
                )
        return LeeSearchResult(
            routed=False,
            expansions=expansions,
            marked=marked,
            blocked=True,
            reason=reason,
            cap_hits=stats.cap_hits,
            gaps_examined=stats.examined,
            best_points=best_points,
            exhausted_side=exhausted,
        )
    record = _retrace(
        workspace, conn, meet, marks, radius, passable, max_gaps, stats,
        budget,
    )
    if sink.enabled and stats.cap_hits > 0:
        sink.emit(
            SearchCapHit(
                conn.conn_id,
                stats.cap_hits,
                stats.searches,
                max_gaps,
                record is not None,
            )
        )
    if record is None:
        return LeeSearchResult(
            routed=False,
            expansions=expansions,
            marked=marked,
            blocked=True,
            reason=(
                "retrace failed (gap cap)"
                if stats.cap_hits > 0
                else "retrace failed"
            ),
            cap_hits=stats.cap_hits,
            gaps_examined=stats.examined,
            best_points=best_points,
        )
    return LeeSearchResult(
        routed=True,
        record=record,
        expansions=expansions,
        marked=marked,
        cap_hits=stats.cap_hits,
        gaps_examined=stats.examined,
        best_points=best_points,
    )


def _retrace(
    workspace: RoutingWorkspace,
    conn: Connection,
    meet: Tuple[int, ViaPoint, ViaPoint, int],
    marks: Tuple[Dict[ViaPoint, Mark], Dict[ViaPoint, Mark]],
    radius: int,
    passable: FrozenSet[int],
    max_gaps: int,
    stats: Optional[SearchStats] = None,
    budget: Optional[BudgetTracker] = None,
) -> Optional[RouteRecord]:
    """Retrace from the meeting point to the two sources (Figure 15).

    "The links in the retraced path are constructed with Trace.  They may
    all be on different layers."  Each hop's trace is searched in the strip
    of the via it was discovered from; installed hop by hop so later hops
    treat earlier ones as passable.  On any failure the partial route is
    rolled back.

    A via is drilled at a junction only when the resolved layers of the
    two adjoining links actually differ: the layer-fallback attempts can
    land consecutive links on the *same* layer, where a drill would be a
    wasted hole (it inflated the Table 1 via counts).  The junction's
    drill decision therefore waits until the next link's layer is known —
    safe, because the search already proved the site available and the
    connection's own segments are passable to its later traces.
    """
    side, p, n, meet_layer = meet
    # Edges as (u, v, layer, strip anchor): anchor is the via whose radius
    # strip the hop was discovered in (the parent in the original search).
    edges: List[Tuple[ViaPoint, ViaPoint, int, ViaPoint]] = []
    left = _back_chain(marks[side], p, "ab"[side])
    for i in range(len(left) - 1):
        u, _ = left[i]
        v, layer_index = left[i + 1]
        edges.append((u, v, layer_index, u))
    edges.append((p, n, meet_layer, p))
    right = _back_chain(marks[1 - side], n, "ab"[1 - side])
    # right runs source_other .. n; reverse it to continue n .. source_other.
    for i in range(len(right) - 1, 0, -1):
        u, layer_index = right[i]
        v, _ = right[i - 1]
        # The hop u<-v was discovered from parent v's strip.
        edges.append((u, v, layer_index, v))
    if side == 1:
        # The chains ran from b towards a; normalize the route to a -> b.
        edges = [
            (v, u, layer_index, anchor)
            for u, v, layer_index, anchor in reversed(edges)
        ]
    builder = workspace.route_builder(conn.conn_id, passable)
    grid = workspace.grid
    prev_layer: Optional[int] = None
    for u, v, layer_index, anchor in edges:
        pieces = None
        attempts = [(layer_index, anchor)]
        # Fallbacks: same layer anchored at either end, then any layer.
        attempts.append((layer_index, u))
        attempts.append((layer_index, v))
        for other_index in range(workspace.n_layers):
            if other_index != layer_index:
                attempts.append((other_index, u))
                attempts.append((other_index, v))
        for try_layer, try_anchor in attempts:
            layer = workspace.layers[try_layer]
            box = grid.via_strip(
                try_anchor, radius, _strip_axis(layer.orientation)
            )
            pieces = trace(
                layer,
                grid.via_to_grid(u),
                grid.via_to_grid(v),
                box,
                passable,
                max_gaps,
                stats,
                budget,
            )
            if pieces is not None:
                layer_index = try_layer
                break
        if pieces is None:
            builder.abort()
            return None
        if (
            prev_layer is not None
            and layer_index != prev_layer
            and u != conn.a
            and u != conn.b
        ):
            builder.drill(u)
        builder.add_link(
            layer_index, grid.via_to_grid(u), grid.via_to_grid(v), pieces
        )
        prev_layer = layer_index
    return builder.commit()
