"""The generalized Lee maze search (Section 8.2), with all three
modifications from the paper:

1. the neighbors of a via are the via sites reachable from it by a trace
   on one layer (the *Vias* procedure) — neighbors radiate in a cross of
   radius strips (Figure 11), generalizing Hightower's line search;
2. wavefronts spread from both ends simultaneously; if either wavefront is
   exhausted the connection is blocked, and the point that made the most
   progress is remembered for rip-up victim selection;
3. wavefront lists are kept in increasing order of a pluggable cost
   function (``distance(n, target) * hops(n, source)`` by default).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.board.nets import Connection
from repro.channels.workspace import RouteRecord, RoutingWorkspace
from repro.core.bounds import HOPS_UNREACHABLE, TargetBounds
from repro.core.budget import SEARCH_CHECK_MASK, BudgetTracker
from repro.core.cost import CostFunction, distance_hops_cost
from repro.core.single_layer import (
    DEFAULT_MAX_GAPS,
    SearchStats,
    reachable_vias,
    trace,
)
from repro.grid.coords import ViaPoint, manhattan
from repro.grid.geometry import Box, Orientation
from repro.obs.events import LeeExhausted, SearchCapHit
from repro.obs.sinks import NULL_SINK, EventSink

#: Per-side wavefront mark: (hops from source, parent via, layer index used).
Mark = Tuple[int, Optional[ViaPoint], Optional[int]]

#: Weight on the lower bound in goal mode's ``g + W*lb`` heap ordering.
#: 1 is textbook A*; the hard prunes and the meet bookkeeping use the
#: unweighted admissible bound regardless, so raising this trades route
#: length for greed without touching the prune's soundness.  3 won the
#: benchmarks/bench_goal.py sweep on the titan suite (1 and 5 were
#: within a few percent; the frontier-size side selection matters far
#: more than the exact weight).
GOAL_WEIGHT = 3

#: Extra pops the live frontier may spend after the other side drains
#: pre-meet, before the search declares blocked.  Completions found in
#: this tail are cheap (the live side is bound-guided straight at the
#: dead side's territory); truly blocked connections pay at most this
#: much more than classic's give-up-immediately rule.
GOAL_TAIL_CAP = 8

#: Per-hop surcharge (via units) added to ``g`` in goal mode.  Every
#: hop in the waypoint chain is a potential via; without this the
#: chain-length metric happily strings many short hops, and the extra
#: via cover congests later connections (classic's ``distance * hops``
#: cost penalizes depth implicitly).  The lower bound stays admissible:
#: it underestimates the remaining *chain length*, which the surcharge
#: only ever increases.
GOAL_HOP_COST = 4


@dataclass
class LeeSearchResult:
    """Outcome of one bidirectional Lee search."""

    routed: bool
    record: Optional[RouteRecord] = None
    expansions: int = 0
    marked: int = 0
    blocked: bool = False
    reason: str = ""
    #: Single-layer searches truncated at the ``max_gaps`` cap during this
    #: route.  A blocked result with ``cap_hits > 0`` (reason suffixed
    #: "(gap cap)") was truncated, not proven blocked — rip-up victim
    #: selection should not treat it as a hard blockage.
    cap_hits: int = 0
    #: Gaps popped across all single-layer searches of this route.
    gaps_examined: int = 0
    #: Least-cost point ever inserted into each wavefront (a-side, b-side);
    #: the rip-up strategy removes obstacles around these (Section 8.3).
    best_points: Tuple[Optional[ViaPoint], Optional[ViaPoint]] = (None, None)
    #: Which side exhausted first ("a", "b" or "" if not blocked).
    exhausted_side: str = ""
    #: Heap entries discarded at pop time because the opposing wavefront
    #: had already marked the via (lazy deletion; only goal mode keeps
    #: searching past a cross-mark, so only goal mode accumulates these).
    heap_stale: int = 0
    #: Goal-mode expansions/pushes discarded because the admissible
    #: bound proved they could not beat the best meet (or the remaining
    #: expansion budget / hop geometry).
    lb_prunes: int = 0


def _strip_axis(orientation: Orientation) -> str:
    """Strip direction for ``RoutingGrid.via_strip`` on a layer."""
    return "x" if orientation is Orientation.HORIZONTAL else "y"


def _neighbors(
    workspace: RoutingWorkspace,
    via: ViaPoint,
    radius: int,
    passable: FrozenSet[int],
    max_gaps: int,
    stats: Optional[SearchStats] = None,
    budget: Optional[BudgetTracker] = None,
    clip: Optional[Box] = None,
) -> List[Tuple[ViaPoint, int]]:
    """All (neighbor via, layer index) pairs reachable in one hop.

    "To find the neighbors of a via, Vias is called once for each layer,
    and the result added to an accumulating list" — the cross of Figure 11.

    ``clip`` intersects every layer's strip (goal mode's corridor box
    around the expanded via and its target, see :func:`_goal_clip`):
    sites outside it would be push-pruned anyway, so clipping them away
    here saves the gap scan that would have found them.
    """
    point = workspace.grid.via_to_grid(via)
    result: List[Tuple[ViaPoint, int]] = []
    for layer_index, layer in enumerate(workspace.layers):
        box = workspace.grid.via_strip(
            via, radius, _strip_axis(layer.orientation)
        )
        if clip is not None:
            box = Box(
                max(box.x_lo, clip.x_lo),
                max(box.y_lo, clip.y_lo),
                min(box.x_hi, clip.x_hi),
                min(box.y_hi, clip.y_hi),
            )
            if box.x_lo > box.x_hi or box.y_lo > box.y_hi:
                continue
        for n in reachable_vias(
            layer,
            point,
            box,
            passable,
            workspace.via_map,
            max_gaps,
            stats,
            budget,
        ):
            result.append((n, layer_index))
    return result


def _back_chain(
    marks: Dict[ViaPoint, Mark], via: ViaPoint, side: str
) -> List[Tuple[ViaPoint, Optional[int]]]:
    """Chain from the wavefront source to ``via``: [(via, layer to reach it)].

    Every via on the chain was inserted into ``marks`` before its children,
    so a missing mark can only mean the table was corrupted after the
    search — raise with enough context to tell *where* the chain broke
    (a bare KeyError here made backend-parity debugging hopeless).
    """
    chain: List[Tuple[ViaPoint, Optional[int]]] = []
    current: Optional[ViaPoint] = via
    while current is not None:
        mark = marks.get(current)
        if mark is None:
            raise RuntimeError(
                f"retrace walked off the {side}-side wavefront at "
                f"{current}: no mark among {len(marks)} — the parent "
                f"chain is corrupt"
            )
        chain.append((current, mark[2]))
        current = mark[1]
    chain.reverse()
    return chain


def lee_route(
    workspace: RoutingWorkspace,
    conn: Connection,
    radius: int = 1,
    passable: Optional[FrozenSet[int]] = None,
    cost_fn: CostFunction = distance_hops_cost,
    max_expansions: int = 4000,
    max_gaps: int = DEFAULT_MAX_GAPS,
    single_front: bool = False,
    sink: EventSink = NULL_SINK,
    budget: Optional[BudgetTracker] = None,
    bounds: Optional[Tuple[TargetBounds, TargetBounds]] = None,
) -> LeeSearchResult:
    """Route one connection with the generalized bidirectional Lee search.

    ``single_front=True`` disables Modification 2: only the a-side
    wavefront spreads (the pre-modification behaviour benchmarked in
    ``benchmarks/bench_bidirectional.py``); the search still terminates
    when a neighbor of the frontier is the target pin.  ``sink`` receives
    a :class:`repro.obs.events.LeeExhausted` event when the search dies,
    carrying the best points rip-up will center on.  A timed ``budget``
    is consulted every few dozen expansions; exhaustion ends the search
    with reason ``"budget exhausted"`` — a truncation like the expansion
    limit, never an exception.

    ``bounds`` — per-side :class:`repro.core.bounds.TargetBounds`
    ``(toward b, toward a)`` — switches the search into **goal mode**
    (``RouterConfig.search = "goal"``): A*-style ``g + lb`` ordering on
    the accumulated waypoint-chain length, hard pruning against the best
    known meeting path, and early bidirectional termination.  ``None``
    keeps the paper's classic multiplicative heuristic and
    stop-at-first-meet behaviour.
    """
    if passable is None:
        passable = frozenset((conn.conn_id,))
    stats = SearchStats()
    if bounds is not None:
        return _lee_route_goal(
            workspace, conn, radius, passable, bounds, max_expansions,
            max_gaps, single_front, sink, budget, stats,
        )
    a, b = conn.a, conn.b
    sources = (a, b)
    targets = (b, a)
    marks: Tuple[Dict[ViaPoint, Mark], Dict[ViaPoint, Mark]] = (
        {a: (0, None, None)},
        {b: (0, None, None)},
    )
    heaps: Tuple[list, list] = ([(0.0, 0, a)], [(0.0, 0, b)])
    counter = itertools.count(1)
    best: List[Tuple[float, ViaPoint]] = [
        (float("inf"), a),
        (float("inf"), b),
    ]
    expansions = 0
    heap_stale = 0
    meet: Optional[Tuple[int, ViaPoint, ViaPoint, int]] = None
    reason = ""
    exhausted = ""
    while meet is None:
        if not heaps[0] or not heaps[1]:
            # Modification 2: one exhausted wavefront means blocked.
            exhausted = "a" if not heaps[0] else "b"
            reason = "wavefront exhausted"
            break
        if expansions >= max_expansions:
            reason = "expansion limit"
            break
        if (
            budget is not None
            and (expansions & SEARCH_CHECK_MASK) == 0
            and budget.search_exceeded()
        ):
            reason = "budget exhausted"
            break
        if single_front:
            side = 0
        else:
            side = 0 if heaps[0][0][0] <= heaps[1][0][0] else 1
        _, _, p = heappop(heaps[side])
        if p in marks[1 - side] and p != sources[side]:
            # Lazy deletion: the opposing wavefront claimed the via after
            # we queued it; expanding it would only re-cover that side's
            # territory.  (Classic mode stops at the first cross-mark, so
            # this fires only in goal mode — the check is shared so both
            # modes pay the same single dict probe per pop.)
            heap_stale += 1
            continue
        expansions += 1
        hops_p = marks[side][p][0]
        found_meet = None
        for n, layer_index in _neighbors(
            workspace, p, radius, passable, max_gaps, stats, budget
        ):
            if n in marks[side]:
                continue
            hops_n = hops_p + 1
            marks[side][n] = (hops_n, p, layer_index)
            if n in marks[1 - side]:
                found_meet = (side, p, n, layer_index)
                break
            cost = cost_fn(n, targets[side], hops_n)
            heappush(heaps[side], (cost, next(counter), n))
            if cost < best[side][0]:
                best[side] = (cost, n)
        if found_meet is not None:
            meet = found_meet
    best_points = (best[0][1], best[1][1])
    return _finish(
        workspace, conn, meet, marks, radius, passable, max_gaps, stats,
        budget, sink, expansions, best_points, reason, exhausted,
        heap_stale, 0,
    )


def _finish(
    workspace: RoutingWorkspace,
    conn: Connection,
    meet: Optional[Tuple[int, ViaPoint, ViaPoint, int]],
    marks: Tuple[Dict[ViaPoint, Mark], Dict[ViaPoint, Mark]],
    radius: int,
    passable: FrozenSet[int],
    max_gaps: int,
    stats: SearchStats,
    budget: Optional[BudgetTracker],
    sink: EventSink,
    expansions: int,
    best_points: Tuple[Optional[ViaPoint], Optional[ViaPoint]],
    reason: str,
    exhausted: str,
    heap_stale: int,
    lb_prunes: int,
) -> LeeSearchResult:
    """Shared search tail: retrace a meet or report the blockage.

    Used by both the classic and goal loops so the cap-truncation
    bookkeeping and event emissions cannot drift between modes.
    """
    marked = len(marks[0]) + len(marks[1])
    if meet is None:
        # A cap-truncated search may have hidden reachable neighbors: the
        # failure is then unproven, and the reason says so.  Every
        # blocked reason gets the suffix — consumers (failure_reasons in
        # the api/serve summaries, rip-up victim selection) key on it to
        # tell truncations from hard blockages, so it must track
        # ``cap_hits`` exactly, whatever ended the search.
        if stats.cap_hits > 0:
            reason += " (gap cap)"
        if sink.enabled:
            sink.emit(
                LeeExhausted(
                    conn.conn_id,
                    exhausted,
                    reason,
                    expansions,
                    best_points[0],
                    best_points[1],
                )
            )
            if stats.cap_hits > 0:
                sink.emit(
                    SearchCapHit(
                        conn.conn_id,
                        stats.cap_hits,
                        stats.searches,
                        max_gaps,
                        False,
                    )
                )
        return LeeSearchResult(
            routed=False,
            expansions=expansions,
            marked=marked,
            blocked=True,
            reason=reason,
            cap_hits=stats.cap_hits,
            gaps_examined=stats.examined,
            best_points=best_points,
            exhausted_side=exhausted,
            heap_stale=heap_stale,
            lb_prunes=lb_prunes,
        )
    record = _retrace(
        workspace, conn, meet, marks, radius, passable, max_gaps, stats,
        budget,
    )
    if sink.enabled and stats.cap_hits > 0:
        sink.emit(
            SearchCapHit(
                conn.conn_id,
                stats.cap_hits,
                stats.searches,
                max_gaps,
                record is not None,
            )
        )
    if record is None:
        return LeeSearchResult(
            routed=False,
            expansions=expansions,
            marked=marked,
            blocked=True,
            reason=(
                "retrace failed (gap cap)"
                if stats.cap_hits > 0
                else "retrace failed"
            ),
            cap_hits=stats.cap_hits,
            gaps_examined=stats.examined,
            best_points=best_points,
            heap_stale=heap_stale,
            lb_prunes=lb_prunes,
        )
    return LeeSearchResult(
        routed=True,
        record=record,
        expansions=expansions,
        marked=marked,
        cap_hits=stats.cap_hits,
        gaps_examined=stats.examined,
        best_points=best_points,
        heap_stale=heap_stale,
        lb_prunes=lb_prunes,
    )


def _goal_clip(
    workspace: RoutingWorkspace, p: ViaPoint, target: ViaPoint, slack: int
) -> Box:
    """Corridor box for goal-mode neighbor generation, in grid coords.

    Once a meet of cost ``mu`` is known, any useful neighbor ``s`` of
    ``p`` must satisfy ``g(p) + manhattan(p, s) + manhattan(s, t) <=
    mu - 1`` (the push filter with the Manhattan floor of the bound).
    A site ``e`` via units outside the p-t bounding interval on either
    axis detours at least ``2e``, so everything past ``slack // 2``
    (``slack`` = the margin left over the straight p-t corridor) can
    never pass the filter — the strips are clipped to this box before
    the gap scan runs.
    """
    grid = workspace.grid
    half = (slack // 2) * grid.grid_per_via
    p_pt = grid.via_to_grid(p)
    t_pt = grid.via_to_grid(target)
    return Box(
        min(p_pt.gx, t_pt.gx) - half,
        min(p_pt.gy, t_pt.gy) - half,
        max(p_pt.gx, t_pt.gx) + half,
        max(p_pt.gy, t_pt.gy) + half,
    )


def _lee_route_goal(
    workspace: RoutingWorkspace,
    conn: Connection,
    radius: int,
    passable: FrozenSet[int],
    bounds: Tuple[TargetBounds, TargetBounds],
    max_expansions: int,
    max_gaps: int,
    single_front: bool,
    sink: EventSink,
    budget: Optional[BudgetTracker],
    stats: SearchStats,
) -> LeeSearchResult:
    """The goal-mode search loop (``RouterConfig.search = "goal"``).

    Differences from the classic loop, all driven by the admissible
    per-side ``bounds``:

    * heaps order on ``f = g + GOAL_WEIGHT * lb`` where ``g`` is the
      accumulated Manhattan length of the via-waypoint chain (via
      units) — a weighted-A* ordering instead of the multiplicative
      ``distance * hops`` heuristic;
    * each step expands the side with the *smaller open frontier*
      (Pohl's cardinality criterion) rather than the globally cheapest
      pop.  This is where most of the measured expansion saving comes
      from: a connection walled into a small pocket drains that pocket
      in ``|pocket|`` expansions flat, instead of racing a large
      opposing frontier against it, and on open boards the balanced
      fronts meet near the middle;
    * a cross-mark does not stop the search: it records a meet candidate
      of cost ``g_a + g_b`` and the loop keeps improving it until
      ``min(heap_a) + min(heap_b) >= mu`` (no open pair of frontier
      nodes can beat the best meet — early bidirectional termination;
      with ``GOAL_WEIGHT > 1`` the minima are inflated, so this fires
      quickly and the tail past the first meet is nearly free);
    * with a meet in hand, expansions and pushes that the bound proves
      useless (``g + lb >= mu``, or more remaining hops than expansion
      budget) are discarded (``lb_prunes``), and neighbor strips are
      clipped to the corridor that can still pass the push filter;
    * a target unreachable by hop geometry alone (single-orientation
      boards, see :meth:`TargetBounds.hop_bound`) is pruned pre-meet —
      sound, because hop reachability is symmetric, so no meet can
      exist either;
    * when one frontier drains pre-meet the live side keeps expanding
      for up to ``GOAL_TAIL_CAP`` extra pops before blocked is
      declared.  The dead side's marks blanket its entire reachable
      set, so the live side can still cross into it and complete the
      route — classic (paper Modification 2) gives up here, and its
      interleaved ordering just happens to meet first most of the
      time.  The cap bounds what a *truly* blocked connection pays for
      the second opinion.

    Completion safety is structural: pre-meet the loop explores exactly
    like A* (no pruning beyond the geometric-unreachability case), and
    every post-meet prune already has a routable meet in hand — so a
    stale-free bound can affect route choice and speed, never turn a
    routable connection into a blocked one.
    """
    a, b = conn.a, conn.b
    sources = (a, b)
    targets = (b, a)
    marks: Tuple[Dict[ViaPoint, Mark], Dict[ViaPoint, Mark]] = (
        {a: (0, None, None)},
        {b: (0, None, None)},
    )
    dists: Tuple[Dict[ViaPoint, int], Dict[ViaPoint, int]] = ({a: 0}, {b: 0})
    heaps: Tuple[list, list] = (
        [(GOAL_WEIGHT * bounds[0].lower_bound(a), 0, a)],
        [(GOAL_WEIGHT * bounds[1].lower_bound(b), 0, b)],
    )
    counter = itertools.count(1)
    best: List[Tuple[float, ViaPoint]] = [
        (float("inf"), a),
        (float("inf"), b),
    ]
    expansions = 0
    heap_stale = 0
    lb_prunes = 0
    mu = 0
    meet: Optional[Tuple[int, ViaPoint, ViaPoint, int]] = None
    reason = ""
    exhausted = ""
    tail_left = GOAL_TAIL_CAP
    while True:
        if not heaps[0] or not heaps[1]:
            if meet is not None:
                break  # keep the best meet found so far
            if (
                single_front
                or (not heaps[0] and not heaps[1])
                or tail_left <= 0
            ):
                # Blocked: both reachable sets are marked without a
                # cross-mark ever forming, or the capped one-sided tail
                # ran out.  Keep the side that drained *first* for the
                # rip-up hint.
                if not exhausted:
                    exhausted = "a" if not heaps[0] else "b"
                reason = "wavefront exhausted"
                break
            # One frontier drained pre-meet: capped one-sided tail
            # (see the docstring).
            if not exhausted:
                exhausted = "a" if not heaps[0] else "b"
            tail_left -= 1
        if expansions >= max_expansions:
            if meet is None:
                reason = "expansion limit"
            break
        if (
            budget is not None
            and (expansions & SEARCH_CHECK_MASK) == 0
            and budget.search_exceeded()
        ):
            if meet is None:
                reason = "budget exhausted"
            break
        if (
            meet is not None
            and heaps[0]
            and heaps[1]
            and heaps[0][0][0] + heaps[1][0][0] >= mu
        ):
            # Early bidirectional termination: any undiscovered path
            # crosses both open frontiers, so it costs at least the sum
            # of the heap minima — the best meet cannot be beaten.
            break
        if single_front:
            side = 0
        elif not heaps[0]:
            side = 1
        elif not heaps[1]:
            side = 0
        else:
            # Pohl's cardinality criterion: grow the smaller frontier.
            side = 0 if len(heaps[0]) <= len(heaps[1]) else 1
        _, _, p = heappop(heaps[side])
        if p in marks[1 - side] and p != sources[side]:
            heap_stale += 1
            continue
        side_bounds = bounds[side]
        g_p = dists[side][p]
        if meet is not None:
            if g_p + side_bounds.lower_bound(p) >= mu:
                lb_prunes += 1
                continue
            if side_bounds.hop_bound(p) > max_expansions - expansions:
                lb_prunes += 1
                continue
        elif side_bounds.hop_bound(p) >= HOPS_UNREACHABLE:
            lb_prunes += 1
            continue
        expansions += 1
        hops_p = marks[side][p][0]
        target = targets[side]
        clip = None
        if meet is not None:
            # slack >= 0 here: the pop survived the f-prune above, and
            # the bound never drops below Manhattan distance.
            clip = _goal_clip(
                workspace, p, target, mu - 1 - g_p - manhattan(p, target)
            )
        for n, layer_index in _neighbors(
            workspace, p, radius, passable, max_gaps, stats, budget, clip
        ):
            if n in marks[side]:
                continue
            g_n = g_p + manhattan(p, n) + GOAL_HOP_COST
            if n in marks[1 - side]:
                cand = g_n + dists[1 - side][n]
                if meet is None or cand < mu:
                    mu = cand
                    meet = (side, p, n, layer_index)
            lb_n = side_bounds.lower_bound(n)
            if meet is not None and g_n + lb_n >= mu:
                lb_prunes += 1
                continue
            marks[side][n] = (hops_p + 1, p, layer_index)
            dists[side][n] = g_n
            f_n = g_n + GOAL_WEIGHT * lb_n
            heappush(heaps[side], (f_n, next(counter), n))
            if f_n < best[side][0]:
                best[side] = (f_n, n)
    best_points = (best[0][1], best[1][1])
    return _finish(
        workspace, conn, meet, marks, radius, passable, max_gaps, stats,
        budget, sink, expansions, best_points, reason, exhausted,
        heap_stale, lb_prunes,
    )


def _retrace(
    workspace: RoutingWorkspace,
    conn: Connection,
    meet: Tuple[int, ViaPoint, ViaPoint, int],
    marks: Tuple[Dict[ViaPoint, Mark], Dict[ViaPoint, Mark]],
    radius: int,
    passable: FrozenSet[int],
    max_gaps: int,
    stats: Optional[SearchStats] = None,
    budget: Optional[BudgetTracker] = None,
) -> Optional[RouteRecord]:
    """Retrace from the meeting point to the two sources (Figure 15).

    "The links in the retraced path are constructed with Trace.  They may
    all be on different layers."  Each hop's trace is searched in the strip
    of the via it was discovered from; installed hop by hop so later hops
    treat earlier ones as passable.  On any failure the partial route is
    rolled back.

    A via is drilled at a junction only when the resolved layers of the
    two adjoining links actually differ: the layer-fallback attempts can
    land consecutive links on the *same* layer, where a drill would be a
    wasted hole (it inflated the Table 1 via counts).  The junction's
    drill decision therefore waits until the next link's layer is known —
    safe, because the search already proved the site available and the
    connection's own segments are passable to its later traces.
    """
    side, p, n, meet_layer = meet
    # Edges as (u, v, layer, strip anchor): anchor is the via whose radius
    # strip the hop was discovered in (the parent in the original search).
    edges: List[Tuple[ViaPoint, ViaPoint, int, ViaPoint]] = []
    left = _back_chain(marks[side], p, "ab"[side])
    for i in range(len(left) - 1):
        u, _ = left[i]
        v, layer_index = left[i + 1]
        edges.append((u, v, layer_index, u))
    edges.append((p, n, meet_layer, p))
    right = _back_chain(marks[1 - side], n, "ab"[1 - side])
    # right runs source_other .. n; reverse it to continue n .. source_other.
    for i in range(len(right) - 1, 0, -1):
        u, layer_index = right[i]
        v, _ = right[i - 1]
        # The hop u<-v was discovered from parent v's strip.
        edges.append((u, v, layer_index, v))
    if side == 1:
        # The chains ran from b towards a; normalize the route to a -> b.
        edges = [
            (v, u, layer_index, anchor)
            for u, v, layer_index, anchor in reversed(edges)
        ]
    builder = workspace.route_builder(conn.conn_id, passable)
    grid = workspace.grid
    prev_layer: Optional[int] = None
    for u, v, layer_index, anchor in edges:
        pieces = None
        attempts = [(layer_index, anchor)]
        # Fallbacks: same layer anchored at either end, then any layer.
        attempts.append((layer_index, u))
        attempts.append((layer_index, v))
        for other_index in range(workspace.n_layers):
            if other_index != layer_index:
                attempts.append((other_index, u))
                attempts.append((other_index, v))
        for try_layer, try_anchor in attempts:
            layer = workspace.layers[try_layer]
            box = grid.via_strip(
                try_anchor, radius, _strip_axis(layer.orientation)
            )
            pieces = trace(
                layer,
                grid.via_to_grid(u),
                grid.via_to_grid(v),
                box,
                passable,
                max_gaps,
                stats,
                budget,
            )
            if pieces is not None:
                layer_index = try_layer
                break
        if pieces is None:
            builder.abort()
            return None
        if (
            prev_layer is not None
            and layer_index != prev_layer
            and u != conn.a
            and u != conn.b
        ):
            builder.drill(u)
        builder.add_link(
            layer_index, grid.via_to_grid(u), grid.via_to_grid(v), pieces
        )
        prev_layer = layer_index
    return builder.commit()
