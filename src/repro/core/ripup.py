"""Rip-up and putback (Section 8.3).

When both optimal strategies and Lee's algorithm fail, the point that made
the most progress towards the target (the least-cost point ever inserted
into the exhausted wavefront) is known.  *Obstructions* is called around it
once per routing layer; the connections using vias or traces in that
neighborhood are ripped up, the current connection is retried from the
beginning, and afterwards the ripped-up connections are put back exactly
where they were — the few that no longer fit are marked for re-routing.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from repro.channels.segment import is_rippable_owner
from repro.channels.workspace import RouteRecord, RoutingWorkspace
from repro.core.single_layer import obstructions
from repro.grid.coords import ViaPoint
from repro.grid.geometry import Box


def select_victims(
    workspace: RoutingWorkspace,
    point: ViaPoint,
    rip_radius: int,
    passable: FrozenSet[int] = frozenset(),
) -> Set[int]:
    """Connections obstructing the neighborhood of ``point``.

    ``rip_radius`` is in via-grid units.  Only routed connections are
    returned; pins and tesselation fill are immovable.
    """
    grid = workspace.grid
    center = grid.via_to_grid(point)
    r = rip_radius * grid.grid_per_via
    box = Box(
        center.gx - r, center.gy - r, center.gx + r, center.gy + r
    ).clipped_to(grid.bounds)
    owners: Set[int] = set()
    for layer in workspace.layers:
        owners |= obstructions(layer, center, box, passable)
    return {
        owner
        for owner in owners
        if is_rippable_owner(owner) and workspace.is_routed(owner)
    }


def rip_up(
    workspace: RoutingWorkspace, victims: Set[int]
) -> Dict[int, RouteRecord]:
    """Remove the victims' routes, keeping their records for putback."""
    return {
        conn_id: workspace.remove_connection(conn_id) for conn_id in victims
    }


def put_back(
    workspace: RoutingWorkspace, ripped: Dict[int, RouteRecord]
) -> List[int]:
    """Re-insert ripped-up routes exactly where they were.

    Returns the connection ids that could not be restored and must be
    marked for re-routing in the connection list.
    """
    failed: List[int] = []
    for conn_id, record in ripped.items():
        if workspace.is_routed(conn_id):
            continue  # already re-routed meanwhile
        if not workspace.restore_record(record):
            failed.append(conn_id)
    return failed
