"""Rip-up and putback (Section 8.3).

When both optimal strategies and Lee's algorithm fail, the point that made
the most progress towards the target (the least-cost point ever inserted
into the exhausted wavefront) is known.  *Obstructions* is called around it
once per routing layer; the connections using vias or traces in that
neighborhood are ripped up, the current connection is retried from the
beginning, and afterwards the ripped-up connections are put back exactly
where they were — the few that no longer fit are marked for re-routing.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from repro.channels.segment import is_rippable_owner
from repro.channels.workspace import RouteRecord, RoutingWorkspace
from repro.core.single_layer import obstructions
from repro.grid.coords import ViaPoint
from repro.grid.geometry import Box
from repro.obs.events import PutbackResult, RipUpVictims
from repro.obs.sinks import NULL_SINK, EventSink


def select_victims(
    workspace: RoutingWorkspace,
    point: ViaPoint,
    rip_radius: int,
    passable: FrozenSet[int] = frozenset(),
    sink: EventSink = NULL_SINK,
    for_conn: int = -1,
    attempt: int = 0,
) -> Set[int]:
    """Connections obstructing the neighborhood of ``point``.

    ``rip_radius`` is in via-grid units.  Only routed connections are
    returned; pins and tesselation fill are immovable.  When victims are
    found, a :class:`repro.obs.events.RipUpVictims` event is emitted on
    ``sink`` naming them (``for_conn`` is the instigating connection).
    """
    grid = workspace.grid
    center = grid.via_to_grid(point)
    r = rip_radius * grid.grid_per_via
    box = Box(
        center.gx - r, center.gy - r, center.gx + r, center.gy + r
    ).clipped_to(grid.bounds)
    owners: Set[int] = set()
    for layer in workspace.layers:
        owners |= obstructions(layer, center, box, passable)
    victims = {
        owner
        for owner in owners
        if is_rippable_owner(owner) and workspace.is_routed(owner)
    }
    if victims and sink.enabled:
        sink.emit(
            RipUpVictims(
                for_conn, point, rip_radius, tuple(sorted(victims)), attempt
            )
        )
    return victims


def rip_up(
    workspace: RoutingWorkspace, victims: Set[int]
) -> Dict[int, RouteRecord]:
    """Remove the victims' routes, keeping their records for putback."""
    return {
        conn_id: workspace.remove_connection(conn_id) for conn_id in victims
    }


def put_back(
    workspace: RoutingWorkspace,
    ripped: Dict[int, RouteRecord],
    sink: EventSink = NULL_SINK,
) -> List[int]:
    """Re-insert ripped-up routes exactly where they were.

    Returns the connection ids that could not be restored and must be
    marked for re-routing in the connection list.  Each restore attempt
    emits a :class:`repro.obs.events.PutbackResult` event on ``sink``.
    """
    failed: List[int] = []
    for conn_id, record in ripped.items():
        if workspace.is_routed(conn_id):
            continue  # already re-routed meanwhile
        restored = workspace.restore_record(record)
        if not restored:
            failed.append(conn_id)
        if sink.enabled:
            sink.emit(PutbackResult(conn_id, restored))
    return failed
