"""Observability: routing event stream + workspace invariant auditor.

Dion built grr by "careful analysis of the router output to find
inefficient routing patterns" (Section 12).  This package is that
analysis surface for the reproduction:

* :mod:`repro.obs.events` — typed events for everything the router does
  (passes, strategy attempts, Lee exhaustion, rip-up, putback, parallel
  merge demotions, audits);
* :mod:`repro.obs.sinks` — pluggable event sinks (null / ring buffer /
  JSONL file) with a near-zero-cost disabled path;
* :mod:`repro.obs.audit` — :class:`WorkspaceAuditor`, which verifies the
  cross-structure invariants the routing engine depends on (via map vs.
  layer rescan, sole-owner cache freshness, records vs. installed
  segments, drilled-via ownership).

See ``docs/OBSERVABILITY.md`` for the event schema and invariants.
"""

from repro.obs.audit import (
    AuditReport,
    RestoreBlockedError,
    Violation,
    WorkspaceAuditError,
    WorkspaceAuditor,
)
from repro.obs.events import (
    AuditRun,
    BudgetCheckpoint,
    BudgetExhausted,
    CacheStats,
    ConnectionFailed,
    ConnectionRouted,
    DegradedMode,
    DeltaSync,
    EcoBegin,
    EcoInvalidate,
    EcoReroute,
    ImproveAttempt,
    LeeExhausted,
    MergeDemoted,
    PassEnd,
    PassStart,
    PoolStart,
    PutbackResult,
    RipUpVictims,
    RouteEvent,
    SearchCapHit,
    ServeAccept,
    ServeAdmit,
    ServeEvict,
    ServeReject,
    StrategyAttempt,
    WaveEnd,
    WaveStart,
    WorkerRetry,
    WorkerSteal,
)
from repro.obs.sinks import (
    NULL_SINK,
    EventSink,
    JsonlSink,
    NullSink,
    RingBufferSink,
)

__all__ = [
    "AuditReport",
    "AuditRun",
    "BudgetCheckpoint",
    "BudgetExhausted",
    "CacheStats",
    "ConnectionFailed",
    "ConnectionRouted",
    "DegradedMode",
    "DeltaSync",
    "EcoBegin",
    "EcoInvalidate",
    "EcoReroute",
    "EventSink",
    "ImproveAttempt",
    "JsonlSink",
    "LeeExhausted",
    "MergeDemoted",
    "NULL_SINK",
    "NullSink",
    "PassEnd",
    "PassStart",
    "PoolStart",
    "PutbackResult",
    "RestoreBlockedError",
    "RingBufferSink",
    "RipUpVictims",
    "RouteEvent",
    "SearchCapHit",
    "ServeAccept",
    "ServeAdmit",
    "ServeEvict",
    "ServeReject",
    "StrategyAttempt",
    "Violation",
    "WaveEnd",
    "WaveStart",
    "WorkerRetry",
    "WorkerSteal",
    "WorkspaceAuditError",
    "WorkspaceAuditor",
]
