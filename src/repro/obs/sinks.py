"""Event sinks: where the routing event stream goes.

The contract is deliberately tiny so emit sites stay cheap:

* ``sink.enabled`` — a plain attribute the hot path reads before
  constructing an event.  :data:`NULL_SINK` (the default everywhere)
  answers ``False``, so a run without tracing pays one attribute load
  per emit site and never builds an event object.
* ``sink.emit(event)`` — called only when ``enabled`` is true.
* ``sink.close()`` — flush/release; sinks are also context managers.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import IO, Iterator, List, Optional, Union

from repro.obs.events import RouteEvent


class EventSink:
    """Base sink: enabled, collects nothing.  Subclass and override."""

    #: Hot-path guard: emit sites skip event construction when False.
    enabled: bool = True

    def emit(self, event: RouteEvent) -> None:
        """Receive one event (only called when ``enabled``)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any resources; idempotent."""

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullSink(EventSink):
    """The disabled sink: drops everything, reports ``enabled = False``."""

    enabled = False

    def emit(self, event: RouteEvent) -> None:  # pragma: no cover - guarded
        pass


#: Shared default sink; routers that are given no sink use this.
NULL_SINK = NullSink()


class RingBufferSink(EventSink):
    """Keep the last ``capacity`` events in memory (tests, debugging)."""

    def __init__(self, capacity: int = 100_000) -> None:
        self.events: deque = deque(maxlen=capacity)

    def emit(self, event: RouteEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[RouteEvent]:
        return iter(self.events)

    def by_kind(self, kind: str) -> List[RouteEvent]:
        """All buffered events with the given ``kind`` tag, in order."""
        return [e for e in self.events if e.kind == kind]


class JsonlSink(EventSink):
    """Append events as JSON lines to a file or stream (``--trace``).

    Lifecycle contract (a long-lived service keeps sinks around, so it
    must be explicit, not an ``assert`` that vanishes under ``-O``):

    * :meth:`emit` after :meth:`close` raises :class:`RuntimeError` —
      an event stream that silently loses its tail is worse than a
      loud caller bug.
    * :meth:`close` is idempotent and safe under concurrent callers:
      exactly one caller flushes and (when the sink opened the path
      itself) closes the underlying stream; the rest are no-ops.
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        self._owns_stream = isinstance(target, str)
        self._stream: Optional[IO[str]] = (
            open(target, "w") if isinstance(target, str) else target
        )
        self._close_lock = threading.Lock()
        self.emitted = 0

    def emit(self, event: RouteEvent) -> None:
        stream = self._stream
        if stream is None:
            raise RuntimeError("JsonlSink is closed")
        stream.write(json.dumps(event.to_dict()) + "\n")
        self.emitted += 1

    def close(self) -> None:
        with self._close_lock:
            stream, self._stream = self._stream, None
        if stream is None:
            return
        stream.flush()
        if self._owns_stream:
            stream.close()
