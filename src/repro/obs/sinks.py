"""Event sinks: where the routing event stream goes.

The contract is deliberately tiny so emit sites stay cheap:

* ``sink.enabled`` — a plain attribute the hot path reads before
  constructing an event.  :data:`NULL_SINK` (the default everywhere)
  answers ``False``, so a run without tracing pays one attribute load
  per emit site and never builds an event object.
* ``sink.emit(event)`` — called only when ``enabled`` is true.
* ``sink.close()`` — flush/release; sinks are also context managers.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Iterator, List, Optional, Union

from repro.obs.events import RouteEvent


class EventSink:
    """Base sink: enabled, collects nothing.  Subclass and override."""

    #: Hot-path guard: emit sites skip event construction when False.
    enabled: bool = True

    def emit(self, event: RouteEvent) -> None:
        """Receive one event (only called when ``enabled``)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any resources; idempotent."""

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullSink(EventSink):
    """The disabled sink: drops everything, reports ``enabled = False``."""

    enabled = False

    def emit(self, event: RouteEvent) -> None:  # pragma: no cover - guarded
        pass


#: Shared default sink; routers that are given no sink use this.
NULL_SINK = NullSink()


class RingBufferSink(EventSink):
    """Keep the last ``capacity`` events in memory (tests, debugging)."""

    def __init__(self, capacity: int = 100_000) -> None:
        self.events: deque = deque(maxlen=capacity)

    def emit(self, event: RouteEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[RouteEvent]:
        return iter(self.events)

    def by_kind(self, kind: str) -> List[RouteEvent]:
        """All buffered events with the given ``kind`` tag, in order."""
        return [e for e in self.events if e.kind == kind]


class JsonlSink(EventSink):
    """Append events as JSON lines to a file or stream (``--trace``)."""

    def __init__(self, target: Union[str, IO[str]]) -> None:
        self._owns_stream = isinstance(target, str)
        self._stream: Optional[IO[str]] = (
            open(target, "w") if isinstance(target, str) else target
        )
        self.emitted = 0

    def emit(self, event: RouteEvent) -> None:
        assert self._stream is not None, "sink is closed"
        self._stream.write(json.dumps(event.to_dict()) + "\n")
        self.emitted += 1

    def close(self) -> None:
        if self._stream is None:
            return
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()
        self._stream = None
