"""WorkspaceAuditor: machine-checkable cross-structure invariants.

The routing engine keeps four structures that must agree at all times —
per-layer channels, the via map (Section 4's cached counts), the
drilled-via registry, and the per-connection :class:`RouteRecord`\\ s.
The auditor re-derives each relation from scratch and reports every
disagreement:

1. **via-count** — the via map's cover count at every site equals a
   fresh rescan of the layers;
2. **sole-owner** — the via map's sole-owner cache is exactly the owner
   set the layers report (single owner, or the MIXED marker);
3. **record-segment** — every segment a ``RouteRecord`` claims is
   installed in its channel with the right owner, and every installed
   connection-owned segment is claimed by exactly that connection's
   record;
4. **via-owner** — every drilled via has a live owner: a routed
   connection that lists it in its record, or a real board pin at that
   position.

``audit()`` returns a report; ``check()`` raises
:class:`WorkspaceAuditError` listing the violations.  The auditor never
mutates the workspace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Set, Tuple

from repro.channels.segment import FILL_OWNER, is_rippable_owner, owner_pin_id
from repro.channels.via_map import MIXED
from repro.grid.coords import ViaPoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.channels.workspace import RouteRecord, RoutingWorkspace


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with a human-readable description."""

    invariant: str
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.message}"


@dataclass
class AuditReport:
    """Everything one audit checked and every violation it found."""

    violations: List[Violation] = field(default_factory=list)
    checked_sites: int = 0
    checked_segments: int = 0
    checked_records: int = 0
    checked_vias: int = 0

    @property
    def ok(self) -> bool:
        """True if every invariant held."""
        return not self.violations

    def summary(self) -> str:
        """One line: what was checked and how it went."""
        verdict = (
            "clean" if self.ok else f"{len(self.violations)} violation(s)"
        )
        return (
            f"audit {verdict}: {self.checked_sites} via sites, "
            f"{self.checked_segments} segments, "
            f"{self.checked_records} records, "
            f"{self.checked_vias} drilled vias"
        )


class WorkspaceAuditError(RuntimeError):
    """An audit found violations (raised by :meth:`WorkspaceAuditor.check`)."""

    def __init__(self, report: AuditReport, context: str = "") -> None:
        self.report = report
        self.context = context
        lines = [v for v in report.violations[:20]]
        detail = "\n  ".join(str(v) for v in lines)
        more = len(report.violations) - len(lines)
        if more > 0:
            detail += f"\n  ... and {more} more"
        where = f" after {context}" if context else ""
        super().__init__(
            f"workspace invariants broken{where} "
            f"({len(report.violations)} violation(s)):\n  {detail}"
        )


class RestoreBlockedError(RuntimeError):
    """A route that must always fit back could not be restored.

    Carries the auditor's diff of what occupies the route's claimed
    space — raised by :func:`repro.core.improve.improve_routes` instead
    of a bare ``assert`` so the failure survives ``python -O`` and says
    *what* blocked the restore.
    """

    def __init__(self, conn_id: int, blockers: List[str]) -> None:
        self.conn_id = conn_id
        self.blockers = blockers
        detail = "\n  ".join(blockers) if blockers else "(no blocker found)"
        super().__init__(
            f"route for connection {conn_id} could not be restored; "
            f"blocked by:\n  {detail}"
        )


class WorkspaceAuditor:
    """On-demand verifier of the workspace's cross-structure invariants."""

    def __init__(self, workspace: "RoutingWorkspace") -> None:
        self.workspace = workspace

    # ------------------------------------------------------------------
    # the audit
    # ------------------------------------------------------------------

    def audit(self) -> AuditReport:
        """Check every invariant; returns the full report."""
        report = AuditReport()
        self._audit_via_map(report)
        self._audit_records(report)
        self._audit_drilled_vias(report)
        return report

    def check(self, context: str = "") -> AuditReport:
        """Audit and raise :class:`WorkspaceAuditError` on any violation."""
        report = self.audit()
        if not report.ok:
            raise WorkspaceAuditError(report, context)
        return report

    # ------------------------------------------------------------------
    # invariants 1+2: via map vs. a fresh layer rescan
    # ------------------------------------------------------------------

    def _audit_via_map(self, report: AuditReport) -> None:
        ws = self.workspace
        via_map = ws.via_map
        for vy in range(via_map.via_ny):
            for vx in range(via_map.via_nx):
                via = ViaPoint(vx, vy)
                report.checked_sites += 1
                point = ws.grid.via_to_grid(via)
                expected = 0
                owners: Set[int] = set()
                for layer in ws.layers:
                    owner = layer.owner_at(point)
                    if owner is not None:
                        expected += 1
                        owners.add(owner)
                cached = via_map.count(via)
                if cached != expected:
                    report.violations.append(
                        Violation(
                            "via-count",
                            f"{via}: map says {cached} covers, layers "
                            f"hold {expected}",
                        )
                    )
                sole = via_map.sole_owner(via)
                if expected == 0:
                    if sole is not None:
                        report.violations.append(
                            Violation(
                                "sole-owner",
                                f"{via}: empty site caches owner {sole!r}",
                            )
                        )
                elif len(owners) == 1:
                    owner = next(iter(owners))
                    if sole != owner:
                        report.violations.append(
                            Violation(
                                "sole-owner",
                                f"{via}: cache says {sole!r}, layers say "
                                f"sole owner {owner}",
                            )
                        )
                elif sole is not MIXED:
                    report.violations.append(
                        Violation(
                            "sole-owner",
                            f"{via}: cache says {sole!r}, layers say "
                            f"mixed owners {sorted(owners)}",
                        )
                    )

    # ------------------------------------------------------------------
    # invariant 3: records vs. installed segments
    # ------------------------------------------------------------------

    def _audit_records(self, report: AuditReport) -> None:
        ws = self.workspace
        # Everything the channels actually hold, per connection owner.
        installed: Dict[int, Set[Tuple[int, int, int, int]]] = {}
        for layer_index, channel_index, seg in ws.iter_installed_segments():
            report.checked_segments += 1
            if not is_rippable_owner(seg.owner):
                continue  # pins and fill are not record-tracked
            installed.setdefault(seg.owner, set()).add(
                (layer_index, channel_index, seg.lo, seg.hi)
            )
        for conn_id, record in ws.records.items():
            report.checked_records += 1
            claimed = set(record.segments)
            have = installed.pop(conn_id, set())
            for seg in sorted(claimed - have):
                report.violations.append(
                    Violation(
                        "record-segment",
                        f"connection {conn_id} claims segment "
                        f"(layer={seg[0]}, channel={seg[1]}, "
                        f"[{seg[2]},{seg[3]}]) that is not installed",
                    )
                )
            for seg in sorted(have - claimed):
                report.violations.append(
                    Violation(
                        "record-segment",
                        f"connection {conn_id} owns installed segment "
                        f"(layer={seg[0]}, channel={seg[1]}, "
                        f"[{seg[2]},{seg[3]}]) missing from its record",
                    )
                )
        for owner, segs in sorted(installed.items()):
            report.violations.append(
                Violation(
                    "record-segment",
                    f"owner {owner} holds {len(segs)} installed "
                    f"segment(s) but has no route record",
                )
            )

    # ------------------------------------------------------------------
    # invariant 4: every drilled via has a live owner
    # ------------------------------------------------------------------

    def _audit_drilled_vias(self, report: AuditReport) -> None:
        ws = self.workspace
        pins = ws.board.pins
        for via, owner in sorted(ws.via_map.drilled_sites().items()):
            report.checked_vias += 1
            if owner == FILL_OWNER:
                report.violations.append(
                    Violation(
                        "via-owner", f"{via}: drilled by tesselation fill"
                    )
                )
            elif owner < 0:
                pin_id = owner_pin_id(owner)
                if pin_id >= len(pins) or pins[pin_id].position != via:
                    report.violations.append(
                        Violation(
                            "via-owner",
                            f"{via}: drilled by pin token {owner} but no "
                            f"pin lives there",
                        )
                    )
            else:
                record = ws.records.get(owner)
                if record is None:
                    report.violations.append(
                        Violation(
                            "via-owner",
                            f"{via}: drilled by connection {owner} which "
                            f"has no route record",
                        )
                    )
                elif via not in record.vias:
                    report.violations.append(
                        Violation(
                            "via-owner",
                            f"{via}: drilled by connection {owner} but "
                            f"missing from its record",
                        )
                    )
        # The reverse direction: every via a record lists must be drilled
        # by that connection.
        for conn_id, record in ws.records.items():
            for via in record.vias:
                if ws.via_map.drilled_owner(via) != conn_id:
                    report.violations.append(
                        Violation(
                            "via-owner",
                            f"connection {conn_id} records via {via} "
                            f"which is drilled by "
                            f"{ws.via_map.drilled_owner(via)!r}",
                        )
                    )

    # ------------------------------------------------------------------
    # restore diffs (used by improve_routes' integrity guard)
    # ------------------------------------------------------------------

    def restore_blockers(self, record: "RouteRecord") -> List[str]:
        """What currently occupies the space a record needs to restore.

        One line per blocked claim: foreign owners overlapping a claimed
        segment, or an existing drill at a claimed via site.  Empty when
        nothing blocks (the restore should then succeed).
        """
        ws = self.workspace
        conn = record.conn_id
        blockers: List[str] = []
        for layer_index, channel_index, lo, hi in record.segments:
            channel = ws.layers[layer_index].channel(channel_index)
            for seg in channel.overlapping(lo, hi):
                if seg.owner != conn:
                    blockers.append(
                        f"segment (layer={layer_index}, "
                        f"channel={channel_index}, [{lo},{hi}]) overlaps "
                        f"[{seg.lo},{seg.hi}] owned by {seg.owner}"
                    )
        for via in record.vias:
            owner = ws.via_map.drilled_owner(via)
            if owner is not None:
                blockers.append(f"via {via} already drilled by {owner}")
        return blockers
