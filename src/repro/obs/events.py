"""Typed routing events: the machine-readable trace of a routing run.

Every event is a frozen dataclass with a class-level ``kind`` tag and a
:meth:`RouteEvent.to_dict` that flattens it to JSON-ready primitives
(``ViaPoint``/tuples become lists).  Events are only ever *constructed*
behind an ``if sink.enabled:`` guard at the emit site, so a disabled run
pays one attribute load per site and nothing else.

The event vocabulary (see ``docs/OBSERVABILITY.md`` for the schema):

==================  ====================================================
kind                emitted when
==================  ====================================================
``pass_start``      the serial pass loop starts a pass
``pass_end``        a pass finishes (with before/after unrouted counts)
``strategy``        one strategy attempt on one connection resolves
``lee_exhausted``   a Lee wavefront dies, with the best points (§8.3)
``cap_hit``         single-layer searches truncated at the max_gaps cap
``rip_up``          rip-up victims are selected around a point
``putback``         one ripped-up victim is restored (or fails to be)
``routed``          a connection's route is finally installed
``failed``          a connection exhausts every strategy and rip-up round
``wave_start``      the parallel router fans out one wave
``wave_end``        one wave's merge completes
``merge_demoted``   a wave record collides in the merge and is demoted
``improve``         the improvement pass re-routes one detour
``audit``           a workspace audit ran (violation count included)
``cache_stats``     free-gap cache hit/miss totals for a routing phase
``bounds_stats``    lower-bound cache hit/rebuild totals (goal search)
``budget_checkpoint``  a timed routing run passed a coarse checkpoint
``budget_exhausted``   a wall-clock budget scope ran out (once per scope)
``worker_retry``    a failed wave worker is being retried with backoff
``degraded``        a degradation path engaged (group -> residue, ...)
``pool_start``      the persistent worker pool spawned its workers
``delta_sync``      a workspace delta was broadcast to the pool
``worker_steal``    an idle pool worker took a group from the deque
``auto_serial``     the size heuristic routed the board serially
``backend_selected``  a router resolved and applied its search backend
``serve_accept``    the routing service received a job-creating request
``serve_admit``     the admission controller let a job start routing
``serve_reject``    an overloaded service answered 429 + retry-after
``serve_evict``     an idle warm session hit its TTL and was closed
==================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar, Dict, Optional, Tuple


def _plain(value):
    """Flatten one field value to JSON-ready primitives."""
    if isinstance(value, tuple):  # ViaPoint is a NamedTuple
        return [_plain(v) for v in value]
    return value


@dataclass(frozen=True)
class RouteEvent:
    """Base class: every event is a frozen dataclass with a ``kind`` tag."""

    kind: ClassVar[str] = "event"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready flat dict: ``{"event": kind, **fields}``."""
        out: Dict[str, object] = {"event": self.kind}
        for f in fields(self):
            out[f.name] = _plain(getattr(self, f.name))
        return out


@dataclass(frozen=True)
class PassStart(RouteEvent):
    """The serial pass loop begins pass ``index`` over ``pending`` conns."""

    kind: ClassVar[str] = "pass_start"
    index: int
    pending: int


@dataclass(frozen=True)
class PassEnd(RouteEvent):
    """Pass ``index`` ended leaving ``unrouted`` of ``pending`` connections."""

    kind: ClassVar[str] = "pass_end"
    index: int
    pending: int
    unrouted: int


@dataclass(frozen=True)
class StrategyAttempt(RouteEvent):
    """One strategy resolved (succeeded or failed) for one connection."""

    kind: ClassVar[str] = "strategy"
    conn_id: int
    strategy: str
    routed: bool
    attempt: int = 0


@dataclass(frozen=True)
class LeeExhausted(RouteEvent):
    """A Lee wavefront died; ``best_a``/``best_b`` seed rip-up (§8.3)."""

    kind: ClassVar[str] = "lee_exhausted"
    conn_id: int
    side: str
    reason: str
    expansions: int
    best_a: Optional[Tuple[int, int]] = None
    best_b: Optional[Tuple[int, int]] = None


@dataclass(frozen=True)
class SearchCapHit(RouteEvent):
    """One Lee route hit the ``max_gaps`` cap in ``cap_hits`` single-layer
    searches: those searches were *truncated*, not proven blocked, so a
    failure alongside this event must not be read as a hard blockage."""

    kind: ClassVar[str] = "cap_hit"
    conn_id: int
    cap_hits: int
    searches: int
    max_gaps: int
    routed: bool


@dataclass(frozen=True)
class RipUpVictims(RouteEvent):
    """Victims were selected around ``point`` for connection ``for_conn``."""

    kind: ClassVar[str] = "rip_up"
    for_conn: int
    point: Tuple[int, int]
    radius: int
    victims: Tuple[int, ...]
    attempt: int = 0


@dataclass(frozen=True)
class PutbackResult(RouteEvent):
    """One ripped-up victim was (or could not be) restored unchanged."""

    kind: ClassVar[str] = "putback"
    conn_id: int
    restored: bool
    for_conn: int = -1


@dataclass(frozen=True)
class ConnectionRouted(RouteEvent):
    """A connection's route was installed by ``strategy``."""

    kind: ClassVar[str] = "routed"
    conn_id: int
    strategy: str
    attempt: int
    vias: int
    wire_length: int


@dataclass(frozen=True)
class ConnectionFailed(RouteEvent):
    """A connection exhausted every strategy and rip-up round this pass."""

    kind: ClassVar[str] = "failed"
    conn_id: int
    attempts: int


@dataclass(frozen=True)
class WaveStart(RouteEvent):
    """The parallel router fans out one wave of groups."""

    kind: ClassVar[str] = "wave_start"
    wave: int
    groups: int
    connections: int


@dataclass(frozen=True)
class WaveEnd(RouteEvent):
    """One wave merged: ``merged`` installed, ``demoted`` collided."""

    kind: ClassVar[str] = "wave_end"
    wave: int
    merged: int
    demoted: int
    failed: int


@dataclass(frozen=True)
class MergeDemoted(RouteEvent):
    """A wave record collided with the master state and was demoted."""

    kind: ClassVar[str] = "merge_demoted"
    conn_id: int
    wave: int


@dataclass(frozen=True)
class ImproveAttempt(RouteEvent):
    """The improvement pass re-routed one detoured connection."""

    kind: ClassVar[str] = "improve"
    conn_id: int
    wire_before: int
    wire_after: int
    kept: bool


@dataclass(frozen=True)
class AuditRun(RouteEvent):
    """A workspace audit completed (``violations == 0`` on a clean board)."""

    kind: ClassVar[str] = "audit"
    context: str
    violations: int


@dataclass(frozen=True)
class BudgetCheckpoint(RouteEvent):
    """A timed run passed a coarse budget checkpoint (pass/wave start).

    Only emitted when a wall-clock limit is configured; ``remaining`` is
    None when no *total* deadline is set (per-connection limits only)."""

    kind: ClassVar[str] = "budget_checkpoint"
    context: str
    elapsed: float
    remaining: Optional[float]


@dataclass(frozen=True)
class BudgetExhausted(RouteEvent):
    """A budget scope ran out: ``scope`` is ``"deadline"`` (the whole
    call) or ``"connection_timeout"`` (one connection's allowance).
    Emitted once per exhaustion — the router then degrades gracefully
    instead of raising."""

    kind: ClassVar[str] = "budget_exhausted"
    scope: str
    context: str
    elapsed: float
    limit: float


@dataclass(frozen=True)
class WorkerRetry(RouteEvent):
    """A wave worker failed (``reason``: ``crash`` / ``error`` /
    ``deadline``) and its group is being relaunched after ``backoff``
    seconds (attempt numbers are zero-based)."""

    kind: ClassVar[str] = "worker_retry"
    strip_index: int
    attempt: int
    reason: str
    backoff: float


@dataclass(frozen=True)
class DegradedMode(RouteEvent):
    """A degradation path engaged: a wave group exhausted its retry
    budget and was reassigned to the serial residue pass, or the parity
    fallback was skipped to preserve a deadline-limited partial result.
    ``connections`` counts the connections affected."""

    kind: ClassVar[str] = "degraded"
    context: str
    reason: str
    connections: int


@dataclass(frozen=True)
class PoolStart(RouteEvent):
    """The persistent worker pool came up: ``workers`` processes via
    ``start_method`` (``"fork"`` inherits the master copy-on-write and
    ships zero bytes; ``"spawn"`` ships one pickled snapshot of
    ``snapshot_bytes`` to every worker).  Emitted once per routing call
    that engages the pool, after all workers are running."""

    kind: ClassVar[str] = "pool_start"
    workers: int
    start_method: str
    snapshot_bytes: int
    seconds: float


@dataclass(frozen=True)
class DeltaSync(RouteEvent):
    """One workspace delta was broadcast to every live pool worker:
    ``ops`` route-level operations (``added`` installs, ``removed``
    rip-ups) in ``payload_bytes`` on the wire.  ``epoch`` is the
    master's synchronization counter after applying this delta."""

    kind: ClassVar[str] = "delta_sync"
    epoch: int
    ops: int
    added: int
    removed: int
    payload_bytes: int


@dataclass(frozen=True)
class WorkerSteal(RouteEvent):
    """An idle pool worker took group ``strip_index`` from wave
    ``wave``'s shared deque, leaving ``queued`` groups waiting.  The
    deal order never changes results (every worker routes against the
    same sync epoch), only which process does the work."""

    kind: ClassVar[str] = "worker_steal"
    worker: int
    wave: int
    strip_index: int
    queued: int


@dataclass(frozen=True)
class AutoSerial(RouteEvent):
    """The board-size heuristic routed this call serially without
    touching the pool: ``reason`` is ``"below_min_demand"`` (too little
    routing work to amortize pool startup) or ``"congested"``
    (demand/supply utilization so high that waves would poison the
    residue and trigger the parity fallback's double routing)."""

    kind: ClassVar[str] = "auto_serial"
    reason: str
    demand: int
    supply: int
    utilization: float
    connections: int


@dataclass(frozen=True)
class CacheStats(RouteEvent):
    """Free-gap cache totals for one routing phase (``repro.channels.
    gap_cache``): requests served without vs. with a recompute, plus the
    small-channel requests that bypassed memoization entirely (neither
    hits nor misses; excluded from ``hit_rate``)."""

    kind: ClassVar[str] = "cache_stats"
    context: str
    hits: int
    misses: int
    hit_rate: float
    bypassed: int = 0


@dataclass(frozen=True)
class BoundsStats(RouteEvent):
    """Distance lower-bound cache totals for one routing phase
    (``repro.core.bounds``): target lookups served from a warm,
    generation-valid entry (``hits``) vs. lookups that had to rescan
    the target's arrival bands (``rebuilds``).  Only emitted when the
    cache was consulted, i.e. under ``search="goal"``."""

    kind: ClassVar[str] = "bounds_stats"
    context: str
    hits: int
    rebuilds: int
    hit_rate: float


@dataclass(frozen=True)
class BackendSelected(RouteEvent):
    """A router resolved its configured search backend and applied it to
    the workspace: ``requested`` is the ``RouterConfig.backend`` value
    ("auto" included), ``selected`` the resolved kernel set actually
    dispatching ("python" or "numpy").  Emitted once per ``route()``
    call, so traces record which backend produced every route."""

    kind: ClassVar[str] = "backend_selected"
    requested: str
    selected: str


@dataclass(frozen=True)
class ServeAccept(RouteEvent):
    """The routing service received a request that creates a job:
    ``endpoint`` is the request path (``/route`` / ``/eco/begin`` /
    ``/eco/reroute``), ``job_id`` the id assigned, ``session`` the warm
    session the job targets (empty for stateless cold routes).  Emitted
    before the admission decision, so accepts = admits + rejects."""

    kind: ClassVar[str] = "serve_accept"
    endpoint: str
    job_id: str
    session: str = ""


@dataclass(frozen=True)
class ServeAdmit(RouteEvent):
    """The admission controller let job ``job_id`` start routing after
    ``queued_seconds`` in the bounded queue (0.0 when a slot was free
    immediately); ``running`` counts jobs routing concurrently
    including this one."""

    kind: ClassVar[str] = "serve_admit"
    job_id: str
    queued_seconds: float
    running: int


@dataclass(frozen=True)
class ServeReject(RouteEvent):
    """The service refused a job instead of queueing without bound:
    ``running`` jobs were routing and ``queued`` waiting when the
    request arrived, so it was answered with HTTP 429 and a
    ``retry_after`` hint (seconds) derived from observed job times."""

    kind: ClassVar[str] = "serve_reject"
    endpoint: str
    running: int
    queued: int
    retry_after: float


@dataclass(frozen=True)
class ServeEvict(RouteEvent):
    """A warm session sat idle past the server's TTL and was closed
    (worker pool released, delta recording ended) after
    ``idle_seconds`` without a request."""

    kind: ClassVar[str] = "serve_evict"
    session: str
    idle_seconds: float


@dataclass(frozen=True)
class EcoBegin(RouteEvent):
    """An ECO mutation started on a routed board: ``op`` is
    ``"move_part"`` / ``"add_nets"`` / ``"cut_nets"`` and ``target``
    the part id, net count or net id it applies to.  Emitted before any
    state changes, so a trace brackets each edit exactly."""

    kind: ClassVar[str] = "eco_begin"
    op: str
    target: int


@dataclass(frozen=True)
class EcoInvalidate(RouteEvent):
    """One ECO mutation finished computing its invalidated connection
    set: ``invalidated`` connections now need rerouting, of which
    ``ripped`` had installed routes removed and ``cascades`` were
    surviving routes ripped only because the edit collided with their
    wiring (e.g. a moved pin landing on a trace)."""

    kind: ClassVar[str] = "eco_invalidate"
    op: str
    invalidated: int
    ripped: int
    cascades: int


@dataclass(frozen=True)
class EcoReroute(RouteEvent):
    """An incremental reroute completed: of ``total`` connections in
    the session, ``reused`` kept their installed routes untouched,
    ``rerouted`` were (re)routed by this call and ``failed`` remain
    unrouted.  ``invalidated`` counts the connections the mutations
    since the previous reroute marked dirty; ``fast_path`` is True when
    nothing was pending and the router was never invoked."""

    kind: ClassVar[str] = "eco_reroute"
    total: int
    invalidated: int
    reused: int
    rerouted: int
    failed: int
    fast_path: bool
    seconds: float
