"""repro — a faithful reproduction of "Fast Printed Circuit Board Routing"
(Jeremy Dion, DAC 1987 / DEC WRL research report 88-1): the *grr* greedy
printed-circuit-board router and every substrate it depends on.

Quickstart::

    from repro import Board, GreedyRouter, RouterConfig, string_board

    board = Board.create(via_nx=40, via_ny=30, n_signal_layers=4)
    ...  # place parts, add nets (see repro.workloads for generators)
    connections = string_board(board)
    result = GreedyRouter(board, RouterConfig(radius=1)).route(connections)
    print(result.summary())
"""

from repro.board import (
    Board,
    Connection,
    Layer,
    LayerKind,
    LayerStack,
    LogicFamily,
    Net,
    NetKind,
    Package,
    Part,
    Pin,
    PinRole,
    TechRules,
    dip_package,
    sip_package,
)
from repro.channels import RoutingWorkspace
from repro.core import (
    GreedyRouter,
    RouterConfig,
    RoutingResult,
    Strategy,
    sort_connections,
)
from repro.grid import Box, GridPoint, Orientation, RoutingGrid, ViaPoint

__version__ = "1.0.0"

__all__ = [
    "Board",
    "Box",
    "Connection",
    "GreedyRouter",
    "GridPoint",
    "Layer",
    "LayerKind",
    "LayerStack",
    "LogicFamily",
    "Net",
    "NetKind",
    "Orientation",
    "Package",
    "Part",
    "Pin",
    "PinRole",
    "RouterConfig",
    "RoutingGrid",
    "RoutingResult",
    "RoutingWorkspace",
    "Strategy",
    "TechRules",
    "ViaPoint",
    "dip_package",
    "sip_package",
    "sort_connections",
    "string_board",
]


def string_board(board):
    """Run the stringer on a board's signal nets (convenience wrapper)."""
    from repro.stringer import Stringer

    return Stringer(board).string_all()
