"""repro — a faithful reproduction of "Fast Printed Circuit Board Routing"
(Jeremy Dion, DAC 1987 / DEC WRL research report 88-1): the *grr* greedy
printed-circuit-board router and every substrate it depends on.

Quickstart (the stable ``repro.api`` facade — see ``docs/API.md``)::

    from repro import RouteBudget, RouteRequest, route, string_board

    board = ...  # build or load a board (see repro.workloads)
    request = RouteRequest(
        board=board,
        connections=string_board(board),
        budget=RouteBudget(deadline_seconds=10.0),
    )
    response = route(request)
    print(response.result.summary(), response.stopped_reason)
"""

from repro.api import RouteRequest, RouteResponse, begin_eco, reroute, route
from repro.board import (
    Board,
    Connection,
    Layer,
    LayerKind,
    LayerStack,
    LogicFamily,
    Net,
    NetKind,
    Package,
    Part,
    Pin,
    PinRole,
    TechRules,
    dip_package,
    sip_package,
)
from repro.channels import RoutingWorkspace
from repro.eco import EcoError, EcoSession, EcoStats
from repro.core import (
    GreedyRouter,
    RouteBudget,
    RouterConfig,
    RoutingResult,
    Strategy,
    sort_connections,
)
from repro.grid import Box, GridPoint, Orientation, RoutingGrid, ViaPoint

__version__ = "1.0.0"

__all__ = [
    "Board",
    "Box",
    "Connection",
    "EcoError",
    "EcoSession",
    "EcoStats",
    "GreedyRouter",
    "GridPoint",
    "Layer",
    "LayerKind",
    "LayerStack",
    "LogicFamily",
    "Net",
    "NetKind",
    "Orientation",
    "Package",
    "Part",
    "Pin",
    "PinRole",
    "RouteBudget",
    "RouteRequest",
    "RouteResponse",
    "RouterConfig",
    "RoutingGrid",
    "RoutingResult",
    "RoutingWorkspace",
    "Strategy",
    "TechRules",
    "ViaPoint",
    "begin_eco",
    "dip_package",
    "reroute",
    "route",
    "sip_package",
    "sort_connections",
    "string_board",
]


def string_board(board):
    """Run the stringer on a board's signal nets (convenience wrapper)."""
    from repro.stringer import Stringer

    return Stringer(board).string_all()
