"""The routing service: HTTP endpoints over warm sessions and jobs.

Endpoint surface (see ``docs/API.md`` → "Serving"):

=======================  ==============================================
``POST /route``          admission-controlled cold route of one board
``POST /eco/begin``      cold-route (or adopt) a board into a named
                         warm session
``POST /eco/mutate``     apply ECO ops (move/cut/add) to a session
``POST /eco/reroute``    admission-controlled incremental reroute
``POST /eco/end``        close a session (also ``DELETE /sessions/{n}``)
``GET /sessions``        list warm sessions
``GET /jobs/{id}``       job state + result payload
``GET /jobs/{id}/events``  the job's routing event stream as SSE
``GET /healthz``         capacity, counters, process bookkeeping
=======================  ==============================================

Threading model: the event loop owns all bookkeeping (jobs, sessions,
admission); routing runs in a bounded thread pool sized to the
admission ``max_concurrent``, so an admitted job always has a thread.
Each job gets an :class:`AsyncSink` bridging its event stream back to
SSE subscribers.
"""

from __future__ import annotations

import asyncio
import io
import os
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Set, Tuple

from repro.api import begin_eco, request_from_text, route as api_route
from repro.board.technology import LogicFamily
from repro.channels.workspace import RoutingWorkspace
from repro.core.profiling import RouterProfile
from repro.core.result import Strategy
from repro.core.router import RouterConfig
from repro.eco import EcoError, EcoSession
from repro.grid.coords import ViaPoint
from repro.io import load_routes, save_route_dump
from repro.obs.events import ServeAccept, ServeAdmit, ServeEvict, ServeReject
from repro.obs.sinks import NULL_SINK, EventSink
from repro.serve.admission import AdmissionController, AdmissionRejected
from repro.serve.config import ServeConfig
from repro.serve.http import (
    HttpError,
    Request,
    error_payload,
    read_request,
    retry_after_header,
    send_json,
    send_sse,
    start_sse,
)
from repro.serve.jobs import Job, JobRegistry
from repro.serve.sessions import ManagedSession, SessionManager
from repro.serve.sink import AsyncSink


#: Live servers whose fds must be closed inside forked worker processes.
#:
#: A warm session's kept pool forks from the server process, inheriting
#: every open fd — including the accepted client socket of the very
#: request that triggered the fork.  The server finishes and closes its
#: copy, but the long-lived worker still holds the fd, so the client
#: never sees EOF (and after shutdown the workers would keep the port
#: bound).  Transient pools exit quickly and mask the bug; kept pools
#: pin the socket for their whole lifetime.  The after-fork hook below
#: runs in each fresh worker and drops every inherited server fd.
_LIVE_SERVERS: "weakref.WeakSet[RoutingServer]" = weakref.WeakSet()
_AFTER_FORK_REGISTERED = False


def _close_server_fds_after_fork(servers) -> None:
    # Runs inside the forked worker process, never in the server.
    for server in list(servers):
        server._close_fds_in_child()


def _register_after_fork_hook() -> None:
    global _AFTER_FORK_REGISTERED
    if _AFTER_FORK_REGISTERED:
        return
    from multiprocessing import util as mp_util

    mp_util.register_after_fork(_LIVE_SERVERS, _close_server_fds_after_fork)
    _AFTER_FORK_REGISTERED = True


def _require_str(body: Dict[str, object], field: str) -> str:
    value = body.get(field)
    if not isinstance(value, str) or not value:
        raise HttpError(400, f"missing or non-string field {field!r}")
    return value


def _board_format(body: Dict[str, object]) -> str:
    """The wire board format: native text unless the request says kicad."""
    value = body.get("format", "native")
    if not isinstance(value, str) or value not in ("native", "kicad"):
        raise HttpError(400, "format must be 'native' or 'kicad'")
    return value


def _connections_text(body: Dict[str, object], board_format: str):
    """Connections text: required for native boards, absent for kicad."""
    if board_format == "kicad":
        if body.get("connections"):
            raise HttpError(
                400, "kicad boards embed their netlist; omit 'connections'"
            )
        return None
    return _require_str(body, "connections")


def _router_config(body: Dict[str, object], default_workers: int):
    """Per-request router knobs: worker count + pool heuristic override."""
    import dataclasses

    try:
        workers = int(body.get("workers", default_workers))
    except (TypeError, ValueError):
        raise HttpError(400, "workers must be an integer")
    config = RouterConfig(workers=workers)
    if "pool_auto_serial" in body:
        config = dataclasses.replace(
            config, pool_auto_serial=bool(body["pool_auto_serial"])
        )
    return config


def _optional_timeout(body: Dict[str, object]) -> Optional[float]:
    value = body.get("timeout")
    if value is None:
        return None
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise HttpError(400, "timeout must be a number")


class RoutingServer:
    """The long-lived routing service (one instance per process)."""

    def __init__(
        self, config: ServeConfig, sink: Optional[EventSink] = None
    ) -> None:
        self.config = config
        #: Server-level event stream (``serve_*`` events — an access
        #: log when pointed at a JsonlSink).  Per-job routing events go
        #: to each job's AsyncSink instead.
        self.sink = sink if sink is not None else NULL_SINK
        #: serve_accepts / serve_admits / serve_rejects / serve_evicts
        #: counters, mirroring the four serve events one-for-one.
        self.profile = RouterProfile()
        self.jobs = JobRegistry(config.max_jobs_retained)
        self.sessions = SessionManager(config.session_ttl_seconds)
        self.admission = AdmissionController(
            config.max_concurrent, config.max_queue_depth
        )
        self._executor = ThreadPoolExecutor(
            max_workers=config.max_concurrent,
            thread_name_prefix="grr-serve",
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._evictor: Optional[asyncio.Task] = None
        self._tasks: Set[asyncio.Task] = set()
        self._started_at = time.time()
        self.address: Optional[Tuple[str, int]] = None
        #: fds a forked worker must close (listener + open client
        #: connections); see :data:`_LIVE_SERVERS`.
        self._tracked_fds: Set[int] = set()
        _LIVE_SERVERS.add(self)
        _register_after_fork_hook()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._loop = asyncio.get_running_loop()
        self._started_at = time.time()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        if self.config.session_ttl_seconds is not None:
            self._evictor = asyncio.create_task(self._evict_loop())
        for sock in self._server.sockets:
            self._tracked_fds.add(sock.fileno())
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    def _close_fds_in_child(self) -> None:
        """Drop inherited server fds; runs in forked workers only."""
        for fd in list(self._tracked_fds):
            try:
                os.close(fd)
            except OSError:
                pass
        self._tracked_fds.clear()

    async def shutdown(self) -> None:
        """Graceful stop: finish running jobs, close every session.

        After this returns, no worker process the server created is
        alive — sessions close their kept pools, and per-job pools
        never outlive their routing call.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._evictor is not None:
            self._evictor.cancel()
            try:
                await self._evictor
            except asyncio.CancelledError:
                pass
            self._evictor = None
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self.sessions.close_all()
        self._executor.shutdown(wait=True)

    def worker_pids(self) -> List[int]:
        """Pids of every worker process warm sessions keep alive.

        The clean-shutdown check: after :meth:`shutdown`, every pid
        this returned must be dead (per-job pools are closed by the
        routing call itself, so sessions are the only keepers).
        """
        pids: Set[int] = set()
        for name in self.sessions.names():
            managed = self.sessions.get(name)
            if managed is not None and managed.ready:
                pids.update(managed.session.pool_pids)
        return sorted(pids)

    async def _evict_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.evict_interval_seconds)
            for name, idle in self.sessions.evict_idle():
                if self.sink.enabled:
                    self.sink.emit(ServeEvict(name, round(idle, 3)))
                self.profile.bump("serve_evicts")

    # ------------------------------------------------------------------
    # job machinery
    # ------------------------------------------------------------------

    def _accept(
        self, endpoint: str, kind: str, session: str = ""
    ) -> Tuple[Job, Optional[asyncio.Future]]:
        """Create a job and make the admission decision, 429 on full."""
        sink = AsyncSink(self._loop, capacity=self.config.event_capacity)
        job = self.jobs.create(kind, sink, session=session)
        if self.sink.enabled:
            self.sink.emit(ServeAccept(endpoint, job.job_id, session))
        self.profile.bump("serve_accepts")
        try:
            grant = self.admission.reserve()
        except AdmissionRejected as exc:
            if self.sink.enabled:
                self.sink.emit(
                    ServeReject(
                        endpoint,
                        exc.running,
                        exc.queued,
                        round(exc.retry_after, 3),
                    )
                )
            self.profile.bump("serve_rejects")
            job.state = "failed"
            job.error = str(exc)
            job.finished = time.time()
            job.sink.close()
            self.jobs.finish(job)
            raise HttpError(
                429, str(exc), headers=retry_after_header(exc.retry_after)
            )
        return job, grant

    async def _execute_job(
        self,
        job: Job,
        grant: Optional[asyncio.Future],
        work,
        managed: Optional[ManagedSession] = None,
    ) -> None:
        """Run one admitted (or queued) job to completion."""
        loop = self._loop
        try:
            if grant is not None:
                job.state = "queued"
                waited_from = loop.time()
                try:
                    await grant
                except asyncio.CancelledError:
                    self.admission.abandon(grant)
                    job.state = "failed"
                    job.error = "cancelled while queued"
                    return
                job.queued_seconds = loop.time() - waited_from
            job.state = "running"
            job.started = time.time()
            if self.sink.enabled:
                self.sink.emit(
                    ServeAdmit(
                        job.job_id,
                        round(job.queued_seconds, 6),
                        self.admission.running,
                    )
                )
            self.profile.bump("serve_admits")
            ran_from = loop.time()
            try:
                if managed is not None:
                    async with managed.lock:
                        job.result = await loop.run_in_executor(
                            self._executor, work
                        )
                        self.sessions.touch(managed)
                else:
                    job.result = await loop.run_in_executor(
                        self._executor, work
                    )
                job.state = "done"
            except Exception as exc:  # job failure is a job outcome
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
            finally:
                self.admission.release(loop.time() - ran_from)
        finally:
            job.finished = time.time()
            job.sink.close()
            self.jobs.finish(job)

    def _spawn(self, coro) -> asyncio.Task:
        task = asyncio.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    @staticmethod
    def _route_payload(response, workspace, include_routes: bool) -> Dict:
        result = response.result
        payload: Dict[str, object] = {
            "total": result.total_count,
            "routed": result.routed_count,
            "failed": len(result.failed),
            "complete": result.complete,
            "stopped_reason": response.stopped_reason,
            "elapsed_seconds": round(response.elapsed_seconds, 6),
            "counters": dict(response.counters),
        }
        if include_routes:
            buffer = io.StringIO()
            save_route_dump(workspace, buffer)
            payload["routes"] = buffer.getvalue()
        return payload

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------

    async def _handle_route(self, request: Request, writer) -> None:
        body = request.json()
        board_text = _require_str(body, "board")
        board_format = _board_format(body)
        connections_text = _connections_text(body, board_format)
        router_config = _router_config(body, self.config.workers)
        include_routes = bool(body.get("include_routes", False))
        wait = bool(body.get("wait", True))
        budget = self.config.budget_for(_optional_timeout(body))
        job, grant = self._accept("/route", "route")
        sink = job.sink

        def work() -> Dict:
            req = request_from_text(
                board_text,
                connections_text,
                format=board_format,
                budget=budget,
                config=router_config,
                sink=sink,
            )
            response = api_route(req)
            return self._route_payload(
                response, response.result.workspace, include_routes
            )

        task = self._spawn(self._execute_job(job, grant, work))
        if wait:
            await asyncio.shield(task)
            status = 200 if job.state == "done" else 500
            await send_json(writer, status, job.to_dict())
        else:
            await send_json(writer, 202, job.to_dict(include_result=False))

    async def _handle_eco_begin(self, request: Request, writer) -> None:
        body = request.json()
        name = _require_str(body, "session")
        board_text = _require_str(body, "board")
        board_format = _board_format(body)
        connections_text = _connections_text(body, board_format)
        routes_text = body.get("routes")
        router_config = _router_config(body, self.config.workers)
        include_routes = bool(body.get("include_routes", False))
        budget = self.config.budget_for(_optional_timeout(body))
        try:
            managed = self.sessions.reserve(name)
        except KeyError:
            raise HttpError(409, f"session {name!r} already exists")

        if isinstance(routes_text, str):
            # Adoption: the routed state ships with the request; no
            # routing happens, so no admission slot is needed.
            def adopt() -> Dict:
                req = request_from_text(
                    board_text,
                    connections_text,
                    format=board_format,
                    config=router_config,
                )
                workspace = RoutingWorkspace(req.board)
                restored = load_routes(workspace, io.StringIO(routes_text))
                session = EcoSession(
                    req.board,
                    list(req.connections),
                    config=req.resolved_config,
                    workspace=workspace,
                    routed_by={
                        conn_id: Strategy.PUTBACK for conn_id in restored
                    },
                )
                self.sessions.fulfill(managed, session)
                return {
                    "session": name,
                    "adopted": len(restored),
                    "total": len(req.connections),
                }

            try:
                payload = await self._loop.run_in_executor(None, adopt)
            except Exception:
                self.sessions.abort(managed)
                raise
            await send_json(writer, 200, payload)
            return

        job, grant = None, None
        try:
            job, grant = self._accept("/eco/begin", "eco-begin", session=name)
        except HttpError:
            self.sessions.abort(managed)
            raise
        sink = job.sink

        def work() -> Dict:
            req = request_from_text(
                board_text,
                connections_text,
                format=board_format,
                budget=budget,
                config=router_config,
                sink=sink,
            )
            response = api_route(req)
            session = begin_eco(req, response)
            self.sessions.fulfill(managed, session)
            payload = self._route_payload(
                response, session.workspace, include_routes
            )
            payload["session"] = name
            return payload

        task = self._spawn(self._execute_job(job, grant, work))
        await asyncio.shield(task)
        if job.state != "done":
            self.sessions.abort(managed)
            await send_json(writer, 500, job.to_dict())
            return
        await send_json(writer, 200, job.to_dict())

    def _session_or_404(self, name: str) -> ManagedSession:
        managed = self.sessions.get(name)
        if managed is None:
            raise HttpError(404, f"no session {name!r}")
        if not managed.ready:
            raise HttpError(409, f"session {name!r} is still being created")
        return managed

    async def _handle_eco_mutate(self, request: Request, writer) -> None:
        body = request.json()
        name = _require_str(body, "session")
        ops = body.get("ops")
        if not isinstance(ops, list) or not ops:
            raise HttpError(400, "ops must be a non-empty list")
        managed = self._session_or_404(name)
        parsed = [self._parse_op(op) for op in ops]

        def work() -> List[Dict]:
            session = managed.session
            out: List[Dict] = []
            for apply_op in parsed:
                stats = apply_op(session)
                out.append(
                    {
                        "op": stats.op,
                        "invalidated": list(stats.invalidated),
                        "ripped": list(stats.ripped),
                        "cascades": list(stats.cascades),
                        "dropped": list(stats.dropped),
                        "added": list(stats.added),
                        "net_ids": list(stats.net_ids),
                    }
                )
            return out

        async with managed.lock:
            try:
                applied = await self._loop.run_in_executor(None, work)
            except EcoError as exc:
                raise HttpError(422, f"ECO rejected: {exc}")
            finally:
                self.sessions.touch(managed)
        await send_json(
            writer,
            200,
            {
                "session": name,
                "applied": applied,
                "pending": len(managed.session.pending),
            },
        )

    @staticmethod
    def _parse_op(op):
        """Validate one mutation op eagerly; returns session -> EcoStats."""
        if not isinstance(op, dict):
            raise HttpError(400, "each op must be an object")
        kind = op.get("op")
        if kind == "move_part":
            try:
                part_id = int(op["part"])
                to = op["to"]
                origin = ViaPoint(int(to[0]), int(to[1]))
            except (KeyError, TypeError, ValueError, IndexError):
                raise HttpError(
                    400, 'move_part needs {"part": id, "to": [vx, vy]}'
                )
            return lambda session: session.move_part(part_id, origin)
        if kind == "cut_nets":
            try:
                nets = [int(n) for n in op["nets"]]
            except (KeyError, TypeError, ValueError):
                raise HttpError(400, 'cut_nets needs {"nets": [id, ...]}')
            return lambda session: session.cut_nets(nets)
        if kind == "add_nets":
            try:
                groups = [
                    [int(p) for p in group] for group in op["pin_groups"]
                ]
                family = LogicFamily[str(op.get("family", "ECL")).upper()]
            except (KeyError, TypeError, ValueError):
                raise HttpError(
                    400, 'add_nets needs {"pin_groups": [[pin, ...], ...]}'
                )
            return lambda session: session.add_nets(groups, family=family)
        raise HttpError(400, f"unknown op {kind!r}")

    async def _handle_eco_reroute(self, request: Request, writer) -> None:
        body = request.json()
        name = _require_str(body, "session")
        include_routes = bool(body.get("include_routes", False))
        wait = bool(body.get("wait", True))
        budget = self.config.budget_for(_optional_timeout(body))
        managed = self._session_or_404(name)
        job, grant = self._accept("/eco/reroute", "eco", session=name)
        sink = job.sink

        def work() -> Dict:
            session = managed.session
            previous_sink = session.sink
            session.sink = sink
            try:
                response = session.reroute(budget=budget)
            finally:
                session.sink = previous_sink
            payload = self._route_payload(
                response, session.workspace, include_routes
            )
            payload["session"] = name
            payload["pool_alive"] = session.pool_alive
            return payload

        task = self._spawn(
            self._execute_job(job, grant, work, managed=managed)
        )
        if wait:
            await asyncio.shield(task)
            status = 200 if job.state == "done" else 500
            await send_json(writer, status, job.to_dict())
        else:
            await send_json(writer, 202, job.to_dict(include_result=False))

    async def _handle_eco_end(self, name: str, writer) -> None:
        managed = self.sessions.get(name)
        if managed is None:
            raise HttpError(404, f"no session {name!r}")
        async with managed.lock:
            closed = self.sessions.close(name)
        await send_json(writer, 200, {"session": name, "closed": closed})

    async def _handle_sessions(self, writer) -> None:
        rows = []
        for name in self.sessions.names():
            managed = self.sessions.get(name)
            if managed is None:
                continue
            row: Dict[str, object] = {
                "session": name,
                "ready": managed.ready,
                "idle_seconds": round(self.sessions.idle_seconds(managed), 3),
                "busy": managed.lock.locked(),
            }
            if managed.ready:
                row["connections"] = len(managed.session.connections)
                row["pending"] = len(managed.session.pending)
                row["pool_alive"] = managed.session.pool_alive
            rows.append(row)
        await send_json(writer, 200, {"sessions": rows})

    async def _handle_job(self, job_id: str, writer) -> None:
        job = self.jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"no job {job_id!r}")
        await send_json(writer, 200, job.to_dict())

    async def _handle_job_events(
        self, job_id: str, request: Request, writer
    ) -> None:
        job = self.jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"no job {job_id!r}")
        try:
            start = int(request.query.get("from", "0"))
        except ValueError:
            raise HttpError(400, "from must be an integer")
        await start_sse(writer)
        async for index, record in job.sink.subscribe(start=start):
            await send_sse(writer, record, event_id=index)
        await send_sse(
            writer,
            {"job": job.job_id, "state": job.state, "error": job.error},
            event="end",
        )

    async def _handle_healthz(self, writer) -> None:
        await send_json(
            writer,
            200,
            {
                "ok": True,
                "uptime_seconds": round(time.time() - self._started_at, 3),
                "admission": {
                    "running": self.admission.running,
                    "queued": self.admission.queued,
                    "max_concurrent": self.admission.max_concurrent,
                    "max_queue_depth": self.admission.max_queue_depth,
                    "admitted": self.admission.admitted,
                    "rejected": self.admission.rejected,
                    "avg_job_seconds": round(
                        self.admission.avg_job_seconds, 4
                    ),
                },
                "jobs": self.jobs.counts(),
                "sessions": self.sessions.names(),
                "counters": dict(self.profile.counters),
                "worker_pids": self.worker_pids(),
            },
        )

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _dispatch(self, request: Request, writer) -> None:
        method, path = request.method, request.path
        parts = [p for p in path.split("/") if p]
        if path == "/healthz" and method == "GET":
            await self._handle_healthz(writer)
        elif path == "/route" and method == "POST":
            await self._handle_route(request, writer)
        elif path == "/eco/begin" and method == "POST":
            await self._handle_eco_begin(request, writer)
        elif path == "/eco/mutate" and method == "POST":
            await self._handle_eco_mutate(request, writer)
        elif path == "/eco/reroute" and method == "POST":
            await self._handle_eco_reroute(request, writer)
        elif path == "/eco/end" and method == "POST":
            body = request.json()
            await self._handle_eco_end(_require_str(body, "session"), writer)
        elif path == "/sessions" and method == "GET":
            await self._handle_sessions(writer)
        elif len(parts) == 2 and parts[0] == "sessions" and method == "DELETE":
            await self._handle_eco_end(parts[1], writer)
        elif len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            await self._handle_job(parts[1], writer)
        elif (
            len(parts) == 3
            and parts[0] == "jobs"
            and parts[2] == "events"
            and method == "GET"
        ):
            await self._handle_job_events(parts[1], request, writer)
        else:
            raise HttpError(404, f"no route for {method} {path}")

    async def _handle_client(self, reader, writer) -> None:
        sock = writer.get_extra_info("socket")
        fd = sock.fileno() if sock is not None else None
        if fd is not None and fd >= 0:
            self._tracked_fds.add(fd)
        try:
            try:
                request = await read_request(
                    reader, self.config.max_body_bytes
                )
            except HttpError as exc:
                status, payload, headers = error_payload(exc)
                await send_json(writer, status, payload, headers)
                return
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                asyncio.LimitOverrunError,
            ):
                return
            if request is None:
                return
            try:
                await self._dispatch(request, writer)
            except HttpError as exc:
                status, payload, headers = error_payload(exc)
                await send_json(writer, status, payload, headers)
            except (ConnectionError, asyncio.IncompleteReadError):
                pass  # client went away mid-response
            except Exception as exc:  # never kill the accept loop
                try:
                    await send_json(
                        writer,
                        500,
                        {"error": f"{type(exc).__name__}: {exc}"},
                    )
                except (ConnectionError, RuntimeError):
                    pass
        finally:
            if fd is not None:
                self._tracked_fds.discard(fd)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass


def run_server(config: ServeConfig, sink: Optional[EventSink] = None) -> int:
    """Blocking entry point for ``grr serve``: serve until SIGINT/SIGTERM."""
    import signal

    async def main() -> None:
        server = RoutingServer(config, sink=sink)
        host, port = await server.start()
        print(f"grr serve: listening on http://{host}:{port}", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # non-Unix event loops
                pass
        await stop.wait()
        print("grr serve: shutting down", flush=True)
        await server.shutdown()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    return 0
