"""Named warm sessions: EcoSessions kept alive between HTTP calls.

This is the state that makes the service worth running: a session's
:class:`~repro.eco.EcoSession` carries the routed workspace, the kept
worker pool and the graduated gap caches across requests, so an edit →
reroute round trip costs what the *edit* costs, not a cold route.

Lifecycle rules a long-lived process forces:

* one request at a time per session — each holds an ``asyncio.Lock``
  while mutating or rerouting (routing itself runs in an executor
  thread; the lock spans the await);
* idle sessions are evicted after a TTL — eviction calls
  ``EcoSession.close()``, which releases the pool processes and ends
  the continuous delta recording (the two leaks PRs 5–6 made possible
  and this PR's bugfixes make impossible);
* a busy session is never evicted mid-job: the evictor skips sessions
  whose lock is held and re-judges them next scan.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Tuple

from repro.eco import EcoSession


class ManagedSession:
    """One named warm session plus its serving bookkeeping."""

    __slots__ = ("name", "session", "created", "last_used", "lock", "jobs")

    def __init__(
        self, name: str, session: Optional[EcoSession], now: float
    ) -> None:
        self.name = name
        #: None while the session is still being created (cold route in
        #: flight); the name is reserved but not usable yet.
        self.session = session
        self.created = now
        self.last_used = now
        self.lock = asyncio.Lock()
        self.jobs = 0

    @property
    def ready(self) -> bool:
        return self.session is not None


class SessionManager:
    """Name → warm session map with idle-TTL eviction."""

    def __init__(
        self, ttl_seconds: Optional[float], clock=time.monotonic
    ) -> None:
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._sessions: Dict[str, ManagedSession] = {}

    def __len__(self) -> int:
        return len(self._sessions)

    def names(self) -> List[str]:
        return sorted(self._sessions)

    def get(self, name: str) -> Optional[ManagedSession]:
        return self._sessions.get(name)

    def touch(self, managed: ManagedSession) -> None:
        managed.last_used = self._clock()

    def idle_seconds(self, managed: ManagedSession) -> float:
        return self._clock() - managed.last_used

    def reserve(self, name: str) -> ManagedSession:
        """Claim a name before the (async) cold route that fills it.

        Raises KeyError if the name is taken — the HTTP layer maps that
        to 409 Conflict.
        """
        if name in self._sessions:
            raise KeyError(name)
        managed = ManagedSession(name, None, self._clock())
        self._sessions[name] = managed
        return managed

    def fulfill(self, managed: ManagedSession, session: EcoSession) -> None:
        managed.session = session
        self.touch(managed)

    def abort(self, managed: ManagedSession) -> None:
        """Creation failed: release the reserved name."""
        if self._sessions.get(managed.name) is managed:
            del self._sessions[managed.name]

    def close(self, name: str) -> bool:
        """Close and forget one session (its pool dies with it)."""
        managed = self._sessions.pop(name, None)
        if managed is None:
            return False
        if managed.session is not None:
            managed.session.close()
        return True

    def close_all(self) -> None:
        for name in list(self._sessions):
            self.close(name)

    def evict_idle(self) -> List[Tuple[str, float]]:
        """Close sessions idle past the TTL; returns (name, idle) pairs.

        Sessions whose lock is held (a mutate/reroute in flight) are
        skipped and re-judged on the next scan, so eviction can never
        close a workspace out from under a running job.
        """
        if self.ttl_seconds is None:
            return []
        evicted: List[Tuple[str, float]] = []
        for name, managed in list(self._sessions.items()):
            if managed.lock.locked() or not managed.ready:
                continue
            idle = self.idle_seconds(managed)
            if idle >= self.ttl_seconds:
                self.close(name)
                evicted.append((name, idle))
        return evicted
