"""A thin HTTP/1.1 front over asyncio streams — stdlib only, no deps.

Just enough protocol for a JSON control plane plus SSE streaming:
request-line + headers + Content-Length bodies in; JSON (or
``text/event-stream``) out, one request per connection
(``Connection: close``).  Anything fancier (TLS, keep-alive, chunked
uploads) belongs in front of the service, not inside it.
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

#: Reason phrases for the statuses the server actually emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

MAX_HEADER_BYTES = 64 * 1024


class HttpError(Exception):
    """Raise anywhere in a handler to answer with a status + JSON body."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


class Request:
    """One parsed request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    def json(self) -> Dict[str, object]:
        """The body as a JSON object; 400 on anything else."""
        if not self.body:
            return {}
        try:
            data = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(data, dict):
            raise HttpError(400, "JSON body must be an object")
        return data


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> Optional[Request]:
    """Parse one request; None on a cleanly closed connection."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    try:
        method, target, _version = request_line.decode("latin-1").split()
    except ValueError:
        raise HttpError(400, "malformed request line")
    headers: Dict[str, str] = {}
    total = 0
    while True:
        line = await reader.readline()
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HttpError(400, "headers too large")
        if line in (b"\r\n", b"\n", b""):
            break
        try:
            name, value = line.decode("latin-1").split(":", 1)
        except ValueError:
            raise HttpError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()
    length = 0
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "bad Content-Length")
        if length > max_body_bytes:
            raise HttpError(413, f"body exceeds {max_body_bytes} bytes")
    body = await reader.readexactly(length) if length else b""
    split = urlsplit(target)
    query = dict(parse_qsl(split.query))
    return Request(method, unquote(split.path), query, headers, body)


def _head(
    status: int, headers: Dict[str, str], extra: Optional[Dict[str, str]]
) -> bytes:
    lines = [f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}"]
    merged = dict(headers)
    if extra:
        merged.update(extra)
    lines.extend(f"{name}: {value}" for name, value in merged.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_json(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Dict[str, object],
    headers: Optional[Dict[str, str]] = None,
) -> None:
    body = (json.dumps(payload) + "\n").encode("utf-8")
    writer.write(
        _head(
            status,
            {
                "Content-Type": "application/json",
                "Content-Length": str(len(body)),
                "Connection": "close",
            },
            headers,
        )
    )
    writer.write(body)
    await writer.drain()


def error_payload(exc: HttpError) -> Tuple[int, Dict[str, object], Dict]:
    payload: Dict[str, object] = {"error": exc.message, "status": exc.status}
    headers = dict(exc.headers)
    if exc.status == 429 and "Retry-After" not in headers:
        headers["Retry-After"] = "1"
    return exc.status, payload, headers


def retry_after_header(seconds: float) -> Dict[str, str]:
    """Retry-After must be an integer per RFC 9110; always round up."""
    return {"Retry-After": str(max(1, math.ceil(seconds)))}


async def start_sse(writer: asyncio.StreamWriter) -> None:
    writer.write(
        _head(
            200,
            {
                "Content-Type": "text/event-stream",
                "Cache-Control": "no-cache",
                "Connection": "close",
            },
            None,
        )
    )
    await writer.drain()


async def send_sse(
    writer: asyncio.StreamWriter,
    data: Dict[str, object],
    event_id: Optional[int] = None,
    event: Optional[str] = None,
) -> None:
    lines = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    if event is not None:
        lines.append(f"event: {event}")
    lines.append(f"data: {json.dumps(data)}")
    writer.write(("\n".join(lines) + "\n\n").encode("utf-8"))
    await writer.drain()
