"""Admission control: bound the work in flight, refuse the rest.

A long-lived router dies by queueing: accept everything and the backlog
grows until memory or every deadline is blown.  The controller holds
two bounds — ``max_concurrent`` jobs routing and ``max_queue_depth``
jobs waiting — and answers anything beyond them *immediately* with a
rejection carrying a Retry-After hint derived from observed job times,
which is the contract a load-balancer or client backoff loop needs.

Single-loop discipline: every method runs on the event loop; routing
itself happens in executor threads, so the controller never blocks.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Deque, Optional


class AdmissionRejected(Exception):
    """The server is at capacity; retry after ``retry_after`` seconds."""

    def __init__(self, running: int, queued: int, retry_after: float) -> None:
        super().__init__(
            f"at capacity: {running} running, {queued} queued; "
            f"retry after {retry_after:.1f}s"
        )
        self.running = running
        self.queued = queued
        self.retry_after = retry_after


class AdmissionController:
    """Two-bound admission: run up to N, queue up to M, reject the rest."""

    #: EMA weight for observed job durations (recent jobs dominate).
    EMA_ALPHA = 0.3

    def __init__(
        self,
        max_concurrent: int,
        max_queue_depth: int,
        clock=time.monotonic,
    ) -> None:
        self.max_concurrent = max(1, max_concurrent)
        self.max_queue_depth = max(0, max_queue_depth)
        self._clock = clock
        self.running = 0
        self._waiters: Deque[asyncio.Future] = deque()
        #: EMA of job wall time; seeds the Retry-After estimate before
        #: the first job completes.
        self.avg_job_seconds = 1.0
        self.admitted = 0
        self.rejected = 0

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def retry_after(self) -> float:
        """Seconds until a slot plausibly frees for a new arrival."""
        backlog = self.queued + 1
        estimate = self.avg_job_seconds * backlog / self.max_concurrent
        return max(0.5, min(estimate, 60.0))

    def reserve(self) -> Optional[asyncio.Future]:
        """The admission decision, made synchronously at request time.

        Returns None with a running slot claimed, or a future that
        resolves when a slot frees (the job is *queued*).  Raises
        :class:`AdmissionRejected` when the queue is full — the caller
        turns that into HTTP 429 before doing any work.
        """
        if self.running < self.max_concurrent and not self._waiters:
            self.running += 1
            self.admitted += 1
            return None
        if len(self._waiters) >= self.max_queue_depth:
            self.rejected += 1
            raise AdmissionRejected(
                self.running, self.queued, self.retry_after()
            )
        future = asyncio.get_running_loop().create_future()
        self._waiters.append(future)
        return future

    def release(self, elapsed_seconds: Optional[float] = None) -> None:
        """A job finished: free its slot or hand it to the next waiter."""
        if elapsed_seconds is not None and elapsed_seconds >= 0.0:
            self.avg_job_seconds = (
                (1.0 - self.EMA_ALPHA) * self.avg_job_seconds
                + self.EMA_ALPHA * elapsed_seconds
            )
        while self._waiters:
            future = self._waiters.popleft()
            if future.cancelled():
                continue
            self.admitted += 1
            future.set_result(None)  # the running slot transfers
            return
        self.running = max(0, self.running - 1)

    def abandon(self, future: asyncio.Future) -> None:
        """A queued job went away before starting (client gone, shutdown).

        If the slot had already been granted, it is re-released so the
        next waiter (or the running count) stays correct.
        """
        try:
            self._waiters.remove(future)
        except ValueError:
            if future.done() and not future.cancelled():
                self.release()
