"""Routing-as-a-service: a long-lived asyncio server with warm state.

The batch facade (:mod:`repro.api`) is one request in, one response
out, and every call pays cold-start: workspace build, pool spawn, cache
warm-up.  A service sees the opposite traffic shape — mostly *edits*
against boards it has already routed — so this package keeps the
expensive state alive between HTTP calls:

* :class:`SessionManager` holds named warm :class:`~repro.eco.EcoSession`
  objects (kept worker pools, graduated gap caches, continuous delta
  recordings) with idle-TTL eviction;
* :class:`AdmissionController` bounds concurrent routing jobs — a full
  queue answers 429 + Retry-After instead of queueing without bound —
  and the server derives each job's :class:`~repro.core.budget.
  RouteBudget` from a server-level deadline policy;
* :class:`AsyncSink` bridges the synchronous routing event stream into
  asyncio consumers, so ``GET /jobs/{id}/events`` streams the same
  events ``JsonlSink`` would log, as Server-Sent Events.

Everything is stdlib (``asyncio`` + a thin hand-rolled HTTP/1.1 front);
there are no new dependencies.  ``grr serve`` is the CLI entry point;
see ``docs/API.md`` ("Serving") for the endpoint reference.
"""

from repro.serve.admission import AdmissionController, AdmissionRejected
from repro.serve.config import ServeConfig
from repro.serve.jobs import Job, JobRegistry
from repro.serve.server import RoutingServer, run_server
from repro.serve.sessions import SessionManager
from repro.serve.sink import AsyncSink

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "AsyncSink",
    "Job",
    "JobRegistry",
    "RoutingServer",
    "ServeConfig",
    "SessionManager",
    "run_server",
]
