"""Server configuration: capacity, deadlines, warm-session policy."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.budget import RouteBudget


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``grr serve`` needs, as one immutable value.

    The deadline policy is server-level: every routing job gets a
    :class:`RouteBudget` whose wall-clock deadline is the request's
    ``timeout`` clamped to ``max_deadline_seconds`` (or
    ``default_deadline_seconds`` when the request names none), so one
    pathological board can never pin a worker slot forever.
    """

    host: str = "127.0.0.1"
    port: int = 8747
    #: Router worker processes per job (1 = serial routing).
    workers: int = 1
    #: Routing jobs allowed to run concurrently.
    max_concurrent: int = 2
    #: Jobs allowed to wait for a slot; beyond this the server answers
    #: 429 + Retry-After instead of queueing without bound.
    max_queue_depth: int = 8
    #: Deadline applied when a request names no ``timeout``.
    default_deadline_seconds: Optional[float] = 60.0
    #: Hard per-job ceiling; requests asking for more are clamped.
    max_deadline_seconds: Optional[float] = 300.0
    #: Warm sessions idle longer than this are evicted (pool closed,
    #: delta recording ended).  None disables eviction.
    session_ttl_seconds: Optional[float] = 300.0
    #: How often the evictor scans for idle sessions.
    evict_interval_seconds: float = 5.0
    #: Finished jobs kept for ``GET /jobs/{id}`` before the oldest are
    #: forgotten.
    max_jobs_retained: int = 256
    #: Per-job event log bound (see :class:`~repro.serve.sink.AsyncSink`).
    event_capacity: int = 100_000
    #: Largest accepted request body (boards ship as text).
    max_body_bytes: int = 64 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be at least 1")
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be non-negative")

    def budget_for(self, timeout: Optional[float]) -> RouteBudget:
        """The per-job budget the deadline policy grants a request."""
        deadline = (
            self.default_deadline_seconds if timeout is None else timeout
        )
        ceiling = self.max_deadline_seconds
        if ceiling is not None:
            deadline = ceiling if deadline is None else min(deadline, ceiling)
        return RouteBudget(deadline_seconds=deadline)
