"""AsyncSink: the bridge from the routing event stream to asyncio.

Routing runs synchronously in executor threads; SSE consumers live on
the event loop.  :class:`AsyncSink` is an :class:`~repro.obs.sinks.
EventSink` whose :meth:`emit` is thread-safe — events are flattened to
their JSON dicts immediately (the same shape ``JsonlSink`` writes, so a
trace file and an SSE stream of the same run are line-for-line
identical) and appended to an in-memory log; loop-side subscribers are
woken through ``call_soon_threadsafe``.

Subscribers replay from any index and then follow the live tail, so a
client that connects after the job finished still gets the full
stream.  The log is bounded: past ``capacity`` events the sink counts
drops instead of growing without bound (a long-lived server must never
let one chatty job eat the heap).
"""

from __future__ import annotations

import asyncio
import threading
from typing import AsyncIterator, Dict, List, Optional, Tuple

from repro.obs.events import RouteEvent
from repro.obs.sinks import EventSink


class AsyncSink(EventSink):
    """Queue-backed event sink feeding asyncio subscribers (SSE)."""

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        capacity: int = 100_000,
    ) -> None:
        self._loop = loop
        self._capacity = capacity
        self._lock = threading.Lock()
        self._events: List[Dict[str, object]] = []
        self._waiters: List[asyncio.Event] = []
        self._closed = False
        #: Events discarded because the log hit ``capacity``.
        self.dropped = 0

    # ------------------------------------------------------------------
    # producer side (any thread)
    # ------------------------------------------------------------------

    def emit(self, event: RouteEvent) -> None:
        record = event.to_dict()
        with self._lock:
            if self._closed:
                # A straggling emit after close is a lifecycle race the
                # service tolerates by design (contrast JsonlSink, whose
                # callers own its lifetime and get a RuntimeError).
                self.dropped += 1
                return
            if len(self._events) >= self._capacity:
                self.dropped += 1
                return
            self._events.append(record)
        self._wake_soon()

    def close(self) -> None:
        """End the stream: subscribers drain the log, then stop."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._wake_soon()

    def _wake_soon(self) -> None:
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._wake)
        except RuntimeError:
            pass  # loop shut down between the check and the call

    def _wake(self) -> None:
        for waiter in self._waiters:
            waiter.set()

    # ------------------------------------------------------------------
    # consumer side (event loop)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def snapshot(self) -> List[Dict[str, object]]:
        """The events logged so far (a copy; safe to mutate)."""
        with self._lock:
            return list(self._events)

    async def subscribe(
        self, start: int = 0
    ) -> AsyncIterator[Tuple[int, Dict[str, object]]]:
        """Yield ``(index, event_dict)`` from ``start``, then follow live.

        Ends when the sink is closed and the log fully replayed.  Must
        be iterated on the loop the sink was constructed with.
        """
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        waiter = asyncio.Event()
        self._waiters.append(waiter)
        try:
            index = max(0, start)
            while True:
                # Clear before reading: an emit between the read and the
                # await re-sets the flag, so no wake-up is ever lost.
                waiter.clear()
                with self._lock:
                    chunk = self._events[index:]
                    closed = self._closed
                if chunk:
                    for record in chunk:
                        yield index, record
                        index += 1
                elif closed:
                    return
                else:
                    await waiter.wait()
        finally:
            self._waiters.remove(waiter)
