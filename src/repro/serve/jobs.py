"""Jobs: the unit of admission-controlled work, with a retained history."""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, Optional

from repro.serve.sink import AsyncSink

#: Lifecycle: accepted -> queued -> running -> done | failed.
STATES = ("accepted", "queued", "running", "done", "failed")


class Job:
    """One routing job: state machine + event log + result payload."""

    __slots__ = (
        "job_id",
        "kind",
        "state",
        "session",
        "sink",
        "created",
        "started",
        "finished",
        "queued_seconds",
        "result",
        "error",
    )

    def __init__(
        self, job_id: str, kind: str, sink: AsyncSink, session: str = ""
    ) -> None:
        self.job_id = job_id
        self.kind = kind
        self.state = "accepted"
        self.session = session
        self.sink = sink
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.queued_seconds = 0.0
        self.result: Optional[Dict[str, object]] = None
        self.error: Optional[str] = None

    @property
    def done(self) -> bool:
        return self.state in ("done", "failed")

    def to_dict(self, include_result: bool = True) -> Dict[str, object]:
        out: Dict[str, object] = {
            "job": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "session": self.session,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "queued_seconds": round(self.queued_seconds, 6),
            "events": len(self.sink),
            "events_dropped": self.sink.dropped,
            "error": self.error,
        }
        if include_result:
            out["result"] = self.result
        return out


class JobRegistry:
    """Id-keyed job store with a bounded finished-job history."""

    def __init__(self, max_retained: int = 256) -> None:
        self.max_retained = max(1, max_retained)
        self._jobs: Dict[str, Job] = {}
        self._finished: Deque[str] = deque()
        self._seq = 0

    def __len__(self) -> int:
        return len(self._jobs)

    def create(self, kind: str, sink: AsyncSink, session: str = "") -> Job:
        self._seq += 1
        job = Job(f"{kind}-{self._seq:06d}", kind, sink, session=session)
        self._jobs[job.job_id] = job
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def finish(self, job: Job) -> None:
        """Record completion and forget the oldest finished jobs."""
        self._finished.append(job.job_id)
        while len(self._finished) > self.max_retained:
            self._jobs.pop(self._finished.popleft(), None)

    def counts(self) -> Dict[str, int]:
        out = {state: 0 for state in STATES}
        for job in self._jobs.values():
            out[job.state] = out.get(job.state, 0) + 1
        return out
