"""Command-line interface: the grr flow as a tool.

Subcommands mirror the original toolchain:

* ``grr generate`` — synthesise a Table-1-style board file;
* ``grr string``   — run the stringer: board file -> connection file;
* ``grr route``    — route a connection file, write the route dump and a
  Table-1-style report;
* ``grr render``   — regenerate the Figure 20/21/22 artifacts from a
  board + connections + routes;
* ``grr table1``   — run the whole Table 1 reproduction.
* ``grr eco``      — apply engineering change orders to a routed board
  and incrementally reroute only what the edits invalidated.
* ``grr serve``    — long-lived routing service over HTTP with warm
  ECO sessions, admission control and SSE event streaming.

Every command reads/writes the text formats of :mod:`repro.io`.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from repro.analysis import format_table, table1_row
from repro.channels.workspace import RoutingWorkspace
from repro.core.bounds import SEARCH_MODES
from repro.core.fastpath import BACKENDS
from repro.core.router import GreedyRouter, RouterConfig, make_router
from repro.io import (
    FORMAT_KICAD,
    FormatError,
    detect_format,
    load_board,
    load_routes,
    save_board,
    save_connections,
    save_routes,
)
from repro.stringer import Stringer
from repro.workloads import TITAN_CONFIGS, make_titan_board


def _cmd_generate(args: argparse.Namespace) -> int:
    board = make_titan_board(args.config, scale=args.scale, seed=args.seed)
    # Registry writer: a .kicad_pcb destination gets a KiCad document.
    save_board(board, args.board)
    print(
        f"wrote {args.board}: {board.grid.via_nx}x{board.grid.via_ny} via "
        f"sites, {len(board.parts)} parts, {len(board.signal_nets)} "
        f"signal nets"
    )
    return 0


def _cmd_string(args: argparse.Namespace) -> int:
    loaded = load_board(args.board, format=args.format)
    save_connections(loaded.connections, args.connections)
    print(
        f"wrote {args.connections}: {len(loaded.connections)} connections"
    )
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.obs import JsonlSink

    loaded, routes_out = _load_route_inputs(args)
    board = loaded.board
    connections = list(loaded.pending)
    from repro.core.budget import STOP_DEADLINE, RouteBudget

    config = RouterConfig(
        radius=args.radius, cost=args.cost, workers=args.workers
    )
    if args.backend is not None:
        # --backend forces it; otherwise the GRR_BACKEND env default holds.
        config = dataclasses.replace(config, backend=args.backend)
    if args.search is not None:
        # --search forces it; otherwise the GRR_SEARCH env default holds.
        config = dataclasses.replace(config, search=args.search)
    if args.timeout is not None or args.per_connection_timeout is not None:
        config = dataclasses.replace(
            config,
            budget=dataclasses.replace(
                config.budget,
                deadline_seconds=args.timeout,
                per_connection_seconds=args.per_connection_timeout,
            ),
        )
    if args.audit:
        # --audit forces it on; otherwise the GRR_AUDIT env default holds.
        config = dataclasses.replace(config, audit=True)
    sink = JsonlSink(args.trace) if args.trace else None
    if loaded.restored:
        print(
            f"restored {len(loaded.restored)} routed connections from "
            f"{args.board}; {len(connections)} left to route"
        )
    try:
        router = make_router(
            board, config, workspace=loaded.workspace, sink=sink
        )
        result = router.route(connections)
    finally:
        if sink is not None:
            sink.close()
    if args.workers > 1:
        if result.auto_serial:
            print(
                "parallel: auto-serial (board below the pool's size "
                "threshold; routed by the serial strategy stack)"
            )
        else:
            print(
                f"parallel: {args.workers} workers, {result.waves} waves, "
                f"{result.demoted} demoted"
                + (", serial fallback" if result.fallback_serial else "")
            )
    if sink is not None:
        print(f"trace: {sink.emitted} events -> {args.trace}")
    if config.audit:
        print("audit: all post-pass invariant checks passed")
    if args.profile:
        _print_profile(router.profile)
        if result.stopped_reason is not None:
            print(f"  stopped reason: {result.stopped_reason}")
    save_routes(router.workspace, routes_out, source=loaded.source)
    print(format_table([table1_row(board, connections, result)]))
    if not result.complete:
        reason = (
            f" ({result.stopped_reason})" if result.stopped_reason else ""
        )
        print(
            f"FAILED: {len(result.failed)} connections unrouted{reason}",
            file=sys.stderr,
        )
        # A deadline-limited partial is a *successful degradation*, not
        # a routing failure; give it its own exit code so callers can
        # tell "board too hard" (1) from "clock ran out" (3).
        if result.stopped_reason == STOP_DEADLINE:
            print(
                f"partial result kept: {result.routed_count}/"
                f"{result.total_count} connections routed",
                file=sys.stderr,
            )
            return 3
        return 1
    print(f"wrote {routes_out}")
    return 0


def _load_route_inputs(args: argparse.Namespace):
    """Resolve ``grr route``'s positionals for both formats.

    Native text keeps the classic three-file shape: ``route BOARD
    CONNECTIONS ROUTES``.  A kicad board embeds its netlist, so the one
    optional positional after it is the *output* document: ``route
    BOARD.kicad_pcb [OUT.kicad_pcb]``, defaulting to
    ``BOARD.routed.kicad_pcb``.  Returns ``(loaded, routes_out_path)``.
    """
    import os

    fmt = detect_format(args.board, args.format)
    if fmt == FORMAT_KICAD:
        if args.routes is not None:
            raise SystemExit(
                "kicad boards embed their netlist: usage is "
                "'grr route BOARD.kicad_pcb [OUT.kicad_pcb]'"
            )
        loaded = load_board(
            args.board, format=args.format, pitch_mm=args.pitch_mm
        )
        routes_out = args.connections
        if routes_out is None:
            stem = os.path.splitext(args.board)[0]
            routes_out = f"{stem}.routed.kicad_pcb"
        return loaded, routes_out
    if args.connections is None or args.routes is None:
        raise SystemExit(
            "native boards need explicit files: usage is "
            "'grr route BOARD CONNECTIONS ROUTES'"
        )
    loaded = load_board(
        args.board, format=args.format, connections_path=args.connections
    )
    return loaded, args.routes


def _print_profile(profile) -> None:
    """Print the per-phase timing table and the event counters."""
    print("profile:")
    for row in profile.rows():
        print(
            f"  {row['phase']:<12} {row['calls']:>8} calls "
            f"{row['seconds']:>8.3f}s {row['pct']:>5.1f}%"
        )
    hits = profile.counters.get("gap_cache_hits", 0)
    misses = profile.counters.get("gap_cache_misses", 0)
    bypassed = profile.counters.get("gap_cache_bypassed", 0)
    total = hits + misses
    if total or bypassed:
        rate = f"{100.0 * hits / total:.1f}% hit rate" if total else "no memoized traffic"
        print(
            f"  gap cache: {hits} hits / {misses} misses / "
            f"{bypassed} bypassed ({rate})"
        )
    lb_hits = profile.counters.get("lb_hits", 0)
    lb_rebuilds = profile.counters.get("lb_rebuilds", 0)
    lb_total = lb_hits + lb_rebuilds
    if lb_total:
        print(
            f"  lower bounds: {lb_hits} hits / {lb_rebuilds} rebuilds / "
            f"{profile.counters.get('lb_prunes', 0)} prunes / "
            f"{profile.counters.get('heap_stale', 0)} stale heap skips "
            f"({100.0 * lb_hits / lb_total:.1f}% hit rate)"
        )
    for counter, amount in sorted(profile.counters.items()):
        if counter not in (
            "gap_cache_hits", "gap_cache_misses", "gap_cache_bypassed",
            "lb_hits", "lb_rebuilds", "lb_prunes", "heap_stale",
        ):
            print(f"  {counter}: {amount}")


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.extensions.power_plane import generate_power_plane
    from repro.viz import (
        render_power_plane,
        render_problem,
        render_signal_layer,
    )

    board, connections, workspace, _ = _load_routed_state(args)
    prefix = args.prefix
    render_problem(board, connections, path=f"{prefix}_problem.ppm")
    render_signal_layer(board, workspace, 0, path=f"{prefix}_layer0.ppm")
    outputs = [f"{prefix}_problem.ppm", f"{prefix}_layer0.ppm"]
    if board.power_nets:
        pattern = generate_power_plane(
            board, workspace, board.power_nets[0].net_id
        )
        render_power_plane(board, pattern, path=f"{prefix}_plane.ppm")
        outputs.append(f"{prefix}_plane.ppm")
    print("wrote " + ", ".join(outputs))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import check_connectivity, run_drc

    board, connections, workspace, restored = _load_routed_state(args)
    drc = run_drc(board, workspace)
    connectivity = check_connectivity(board, workspace, connections)
    print(f"routes loaded: {len(restored)}")
    print(
        f"DRC: {len(drc.errors)} errors, {len(drc.warnings)} warnings"
    )
    for violation in drc.errors[:20]:
        print(f"  ERROR {violation.rule}: {violation.message}")
    for violation in drc.warnings[:5]:
        print(f"  warn  {violation.rule}: {violation.message}")
    disconnected = [n for n in connectivity.nets if not n.connected]
    print(
        f"connectivity: {len(connectivity.nets)} nets, "
        f"{len(disconnected)} disconnected, "
        f"{len(connectivity.broken_connections)} broken routes"
    )
    ok = drc.clean and connectivity.fully_connected
    print("VERDICT:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def _load_routed_state(args: argparse.Namespace):
    """Board + connections + routed workspace for render/verify.

    Native text takes the classic three files.  A routed
    ``.kicad_pcb`` carries all three in one document, so the
    connections/routes positionals are omitted.
    """
    if detect_format(args.board) == FORMAT_KICAD:
        if args.connections is not None or args.routes is not None:
            raise SystemExit(
                "a .kicad_pcb carries its netlist and routes; usage is "
                f"'grr {args.command} BOARD.kicad_pcb'"
            )
        loaded = load_board(args.board)
        return (
            loaded.board,
            list(loaded.connections),
            loaded.workspace,
            list(loaded.restored),
        )
    if args.connections is None or args.routes is None:
        raise SystemExit(
            f"native boards need explicit files: usage is "
            f"'grr {args.command} BOARD CONNECTIONS ROUTES'"
        )
    loaded = load_board(args.board, connections_path=args.connections)
    workspace = RoutingWorkspace(loaded.board)
    with open(args.routes) as f:
        restored = load_routes(workspace, f)
    return loaded.board, list(loaded.connections), workspace, restored


def _parse_move(spec: str):
    """Parse one ``--move-part PART:VX,VY`` spec."""
    from repro.grid.coords import ViaPoint

    try:
        part_text, coords = spec.split(":", 1)
        vx_text, vy_text = coords.split(",", 1)
        return int(part_text), ViaPoint(int(vx_text), int(vy_text))
    except ValueError:
        raise SystemExit(
            f"bad --move-part spec {spec!r} (expected PART:VX,VY)"
        )


def _parse_pin_group(spec: str) -> List[int]:
    """Parse one ``--add-net P1,P2,...`` spec."""
    try:
        pins = [int(p) for p in spec.split(",") if p]
    except ValueError:
        raise SystemExit(
            f"bad --add-net spec {spec!r} (expected PIN,PIN,...)"
        )
    if len(pins) < 2:
        raise SystemExit(f"--add-net needs at least two pins: {spec!r}")
    return pins


def _cmd_eco(args: argparse.Namespace) -> int:
    from repro.core.budget import STOP_DEADLINE, RouteBudget
    from repro.core.result import Strategy
    from repro.eco import EcoError, EcoSession
    from repro.obs import JsonlSink

    loaded, workspace, restored, routes_out = _load_eco_inputs(args)
    board = loaded.board
    connections = list(loaded.connections)
    config = RouterConfig(
        radius=args.radius, cost=args.cost, workers=args.workers
    )
    if args.backend is not None:
        config = dataclasses.replace(config, backend=args.backend)
    if args.search is not None:
        config = dataclasses.replace(config, search=args.search)
    if args.timeout is not None or args.per_connection_timeout is not None:
        config = dataclasses.replace(
            config,
            budget=RouteBudget(
                deadline_seconds=args.timeout,
                per_connection_seconds=args.per_connection_timeout,
            ),
        )
    if args.audit:
        config = dataclasses.replace(config, audit=True)
    sink = JsonlSink(args.trace) if args.trace else None
    # Restored routes carry no strategy attribution in the dump format;
    # PUTBACK ("kept as previously routed") is the honest label.
    routed_by = {conn_id: Strategy.PUTBACK for conn_id in restored}
    try:
        with EcoSession(
            board,
            connections,
            config=config,
            sink=sink,
            workspace=workspace,
            routed_by=routed_by,
        ) as session:
            try:
                for net_id in args.cut_net:
                    stats = session.cut_nets([net_id])
                    print(
                        f"cut net {net_id}: {len(stats.dropped)} "
                        f"connections dropped, {len(stats.ripped)} ripped"
                    )
                for part_id, origin in (
                    _parse_move(spec) for spec in args.move_part
                ):
                    stats = session.move_part(part_id, origin)
                    print(
                        f"move part {part_id} -> {origin.vx},{origin.vy}: "
                        f"{len(stats.invalidated)} invalidated, "
                        f"{len(stats.cascades)} cascade rip-ups"
                    )
                for group in (
                    _parse_pin_group(spec) for spec in args.add_net
                ):
                    stats = session.add_nets([group])
                    print(
                        f"add net over pins {group}: "
                        f"{len(stats.added)} connections strung"
                    )
            except EcoError as exc:
                print(f"ECO rejected: {exc}", file=sys.stderr)
                return 2
            response = session.reroute()
            result = response.result
            counters = response.counters
            print(
                f"eco reroute: {counters.get('eco_invalidated', 0)} "
                f"invalidated, {counters.get('eco_reused', 0)} reused, "
                f"{counters.get('eco_rerouted', 0)} rerouted"
            )
            if args.profile:
                _print_profile_counters(counters, response.timings)
            save_routes(
                session.workspace, routes_out, source=loaded.source
            )
            # The side writers follow the same extension-detection rules
            # as inputs: --write-board out.kicad_pcb gets a KiCad doc.
            try:
                if args.write_board:
                    save_board(session.board, args.write_board)
                    print(f"wrote {args.write_board}")
                if args.write_connections:
                    save_connections(
                        session.connections, args.write_connections
                    )
                    print(f"wrote {args.write_connections}")
            except FormatError as exc:
                print(f"output rejected: {exc}", file=sys.stderr)
                return 2
            failed = result.failed
            total = len(session.connections)
    finally:
        if sink is not None:
            sink.close()
    if sink is not None:
        print(f"trace: {sink.emitted} events -> {args.trace}")
    if failed:
        reason = (
            f" ({response.stopped_reason})" if response.stopped_reason else ""
        )
        print(
            f"FAILED: {len(failed)} connections unrouted{reason}",
            file=sys.stderr,
        )
        if response.stopped_reason == STOP_DEADLINE:
            print(
                f"partial result kept: {total - len(failed)}/{total} "
                f"connections routed",
                file=sys.stderr,
            )
            return 3
        return 1
    print(f"wrote {routes_out}")
    return 0


def _load_eco_inputs(args: argparse.Namespace):
    """Resolve ``grr eco``'s positionals for both formats.

    Native text keeps the classic four-file shape: ``eco BOARD
    CONNECTIONS ROUTES_IN ROUTES_OUT``.  A kicad board carries its
    netlist and routed state in one document, so the shape collapses to
    ``eco BOARD.kicad_pcb [OUT.kicad_pcb]`` (default
    ``BOARD.eco.kicad_pcb``).  Returns ``(loaded, workspace, restored,
    routes_out_path)``.
    """
    import os

    if detect_format(args.board) == FORMAT_KICAD:
        if args.routes_in is not None or args.routes_out is not None:
            raise SystemExit(
                "a .kicad_pcb carries its netlist and routes; usage is "
                "'grr eco BOARD.kicad_pcb [OUT.kicad_pcb]'"
            )
        loaded = load_board(args.board)
        routes_out = args.connections
        if routes_out is None:
            stem = os.path.splitext(args.board)[0]
            routes_out = f"{stem}.eco.kicad_pcb"
        return loaded, loaded.workspace, list(loaded.restored), routes_out
    if (
        args.connections is None
        or args.routes_in is None
        or args.routes_out is None
    ):
        raise SystemExit(
            "native boards need explicit files: usage is "
            "'grr eco BOARD CONNECTIONS ROUTES_IN ROUTES_OUT'"
        )
    loaded = load_board(args.board, connections_path=args.connections)
    workspace = RoutingWorkspace(loaded.board)
    with open(args.routes_in) as f:
        restored = load_routes(workspace, f)
    return loaded, workspace, restored, args.routes_out


def _print_profile_counters(counters, timings) -> None:
    """Print the eco reroute's timings and counters (``--profile``)."""
    print("profile:")
    for name, seconds in sorted(timings.items()):
        print(f"  {name:<12} {seconds:>8.3f}s")
    for counter, amount in sorted(counters.items()):
        print(f"  {counter}: {amount}")


def _cmd_kicad(args: argparse.Namespace) -> int:
    from repro.io import kicad

    if args.action == "inspect":
        imp = kicad.load_file(args.board, pitch_mm=args.pitch_mm)
        for key, value in imp.summary().items():
            print(f"{key}: {value}")
        return 0
    if args.action == "import":
        loaded = load_board(
            args.board, format="kicad", pitch_mm=args.pitch_mm
        )
        save_board(loaded.board, args.out_board)
        save_connections(loaded.connections, args.out_connections)
        print(
            f"wrote {args.out_board} ({len(loaded.board.parts)} parts, "
            f"{len(loaded.board.nets)} nets) and {args.out_connections} "
            f"({len(loaded.connections)} connections)"
        )
        if args.out_routes:
            # Only restored route records survive the native dump; the
            # dispersion traces are re-derived on any later import.
            with open(args.out_routes, "w") as f:
                from repro.io import save_route_dump

                save_route_dump(loaded.workspace, f)
            print(
                f"wrote {args.out_routes} "
                f"({len(loaded.restored)} restored routes)"
            )
        return 0
    # export: write a native route dump back into the original document
    imp = kicad.load_file(args.board, pitch_mm=args.pitch_mm)
    with open(args.routes) as f:
        restored = load_routes(imp.workspace, f)
    kicad.save_file(imp, args.out, imp.workspace)
    print(
        f"wrote {args.out}: {len(restored) + len(imp.restored)} routed "
        "connections as copper"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs import JsonlSink
    from repro.serve import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_concurrent=args.max_concurrent,
        max_queue_depth=args.queue_depth,
        default_deadline_seconds=args.timeout,
        session_ttl_seconds=args.idle_ttl,
    )
    sink = JsonlSink(args.trace) if args.trace else None
    try:
        return run_server(config, sink=sink)
    finally:
        if sink is not None:
            sink.close()


def _cmd_table1(args: argparse.Namespace) -> int:
    rows = []
    for name in TITAN_CONFIGS:
        board = make_titan_board(name, scale=args.scale, seed=args.seed)
        connections = Stringer(board).string_all()
        result = GreedyRouter(board).route(connections)
        rows.append(table1_row(board, connections, result))
    print(format_table(rows, title="Table 1 reproduction"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The grr argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="grr",
        description="greedy printed-circuit-board router (Dion, DAC 1987)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="synthesise a Table-1-style board")
    p.add_argument("board", help="output board file")
    p.add_argument(
        "--config", default="tna", choices=sorted(TITAN_CONFIGS)
    )
    p.add_argument("--scale", type=float, default=0.30)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("string", help="net stringing (Section 3)")
    p.add_argument("board", help="input board file (native or .kicad_pcb)")
    p.add_argument("connections", help="output connection file")
    p.add_argument(
        "--format",
        default="auto",
        choices=["auto", "native", "kicad"],
        help="input board format (default: by extension)",
    )
    p.set_defaults(func=_cmd_string)

    p = sub.add_parser("route", help="route a board")
    p.add_argument(
        "board", help="input board file (native text or .kicad_pcb)"
    )
    p.add_argument(
        "connections",
        nargs="?",
        default=None,
        help="native: input connection file; kicad: optional output "
        "document (default BOARD.routed.kicad_pcb)",
    )
    p.add_argument(
        "routes",
        nargs="?",
        default=None,
        help="native: output route dump (unused for kicad input)",
    )
    p.add_argument(
        "--format",
        default="auto",
        choices=["auto", "native", "kicad"],
        help="input board format (default: by extension)",
    )
    p.add_argument(
        "--pitch-mm",
        type=float,
        default=None,
        help="via-grid pitch for kicad import (default 2.54)",
    )
    p.add_argument("--radius", type=int, default=1)
    p.add_argument(
        "--cost",
        default="distance_hops",
        choices=["unit", "distance", "distance_hops"],
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for parallel wave routing (1 = serial)",
    )
    p.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="search kernel backend: 'numpy' uses the vectorized "
        "fastpath (requires the [fast] extra), 'python' the "
        "zero-dependency fallback, 'auto' picks numpy when available; "
        "results are bit-identical either way (default: GRR_BACKEND "
        "env, else python)",
    )
    p.add_argument(
        "--search",
        choices=SEARCH_MODES,
        default=None,
        help="Lee search mode: 'classic' is the paper's distance*hops "
        "wavefront, 'goal' orders and prunes with cached admissible "
        "distance lower bounds (fewer expansions, same completion; "
        "default: GRR_SEARCH env, else classic)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        metavar="SECS",
        default=None,
        help="total wall-clock deadline; on exhaustion keep the partial "
        "result and exit 3 instead of routing to completion",
    )
    p.add_argument(
        "--per-connection-timeout",
        type=float,
        metavar="SECS",
        default=None,
        help="wall-clock limit per connection (strategies + rip-up)",
    )
    p.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write the routing event stream as JSONL to PATH",
    )
    p.add_argument(
        "--audit",
        action="store_true",
        help="verify workspace invariants after every pass/merge "
        "(also enabled by GRR_AUDIT=1)",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="print per-phase timings and event counters "
        "(gap cache hits/misses, search cap hits)",
    )
    p.set_defaults(func=_cmd_route)

    p = sub.add_parser("render", help="Figure 20/21/22 artifacts")
    p.add_argument("board")
    p.add_argument("connections", nargs="?", default=None)
    p.add_argument("routes", nargs="?", default=None)
    p.add_argument("--prefix", default="grr")
    p.set_defaults(func=_cmd_render)

    p = sub.add_parser("verify", help="DRC + connectivity verification")
    p.add_argument("board")
    p.add_argument("connections", nargs="?", default=None)
    p.add_argument("routes", nargs="?", default=None)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "eco",
        help="apply change orders to a routed board and reroute the "
        "residue incrementally",
    )
    p.add_argument(
        "board", help="input board file (native text or .kicad_pcb)"
    )
    p.add_argument(
        "connections",
        nargs="?",
        default=None,
        help="native: input connection file; kicad: optional output "
        "document (default BOARD.eco.kicad_pcb)",
    )
    p.add_argument(
        "routes_in",
        nargs="?",
        default=None,
        help="native: input route dump (unused for kicad input)",
    )
    p.add_argument(
        "routes_out",
        nargs="?",
        default=None,
        help="native: output route dump (unused for kicad input)",
    )
    p.add_argument(
        "--move-part",
        action="append",
        default=[],
        metavar="PART:VX,VY",
        help="relocate part PART to via site (VX,VY); repeatable",
    )
    p.add_argument(
        "--cut-net",
        action="append",
        type=int,
        default=[],
        metavar="NET",
        help="remove signal net NET (rips its routes, frees its pins); "
        "repeatable",
    )
    p.add_argument(
        "--add-net",
        action="append",
        default=[],
        metavar="PINS",
        help="create a net over comma-separated free pin ids and string "
        "it; repeatable",
    )
    p.add_argument(
        "--write-board",
        metavar="PATH",
        default=None,
        help="also write the post-ECO board (part moves and net edits "
        "change it; required to verify/render the ECO'd routes)",
    )
    p.add_argument(
        "--write-connections",
        metavar="PATH",
        default=None,
        help="also write the post-ECO connection list (cuts shrink it, "
        "adds grow it)",
    )
    p.add_argument("--radius", type=int, default=1)
    p.add_argument(
        "--cost",
        default="distance_hops",
        choices=["unit", "distance", "distance_hops"],
    )
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--backend", choices=BACKENDS, default=None)
    p.add_argument("--search", choices=SEARCH_MODES, default=None)
    p.add_argument("--timeout", type=float, metavar="SECS", default=None)
    p.add_argument(
        "--per-connection-timeout", type=float, metavar="SECS", default=None
    )
    p.add_argument("--trace", metavar="PATH", default=None)
    p.add_argument("--audit", action="store_true")
    p.add_argument("--profile", action="store_true")
    p.set_defaults(func=_cmd_eco)

    p = sub.add_parser(
        "kicad",
        help="KiCad board interchange: inspect/import/export "
        ".kicad_pcb documents",
    )
    kicad_sub = p.add_subparsers(dest="action", required=True)

    k = kicad_sub.add_parser(
        "inspect", help="summarise how a .kicad_pcb maps onto the grid"
    )
    k.add_argument("board", help="input .kicad_pcb")
    k.add_argument("--pitch-mm", type=float, default=None)
    k.set_defaults(func=_cmd_kicad)

    k = kicad_sub.add_parser(
        "import", help="convert a .kicad_pcb to the native text formats"
    )
    k.add_argument("board", help="input .kicad_pcb")
    k.add_argument("out_board", help="output native board file")
    k.add_argument("out_connections", help="output native connection file")
    k.add_argument(
        "out_routes",
        nargs="?",
        default=None,
        help="optional output route dump of routes embedded in the "
        "document",
    )
    k.add_argument("--pitch-mm", type=float, default=None)
    k.set_defaults(func=_cmd_kicad)

    k = kicad_sub.add_parser(
        "export",
        help="write a native route dump back into a .kicad_pcb as "
        "segment/via copper",
    )
    k.add_argument("board", help="the original .kicad_pcb")
    k.add_argument("routes", help="native route dump for that board")
    k.add_argument("out", help="output .kicad_pcb")
    k.add_argument("--pitch-mm", type=float, default=None)
    k.set_defaults(func=_cmd_kicad)

    p = sub.add_parser(
        "serve",
        help="serve routing over HTTP with warm ECO sessions "
        "(POST /route, /eco/*; GET /jobs, /healthz)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8747)
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="default worker processes per routing job (1 = serial)",
    )
    p.add_argument(
        "--max-concurrent",
        type=int,
        default=2,
        help="routing jobs allowed to run at once",
    )
    p.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        help="jobs allowed to wait for a slot; beyond this the server "
        "answers 429 with a Retry-After hint",
    )
    p.add_argument(
        "--timeout",
        type=float,
        metavar="SECS",
        default=60.0,
        help="default wall-clock budget per routing job (requests may "
        "ask for less, never for more than the server cap)",
    )
    p.add_argument(
        "--idle-ttl",
        type=float,
        metavar="SECS",
        default=300.0,
        help="evict warm sessions idle longer than this (worker pools "
        "and caches are freed on eviction)",
    )
    p.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write serve_* lifecycle events as JSONL to PATH",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("table1", help="run the Table 1 reproduction")
    p.add_argument("--scale", type=float, default=0.30)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(func=_cmd_table1)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``grr`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
