"""Incremental ECO re-routing: edit a routed board, reroute the residue.

The paper's router is a cold, batch router; a routing *service* (ROADMAP
north star) is mostly edits — move a part, cut a few nets, add a few,
reroute.  An :class:`EcoSession` holds a routed board and applies such
engineering change orders while preserving everything an edit does not
touch:

* **Surviving routes** stay installed — the reroute only routes the
  residue, because the pass loop already skips connections the
  workspace reports as routed.
* **Warm gap-cache entries** survive — mutations go through the same
  channel primitives routing uses, so generations bump only on touched
  channels and the generation-stamped :class:`~repro.channels.gap_cache.
  GapCache` keeps serving the rest.
* **The persistent worker pool** survives the mutate→reroute boundary:
  the session keeps one *continuous* delta recording open on the
  workspace (:meth:`RoutingWorkspace.drain_delta`), drains it into a
  pool sync before each reroute, and hands the live pool to the next
  :class:`~repro.parallel.ParallelRouter` call instead of letting it
  respawn (Ahrens et al., arXiv:2111.06169 make the same observation
  for incremental queries: reuse, don't rebuild).

The invalidation rule is ownership-based, computed from the same
channel/via bookkeeping the delta substrate uses:

* ``move_part`` invalidates every connection incident to the part's
  pins (their endpoints move), plus — transitively — any surviving
  route whose wiring covers a destination pin site (the drill conflict
  names the blocking owner, the blocker is ripped and invalidated, and
  the drill retries: a rip-up cascade).
* ``cut_nets`` rips the cut nets' routes and drops their connections
  from the problem; cutting an unrouted net is a pure bookkeeping edit.
* ``add_nets`` strings the new nets (same stringer, fresh connection
  ids) and marks the new connections pending.

``reroute()`` then routes the full connection list on the warm
workspace under an optional :class:`~repro.core.budget.RouteBudget` —
never raising on exhaustion, exactly like :func:`repro.api.route` — and
returns a :class:`~repro.api.RouteResponse` whose counters report
``eco_invalidated`` / ``eco_reused`` / ``eco_rerouted``.  A reroute
with nothing pending is a no-op fast path that never builds a router.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.board.board import Board
from repro.board.nets import Connection, NetKind
from repro.board.technology import LogicFamily
from repro.channels.channel import ChannelConflictError
from repro.channels.workspace import RoutingWorkspace
from repro.core.budget import RouteBudget
from repro.core.result import RoutingResult, Strategy
from repro.core.router import RouterConfig, make_router
from repro.grid.coords import ViaPoint
from repro.obs.events import EcoBegin, EcoInvalidate, EcoReroute
from repro.obs.sinks import NULL_SINK, EventSink
from repro.stringer.stringer import Stringer


class EcoError(ValueError):
    """An engineering change order cannot be applied.

    Raised for invalid edits (unknown part/net ids, off-board or
    occupied destinations) before any state changes, and for a moved pin
    landing on immovable wiring (another pin or tesselation fill) — the
    latter can surface mid-edit, after which the session must be
    considered spent.
    """


@dataclass(frozen=True)
class EcoStats:
    """What one mutation changed, as reported back to the caller."""

    #: ``"move_part"`` / ``"add_nets"`` / ``"cut_nets"``.
    op: str
    #: Connections now pending a reroute because of this edit.
    invalidated: Tuple[int, ...] = ()
    #: Installed routes this edit removed (subset of ``invalidated``
    #: for moves; disjoint from it for cuts, whose connections leave
    #: the problem instead of re-entering it).
    ripped: Tuple[int, ...] = ()
    #: Surviving routes ripped only because the edit collided with
    #: their wiring (move_part drill conflicts).
    cascades: Tuple[int, ...] = ()
    #: Connections removed from the problem entirely (cut_nets).
    dropped: Tuple[int, ...] = ()
    #: Connections created by this edit (add_nets).
    added: Tuple[int, ...] = ()
    #: Net ids this edit created (add_nets) or removed (cut_nets) —
    #: the handle a remote caller needs to cut what it just added.
    net_ids: Tuple[int, ...] = ()


class EcoSession:
    """A routed board plus the machinery to edit and incrementally reroute.

    ::

        response = route(request)                      # cold route
        session = begin_eco(request, response)         # adopt the state
        session.move_part(part_id, ViaPoint(10, 12))
        session.cut_nets([net_id])
        session.add_nets([[pin_a, pin_b, pin_c]])
        response = session.reroute()                   # residue only

    The session owns its board, connection list and workspace: mutating
    them behind its back voids the bookkeeping.  ``connections`` is the
    current problem (cuts shrink it, adds grow it); ``reroute()``
    always routes that full list, relying on the workspace to skip the
    survivors.
    """

    def __init__(
        self,
        board: Board,
        connections: Sequence[Connection],
        config: Optional[RouterConfig] = None,
        sink: Optional[EventSink] = None,
        workspace: Optional[RoutingWorkspace] = None,
        routed_by: Optional[Dict[int, Strategy]] = None,
    ) -> None:
        self.board = board
        self.connections: List[Connection] = list(connections)
        self.config = config or RouterConfig()
        self.sink = sink if sink is not None else NULL_SINK
        self.workspace = workspace or RoutingWorkspace(board)
        #: Strategy attribution for currently installed routes, carried
        #: across reroutes (the router only reports what *it* routed).
        self._routed_by: Dict[int, Strategy] = {
            conn_id: strategy
            for conn_id, strategy in (routed_by or {}).items()
            if self.workspace.is_routed(conn_id)
        }
        #: Connections dirtied by mutations since the last reroute.
        self._invalidated: Set[int] = set()
        self._next_conn_id = (
            max((c.conn_id for c in self.connections), default=-1) + 1
        )
        #: The kept worker pool (``config.workers > 1`` only), handed to
        #: each reroute's ParallelRouter and reclaimed afterwards.
        self._pool = None
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the kept worker pool and stop delta recording.

        Idempotent, and the delta recording is ended even when the pool
        teardown raises — a reused workspace must never keep recording
        ops unboundedly because a close went half way.
        """
        self._closed = True
        pool, self._pool = self._pool, None
        try:
            if pool is not None:
                pool.close()
        finally:
            if self.workspace.delta_active:
                self.workspace.end_delta()

    def __enter__(self) -> "EcoSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------

    def move_part(self, part_id: int, origin: ViaPoint) -> EcoStats:
        """Relocate a part, ripping and invalidating what the move touches.

        Every connection incident to the part's pins is invalidated
        (its endpoints move).  Destination sites are re-validated
        against the vacated placement before anything changes; a
        destination covered by a *surviving route's* wiring rips that
        route too (a cascade, counted separately) so the pin via always
        lands.
        """
        self._check_open()
        if not 0 <= part_id < len(self.board.parts):
            raise EcoError(f"unknown part id {part_id}")
        part = self.board.parts[part_id]
        if self.sink.enabled:
            self.sink.emit(EcoBegin("move_part", part_id))
        pin_ids = {pin.pin_id for pin in part.pins}
        affected = [
            c
            for c in self.connections
            if c.pin_a in pin_ids or c.pin_b in pin_ids
        ]
        # Validate + move the placement first: a PlacementError must
        # leave the session untouched.
        try:
            moves = self.board.move_part(part_id, origin)
        except ValueError as exc:
            raise EcoError(str(exc)) from exc
        ws = self.workspace
        ripped = []
        for conn in affected:
            if ws.is_routed(conn.conn_id):
                ws.remove_connection(conn.conn_id)
                ripped.append(conn.conn_id)
        for pin, old_position in moves:
            ws.undrill_pin(old_position, pin.owner_token)
        for pin, _ in moves:
            ws.note_pin_moved(pin.pin_id, pin.position)
        cascades: List[int] = []
        for pin in part.pins:
            cascades.extend(self._drill_with_ripup(pin.position, pin))
        position = {pin.pin_id: pin.position for pin in part.pins}
        for conn in affected:
            if conn.pin_a in position:
                conn.a = position[conn.pin_a]
            if conn.pin_b in position:
                conn.b = position[conn.pin_b]
        invalidated = {c.conn_id for c in affected} | set(cascades)
        self._invalidated |= invalidated
        for conn_id in ripped:
            self._routed_by.pop(conn_id, None)
        for conn_id in cascades:
            self._routed_by.pop(conn_id, None)
        if self.sink.enabled:
            self.sink.emit(
                EcoInvalidate(
                    "move_part",
                    len(invalidated),
                    len(ripped) + len(cascades),
                    len(cascades),
                )
            )
        return EcoStats(
            op="move_part",
            invalidated=tuple(sorted(invalidated)),
            ripped=tuple(ripped),
            cascades=tuple(cascades),
        )

    def _drill_with_ripup(self, via: ViaPoint, pin) -> List[int]:
        """Drill a pin site, ripping any surviving routes covering it.

        The channel conflict names no owner, so the blockers are read
        off the same bookkeeping the delta substrate maintains: the
        segment owners covering the site plus its drilled-via owner.
        Only routed connections (owner >= 0) are rippable; anything
        else under a pin destination is immovable and raises.
        """
        ws = self.workspace
        ripped: List[int] = []
        while True:
            try:
                ws.drill_pin(via, pin.owner_token)
                return ripped
            except ChannelConflictError as exc:
                blockers = {
                    owner
                    for owner in ws.owners_covering(via)
                    if owner >= 0 and ws.is_routed(owner)
                }
                drilled = ws.via_map.drilled_owner(via)
                if drilled is not None and drilled >= 0:
                    blockers.add(drilled)
                if not blockers:
                    raise EcoError(
                        f"pin {pin.pin_id} destination {via} is blocked "
                        f"by immovable wiring: {exc}"
                    ) from exc
                for conn_id in sorted(blockers):
                    ws.remove_connection(conn_id)
                    ripped.append(conn_id)

    def add_nets(
        self,
        pin_groups: Sequence[Sequence[int]],
        family: LogicFamily = LogicFamily.ECL,
    ) -> EcoStats:
        """Create new signal nets over free pins and string them.

        Each group becomes one net (``family`` decides termination
        rules), strung by the same stringer batch routing uses, with
        fresh connection ids.  The new connections are pending until
        the next :meth:`reroute`.
        """
        self._check_open()
        if self.sink.enabled:
            self.sink.emit(EcoBegin("add_nets", len(pin_groups)))
        stringer = Stringer(self.board)
        added: List[int] = []
        new_nets: List[int] = []
        for pin_ids in pin_groups:
            try:
                net = self.board.add_net(list(pin_ids), family=family)
            except ValueError as exc:
                raise EcoError(str(exc)) from exc
            new_nets.append(net.net_id)
            chain = stringer.string_net(net)
            new_conns = stringer.connections_for_chain(
                net, chain, start_id=self._next_conn_id
            )
            self._next_conn_id += len(new_conns)
            self.connections.extend(new_conns)
            added.extend(c.conn_id for c in new_conns)
        self._invalidated |= set(added)
        if self.sink.enabled:
            self.sink.emit(EcoInvalidate("add_nets", len(added), 0, 0))
        return EcoStats(
            op="add_nets",
            invalidated=tuple(added),
            added=tuple(added),
            net_ids=tuple(new_nets),
        )

    def cut_nets(self, net_ids: Sequence[int]) -> EcoStats:
        """Remove signal nets: rip their routes, free their pins.

        The nets' connections leave the problem entirely (they are
        *dropped*, not invalidated); cutting a net that never routed is
        pure bookkeeping and rips nothing.  The freed pins (including
        any claimed terminating resistor) become available to
        :meth:`add_nets` again; the net object stays as an empty
        tombstone so net ids remain stable.
        """
        self._check_open()
        ws = self.workspace
        cut: Set[int] = set()
        for net_id in net_ids:
            if not 0 <= net_id < len(self.board.nets):
                raise EcoError(f"unknown net id {net_id}")
            net = self.board.nets[net_id]
            if net.kind is not NetKind.SIGNAL:
                raise EcoError(f"net {net_id} is not a signal net")
            cut.add(net_id)
        ripped: List[int] = []
        dropped: List[int] = []
        for net_id in sorted(cut):
            if self.sink.enabled:
                self.sink.emit(EcoBegin("cut_nets", net_id))
            net = self.board.nets[net_id]
            for conn in self.connections:
                if conn.net_id != net_id:
                    continue
                dropped.append(conn.conn_id)
                if ws.is_routed(conn.conn_id):
                    ws.remove_connection(conn.conn_id)
                    ripped.append(conn.conn_id)
            for pin_id in net.pin_ids:
                self.board.pins[pin_id].net_id = -1
            net.pin_ids.clear()
        self.connections = [
            c for c in self.connections if c.net_id not in cut
        ]
        for conn_id in dropped:
            self._invalidated.discard(conn_id)
            self._routed_by.pop(conn_id, None)
        if self.sink.enabled:
            self.sink.emit(EcoInvalidate("cut_nets", 0, len(ripped), 0))
        return EcoStats(
            op="cut_nets",
            ripped=tuple(ripped),
            dropped=tuple(dropped),
            net_ids=tuple(sorted(cut)),
        )

    # ------------------------------------------------------------------
    # incremental rerouting
    # ------------------------------------------------------------------

    def reroute(self, budget: Optional[RouteBudget] = None):
        """Route everything pending; surviving routes stay untouched.

        Returns a :class:`~repro.api.RouteResponse` (same contract as
        :func:`repro.api.route`: exhaustion degrades, never raises).
        ``budget`` overrides the session config's budget for this call
        only.  With nothing pending the router is never built — the
        no-edit fast path costs one list scan.
        """
        from repro.api import RouteResponse
        from repro.parallel.router import ParallelRouter

        self._check_open()
        started = time.perf_counter()
        ws = self.workspace
        invalidated = len(self._invalidated)
        pending = [
            c for c in self.connections if not ws.is_routed(c.conn_id)
        ]
        reused = len(self.connections) - len(pending)
        if not pending:
            self._invalidated.clear()
            if self.sink.enabled:
                self.sink.emit(
                    EcoReroute(
                        len(self.connections), invalidated, reused,
                        0, 0, True, time.perf_counter() - started,
                    )
                )
            result = RoutingResult(
                workspace=ws,
                connections=list(self.connections),
                routed_by=dict(self._routed_by),
            )
            return RouteResponse(
                result=result,
                stopped_reason=None,
                counters={
                    "eco_invalidated": invalidated,
                    "eco_reused": reused,
                    "eco_rerouted": 0,
                },
                elapsed_seconds=time.perf_counter() - started,
            )

        config = self.config
        if budget is not None:
            config = replace(config, budget=budget)
        if config.workers > 1 and not ws.delta_active:
            # One continuous recording spans mutations and reroutes, so
            # a kept pool can always be caught up by draining it.
            ws.begin_delta()
        if self._pool is not None:
            if self._pool.alive:
                delta = ws.drain_delta()
                digest = ws.state_digest() if config.audit else None
                self._pool.sync(delta, digest)
            else:
                self._pool = None

        router = make_router(self.board, config, workspace=ws, sink=self.sink)
        parallel = isinstance(router, ParallelRouter)
        if parallel:
            router.keep_pool = True
            router.attach_pool(self._pool)
            self._pool = None
        try:
            result = router.route(list(self.connections))
        except BaseException:
            # The route died mid-flight (KeyboardInterrupt, a raising
            # sink, a worker-path escape).  The handed-off pool would
            # otherwise leak its worker processes — and the continuous
            # delta recording, now without a consumer, would accumulate
            # ops forever on a reused workspace.  Reclaim both before
            # re-raising; the session stays open but cold.
            if parallel:
                stranded = router.release_pool()
                if stranded is not None:
                    stranded.close()
            if ws.delta_active:
                ws.end_delta()
            raise
        rerouted = len(result.routed_by)
        if parallel:
            self._pool = router.release_pool()
            if router.workspace is not ws:
                # Parity fallback rebuilt the workspace from scratch;
                # the old one (and any pool mirroring it) is gone.
                if ws.delta_active:
                    ws.end_delta()
                self.workspace = ws = router.workspace
                self._routed_by.clear()
        if self._pool is None and ws.delta_active:
            # No pool survived: recording has no consumer; drop it
            # rather than accumulating ops forever.
            ws.end_delta()

        self._invalidated.clear()
        self._routed_by = {
            conn_id: strategy
            for conn_id, strategy in self._routed_by.items()
            if ws.is_routed(conn_id)
        }
        self._routed_by.update(result.routed_by)
        result.routed_by = dict(self._routed_by)
        elapsed = time.perf_counter() - started
        if self.sink.enabled:
            self.sink.emit(
                EcoReroute(
                    len(self.connections), invalidated, reused,
                    rerouted, len(result.failed), False, elapsed,
                )
            )
        profile = router.profile
        profile.bump("eco_invalidated", invalidated)
        profile.bump("eco_reused", reused)
        profile.bump("eco_rerouted", rerouted)
        timings = {
            name: timing.seconds
            for name, timing in profile.phases.items()
        }
        return RouteResponse(
            result=result,
            stopped_reason=result.stopped_reason,
            timings=timings,
            counters=dict(profile.counters),
            elapsed_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def pending(self) -> List[int]:
        """Connection ids currently awaiting a reroute."""
        return [
            c.conn_id
            for c in self.connections
            if not self.workspace.is_routed(c.conn_id)
        ]

    @property
    def pool_alive(self) -> bool:
        """True while a kept worker pool survives between reroutes."""
        return self._pool is not None and self._pool.alive

    @property
    def pool_pids(self) -> List[int]:
        """Process ids of the kept pool's live workers (bookkeeping).

        The serving layer uses this to prove clean shutdown: after
        :meth:`close`, every pid listed here must be gone.
        """
        if self._pool is not None and self._pool.alive:
            return self._pool.pids()
        return []

    def _check_open(self) -> None:
        if self._closed:
            raise EcoError("session is closed")
