"""Renderings of routing problems and solutions (Figures 20-22)."""

from repro.viz.ascii_art import render_layer, render_via_map
from repro.viz.ppm import (
    render_all_layers,
    render_postprocessed_layer,
    render_power_plane,
    render_problem,
    render_signal_layer,
    write_ppm,
)

__all__ = [
    "render_all_layers",
    "render_layer",
    "render_postprocessed_layer",
    "render_power_plane",
    "render_problem",
    "render_signal_layer",
    "render_via_map",
    "write_ppm",
]
