"""Terminal renderings of layers and via maps, for quick inspection."""

from __future__ import annotations

from typing import Optional

from repro.channels.segment import FILL_OWNER
from repro.channels.workspace import RoutingWorkspace
from repro.grid.coords import GridPoint
from repro.grid.geometry import Box, Orientation


def render_layer(
    workspace: RoutingWorkspace,
    layer_index: int,
    box: Optional[Box] = None,
) -> str:
    """One signal layer as text: one character per routing-grid cell.

    ``.`` free, ``-``/``|`` trace (by layer orientation), ``o`` drilled
    via, ``O`` pin, ``#`` tesselation fill.
    """
    layer = workspace.layers[layer_index]
    grid = workspace.grid
    box = box or grid.bounds
    box = box.clipped_to(grid.bounds)
    trace_char = (
        "-" if layer.orientation is Orientation.HORIZONTAL else "|"
    )
    rows = []
    for gy in range(box.y_hi, box.y_lo - 1, -1):  # y up, like a schematic
        row = []
        for gx in range(box.x_lo, box.x_hi + 1):
            point = GridPoint(gx, gy)
            owner = layer.owner_at(point)
            char = "."
            if owner is not None:
                if owner == FILL_OWNER:
                    char = "#"
                elif owner >= 0:
                    char = trace_char
                else:
                    char = "O"  # pin
                if grid.is_via_site(point):
                    via = grid.grid_to_via(point)
                    drilled = workspace.via_map.drilled_owner(via)
                    if drilled is not None:
                        char = "O" if drilled < 0 else "o"
            row.append(char)
        rows.append("".join(row))
    return "\n".join(rows)


def render_via_map(workspace: RoutingWorkspace) -> str:
    """The via map as a digit grid: usage count per via site (``.`` free)."""
    from repro.grid.coords import ViaPoint

    via_map = workspace.via_map
    rows = []
    for vy in range(via_map.via_ny - 1, -1, -1):
        row = []
        for vx in range(via_map.via_nx):
            count = via_map.count(ViaPoint(vx, vy))
            row.append("." if count == 0 else str(min(count, 9)))
        rows.append("".join(row))
    return "\n".join(rows)
