"""Bitmap renderings (binary PPM) of Figures 20, 21 and 22.

Pure numpy rasteriser — no imaging dependencies.  Each via-grid unit maps
to ``cell`` pixels; images can be viewed with any image tool or converted
with ``pnmtopng``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - base install without [fast]
    np = None

from repro.board.board import Board
from repro.board.nets import Connection
from repro.channels.workspace import RoutingWorkspace
from repro.extensions.power_plane import FeatureKind, PowerPlanePattern
from repro.grid.geometry import Orientation

Color = Tuple[int, int, int]

WHITE: Color = (255, 255, 255)
BLACK: Color = (0, 0, 0)
RED: Color = (200, 40, 40)
BLUE: Color = (40, 60, 200)
GRAY: Color = (180, 180, 180)


class Canvas:
    """A tiny RGB raster with line and disk primitives."""

    def __init__(self, width: int, height: int, background: Color = WHITE):
        if np is None:
            raise ImportError(
                "PPM rendering rasterises through numpy; install the "
                "extra: pip install repro[fast]"
            )
        self.width = width
        self.height = height
        self.pixels = np.empty((height, width, 3), dtype=np.uint8)
        self.pixels[:, :] = background

    def draw_line(self, x0: int, y0: int, x1: int, y1: int, color: Color):
        """Bresenham line (integer pixel coordinates)."""
        dx = abs(x1 - x0)
        dy = -abs(y1 - y0)
        sx = 1 if x0 < x1 else -1
        sy = 1 if y0 < y1 else -1
        err = dx + dy
        x, y = x0, y0
        while True:
            if 0 <= x < self.width and 0 <= y < self.height:
                self.pixels[y, x] = color
            if x == x1 and y == y1:
                break
            e2 = 2 * err
            if e2 >= dy:
                err += dy
                x += sx
            if e2 <= dx:
                err += dx
                y += sy

    def draw_disk(self, cx: int, cy: int, radius: float, color: Color):
        """Filled disk."""
        r = int(np.ceil(radius))
        y_lo = max(cy - r, 0)
        y_hi = min(cy + r, self.height - 1)
        x_lo = max(cx - r, 0)
        x_hi = min(cx + r, self.width - 1)
        if y_hi < y_lo or x_hi < x_lo:
            return
        ys, xs = np.ogrid[y_lo : y_hi + 1, x_lo : x_hi + 1]
        mask = (xs - cx) ** 2 + (ys - cy) ** 2 <= radius**2
        self.pixels[y_lo : y_hi + 1, x_lo : x_hi + 1][mask] = color

    def draw_ring(
        self, cx: int, cy: int, radius: float, thickness: float, color: Color
    ):
        """Annulus (for thermal reliefs)."""
        r = int(np.ceil(radius))
        y_lo = max(cy - r, 0)
        y_hi = min(cy + r, self.height - 1)
        x_lo = max(cx - r, 0)
        x_hi = min(cx + r, self.width - 1)
        if y_hi < y_lo or x_hi < x_lo:
            return
        ys, xs = np.ogrid[y_lo : y_hi + 1, x_lo : x_hi + 1]
        d2 = (xs - cx) ** 2 + (ys - cy) ** 2
        mask = (d2 <= radius**2) & (d2 >= (radius - thickness) ** 2)
        self.pixels[y_lo : y_hi + 1, x_lo : x_hi + 1][mask] = color


def write_ppm(canvas: Canvas, path: str) -> None:
    """Write the canvas as a binary PPM (P6) file."""
    with open(path, "wb") as f:
        f.write(f"P6\n{canvas.width} {canvas.height}\n255\n".encode())
        f.write(canvas.pixels.tobytes())


def _via_canvas(board: Board, cell: int) -> Canvas:
    width = board.grid.via_nx * cell + cell
    height = board.grid.via_ny * cell + cell
    return Canvas(width, height)


def _via_px(board: Board, vx: int, vy: int, cell: int) -> Tuple[int, int]:
    # y flipped so the origin is bottom-left like the paper's plots
    return (
        vx * cell + cell // 2 + cell // 2,
        (board.grid.via_ny - 1 - vy) * cell + cell // 2 + cell // 2,
    )


def render_problem(
    board: Board,
    connections: Sequence[Connection],
    path: Optional[str] = None,
    cell: int = 4,
) -> Canvas:
    """Figure 20: the routing problem, one line per connection."""
    canvas = _via_canvas(board, cell)
    for pin in board.pins:
        x, y = _via_px(board, pin.position.vx, pin.position.vy, cell)
        canvas.draw_disk(x, y, cell * 0.25, GRAY)
    for conn in connections:
        x0, y0 = _via_px(board, conn.a.vx, conn.a.vy, cell)
        x1, y1 = _via_px(board, conn.b.vx, conn.b.vy, cell)
        canvas.draw_line(x0, y0, x1, y1, BLACK)
    if path:
        write_ppm(canvas, path)
    return canvas


def render_signal_layer(
    board: Board,
    workspace: RoutingWorkspace,
    layer_index: int,
    path: Optional[str] = None,
    cell: int = 4,
) -> Canvas:
    """Figure 21: one routed signal layer (positive: copper is dark)."""
    canvas = _via_canvas(board, cell)
    layer = workspace.layers[layer_index]
    g = board.grid.grid_per_via
    px = cell / g  # pixels per routing-grid step

    def grid_px(gx: int, gy: int) -> Tuple[int, int]:
        return (
            int(gx * px) + cell // 2,
            int((board.grid.ny - 1 - gy) * px) + cell // 2,
        )

    for channel_index in range(layer.n_channels):
        for seg in layer.channel(channel_index):
            if seg.owner < 0:
                continue  # pins drawn separately, fill not drawn
            if layer.orientation is Orientation.HORIZONTAL:
                x0, y0 = grid_px(seg.lo, channel_index)
                x1, y1 = grid_px(seg.hi, channel_index)
            else:
                x0, y0 = grid_px(channel_index, seg.lo)
                x1, y1 = grid_px(channel_index, seg.hi)
            canvas.draw_line(x0, y0, x1, y1, BLACK)
    for via, owner in workspace.via_map.drilled_sites().items():
        x, y = grid_px(via.vx * g, via.vy * g)
        color = BLUE if owner < 0 else RED
        canvas.draw_disk(x, y, cell * 0.3, color)
    if path:
        write_ppm(canvas, path)
    return canvas


def render_power_plane(
    board: Board,
    pattern: PowerPlanePattern,
    path: Optional[str] = None,
    cell: int = 4,
) -> Canvas:
    """Figure 22: a power plane as a photographic negative.

    Copper is etched away where the image is black: clearance disks,
    mounting-hole circles, and thermal-relief rings.
    """
    canvas = _via_canvas(board, cell)
    mils_to_px = cell / board.grid.via_pitch_mils
    for feature in pattern.features:
        x, y = _via_px(board, feature.position.vx, feature.position.vy, cell)
        radius = feature.diameter_mils * mils_to_px / 2.0
        if feature.kind is FeatureKind.THERMAL_RELIEF:
            canvas.draw_ring(x, y, radius, max(radius * 0.35, 1.0), BLACK)
        else:
            canvas.draw_disk(x, y, radius, BLACK)
    if path:
        write_ppm(canvas, path)
    return canvas


def render_postprocessed_layer(
    board: Board,
    workspace: RoutingWorkspace,
    layer_index: int,
    path: Optional[str] = None,
    cell: int = 4,
    cut: float = 1.5,
) -> Canvas:
    """Figure 21 with the paper's postprocessing applied: the rectilinear
    output chamfered into diagonal corner cuts before plotting."""
    from repro.extensions.postprocess import postprocess_connection

    canvas = _via_canvas(board, cell)
    g = board.grid.grid_per_via
    px = cell / g

    def grid_px(gx: float, gy: float) -> Tuple[int, int]:
        return (
            int(gx * px) + cell // 2,
            int((board.grid.ny - 1 - gy) * px) + cell // 2,
        )

    for conn_id in workspace.records:
        for polyline in postprocess_connection(workspace, conn_id, cut):
            if polyline.layer_index != layer_index:
                continue
            for (x0, y0), (x1, y1) in zip(
                polyline.points, polyline.points[1:]
            ):
                canvas.draw_line(*grid_px(x0, y0), *grid_px(x1, y1), BLACK)
    for via, owner in workspace.via_map.drilled_sites().items():
        x, y = grid_px(via.vx * g, via.vy * g)
        canvas.draw_disk(x, y, cell * 0.3, BLUE if owner < 0 else RED)
    if path:
        write_ppm(canvas, path)
    return canvas


#: Per-layer colors for the composite render (cycled as needed).
LAYER_COLORS: Tuple[Color, ...] = (
    (20, 20, 160),   # layer 0 (outer)  blue
    (160, 20, 20),   # layer 1          red
    (20, 130, 20),   # layer 2          green
    (160, 120, 20),  # layer 3          amber
    (120, 20, 140),  # layer 4          purple
    (20, 130, 130),  # layer 5          teal
)


def render_all_layers(
    board: Board,
    workspace: RoutingWorkspace,
    path: Optional[str] = None,
    cell: int = 4,
) -> Canvas:
    """Composite of every signal layer, one color per layer.

    Later (inner) layers draw first so the outer layers read on top,
    matching how a designer inspects a stack-up.
    """
    canvas = _via_canvas(board, cell)
    g = board.grid.grid_per_via
    px = cell / g

    def grid_px(gx: int, gy: int) -> Tuple[int, int]:
        return (
            int(gx * px) + cell // 2,
            int((board.grid.ny - 1 - gy) * px) + cell // 2,
        )

    for layer_index in range(workspace.n_layers - 1, -1, -1):
        layer = workspace.layers[layer_index]
        color = LAYER_COLORS[layer_index % len(LAYER_COLORS)]
        for channel_index in range(layer.n_channels):
            for seg in layer.channel(channel_index):
                if seg.owner < 0:
                    continue
                if layer.orientation is Orientation.HORIZONTAL:
                    x0, y0 = grid_px(seg.lo, channel_index)
                    x1, y1 = grid_px(seg.hi, channel_index)
                else:
                    x0, y0 = grid_px(channel_index, seg.lo)
                    x1, y1 = grid_px(channel_index, seg.hi)
                canvas.draw_line(x0, y0, x1, y1, color)
    for via, owner in workspace.via_map.drilled_sites().items():
        x, y = grid_px(via.vx * g, via.vy * g)
        canvas.draw_disk(x, y, cell * 0.3, GRAY if owner < 0 else BLACK)
    if path:
        write_ppm(canvas, path)
    return canvas
