"""The stable service facade: one request in, one response out.

This module is the documented front door to the router (see
``docs/API.md``).  Everything else under :mod:`repro` — workspaces,
strategy internals, the parallel fan-out — is implementation that may
shift between releases; :class:`RouteRequest`, :class:`RouteResponse`
and :func:`route` are the surface that stays put.

::

    from repro import RouteBudget, RouteRequest, route, string_board

    request = RouteRequest(
        board=board,
        connections=string_board(board),
        budget=RouteBudget(deadline_seconds=10.0),
    )
    response = route(request)
    print(response.result.summary(), response.stopped_reason)

``route()`` never raises on exhaustion: a request whose budget runs out
returns a *partial* response — everything routed so far stays installed,
``stopped_reason`` says why the run ended early, and
``result.failure_reasons`` says per connection whether it was genuinely
blocked or merely out of clock.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

from repro.board.board import Board
from repro.board.nets import Connection
from repro.core.budget import RouteBudget
from repro.core.result import RoutingResult
from repro.core.router import RouterConfig, make_router
from repro.io.registry import LoadedBoard, load_board, load_board_text
from repro.obs.sinks import EventSink

if TYPE_CHECKING:
    from repro.channels.workspace import RoutingWorkspace

__all__ = [
    "LoadedBoard",
    "RouteRequest",
    "RouteResponse",
    "begin_eco",
    "load_board",
    "request_from_text",
    "reroute",
    "route",
]


@dataclass(frozen=True)
class RouteRequest:
    """Everything one routing call needs, as a single immutable value."""

    #: The board to route on (placed parts, nets, layer stack).
    board: Board
    #: Pin-to-pin connections to route (e.g. from ``string_board``).
    connections: Tuple[Connection, ...]
    #: Wall-clock and effort limits.  When set, overrides the budget
    #: nested in ``config``; None defers to ``config.budget``.
    budget: Optional[RouteBudget] = None
    #: Full router tuning; None means ``RouterConfig()`` defaults.
    config: Optional[RouterConfig] = None
    #: Optional routing event stream (``repro.obs``).
    sink: Optional[EventSink] = None
    #: Pre-seeded workspace to route into.  Formats that carry routing
    #: state of their own (kicad: dispersion traces, previously exported
    #: routes) arrive with one; None builds a fresh workspace from the
    #: board.  ``connections`` should then hold only the *pending*
    #: connections — :meth:`from_path` takes care of both.
    workspace: Optional["RoutingWorkspace"] = None

    def __post_init__(self) -> None:
        # Accept any iterable of connections but store a tuple, keeping
        # the request hashable-by-identity and safely re-usable.
        if not isinstance(self.connections, tuple):
            object.__setattr__(
                self, "connections", tuple(self.connections)
            )

    @property
    def resolved_config(self) -> RouterConfig:
        """The effective config: ``config`` with ``budget`` folded in."""
        config = self.config or RouterConfig()
        if self.budget is not None:
            config = replace(config, budget=self.budget)
        return config

    @classmethod
    def from_path(
        cls,
        path: Union[str, os.PathLike],
        *,
        format: str = "auto",
        connections_path: Optional[Union[str, os.PathLike]] = None,
        budget: Optional[RouteBudget] = None,
        config: Optional[RouterConfig] = None,
        sink: Optional[EventSink] = None,
        pitch_mm: Optional[float] = None,
    ) -> "RouteRequest":
        """Build a request from a board file in any registered format.

        Resolves the format by extension (``.kicad_pcb`` -> kicad,
        anything else -> native text) unless ``format`` overrides it,
        and loads through the :mod:`repro.io` registry — the same path
        the CLI and the service use.  Boards that arrive with routing
        state already installed (a kicad export) contribute it as the
        request's :attr:`workspace`, and only the still-unrouted
        connections are requested.
        """
        loaded = load_board(
            path,
            format=format,
            connections_path=connections_path,
            pitch_mm=pitch_mm,
        )
        return cls(
            board=loaded.board,
            connections=loaded.pending,
            budget=budget,
            config=config,
            sink=sink,
            workspace=loaded.workspace,
        )


@dataclass(frozen=True)
class RouteResponse:
    """The outcome of one :func:`route` call."""

    #: The full routing result (workspace, per-connection strategies,
    #: Table 1 statistics).  Partial when ``stopped_reason`` is set.
    result: RoutingResult
    #: None when every connection routed; otherwise why the run stopped
    #: short (``"deadline"`` / ``"stalled"`` / ``"max_passes"``).
    stopped_reason: Optional[str]
    #: Wall-clock seconds per router phase (zero_via/one_via/lee/...).
    timings: Dict[str, float] = field(default_factory=dict)
    #: Profile counters: gap cache hits/misses, search cap hits, ...
    counters: Dict[str, int] = field(default_factory=dict)
    #: Total wall-clock seconds spent inside ``route()``.
    elapsed_seconds: float = 0.0

    @property
    def complete(self) -> bool:
        """True when every requested connection routed."""
        return self.result.complete


def route(request: RouteRequest) -> RouteResponse:
    """Route one request; never raises on budget exhaustion.

    Builds the router the config asks for (serial, or wave-parallel for
    ``config.workers > 1``), routes, and packages the result with the
    per-phase timings and counters from the router's profile.
    """
    router = make_router(
        request.board,
        request.resolved_config,
        workspace=request.workspace,
        sink=request.sink,
    )
    result = router.route(list(request.connections))
    profile = router.profile
    timings = {
        name: timing.seconds for name, timing in profile.phases.items()
    }
    return RouteResponse(
        result=result,
        stopped_reason=result.stopped_reason,
        timings=timings,
        counters=dict(profile.counters),
        elapsed_seconds=result.cpu_seconds,
    )


def request_from_text(
    board_text: str,
    connections_text: Optional[str] = None,
    *,
    format: str = "native",
    budget: Optional[RouteBudget] = None,
    config: Optional[RouterConfig] = None,
    sink: Optional[EventSink] = None,
) -> RouteRequest:
    """Build a :class:`RouteRequest` from board/connections text.

    The service boundary (``repro.serve``, or any caller shipping boards
    over a wire) moves boards and connection lists as text; decoding
    goes through the :mod:`repro.io` format registry, so the wire format
    and the file format can never drift apart.  ``format`` must be
    explicit (text has no extension to sniff); the default is the
    native line-based format.  Omitting ``connections_text`` strings
    the board's nets.
    """
    loaded = load_board_text(
        board_text, connections_text, format=format
    )
    return RouteRequest(
        board=loaded.board,
        connections=loaded.pending,
        budget=budget,
        config=config,
        sink=sink,
        workspace=loaded.workspace,
    )


def begin_eco(request: RouteRequest, response: RouteResponse):
    """Open an ECO session over a completed :func:`route` call.

    The session adopts the request's board and connection list and the
    response's routed workspace — the incremental counterpart of the
    batch facade.  Mutate it (``move_part`` / ``add_nets`` /
    ``cut_nets``), then call :func:`reroute`.
    """
    from repro.eco import EcoSession

    return EcoSession(
        board=request.board,
        connections=request.connections,
        config=request.resolved_config,
        sink=request.sink,
        workspace=response.result.workspace,
        routed_by=response.result.routed_by,
    )


def reroute(session, budget: Optional[RouteBudget] = None) -> RouteResponse:
    """Incrementally reroute an ECO session's pending connections.

    The incremental entry point beside :func:`route`: surviving routes,
    warm gap-cache entries and the session's kept worker pool are all
    reused, and only connections the session's mutations invalidated
    (plus anything that was already unrouted) are routed.  Shares
    ``route()``'s degradation contract — a ``budget`` that runs out
    yields a partial :class:`RouteResponse`, never an exception.
    """
    return session.reroute(budget=budget)
