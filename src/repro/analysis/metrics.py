"""Problem- and solution-level metrics (Section 9).

The "% chan" column of Table 1 "is calculated by dividing the total
Manhattan length of all connections to be made by the total available
channel space on all layers.  This gives the percentage channel demand to
channel supply.  As a rough estimate, it is clear that completely automatic
routing will fail where channel demand is much more than 50% of channel
supply."
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.board.board import Board
from repro.board.nets import Connection
from repro.core.result import RoutingResult


def channel_demand(board: Board, connections: Sequence[Connection]) -> int:
    """Total Manhattan length of all connections, in routing-grid cells."""
    per_via = board.grid.grid_per_via
    return sum(c.manhattan_length * per_via for c in connections)


def channel_supply(board: Board) -> int:
    """Total routable channel space over all signal layers, in grid cells."""
    grid = board.grid
    return board.stack.n_signal * grid.nx * grid.ny


def percent_chan(board: Board, connections: Sequence[Connection]) -> float:
    """Channel demand as a percentage of channel supply."""
    supply = channel_supply(board)
    if supply == 0:
        return 0.0
    return 100.0 * channel_demand(board, connections) / supply


def table1_row(
    board: Board,
    connections: Sequence[Connection],
    result: Optional[RoutingResult] = None,
) -> Dict[str, object]:
    """One Table 1 row for a board: problem metrics plus, if routed,
    solution metrics."""
    row: Dict[str, object] = {
        "board": board.name,
        "layers": board.stack.n_signal,
        "conn": len(connections),
        "pins_in2": round(board.pin_density_per_sq_inch, 1),
        "pct_chan": round(percent_chan(board, connections), 1),
    }
    if result is not None:
        row.update(
            {
                "pct_lee": round(result.percent_lee, 1),
                "rip_ups": result.rip_up_count,
                "vias": round(result.vias_per_connection, 2),
                "cpu_s": round(result.cpu_seconds, 1),
                "complete": result.complete,
                "routed": result.routed_count,
            }
        )
    return row
