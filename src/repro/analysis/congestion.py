"""Congestion analysis: where the channel supply is being spent.

Section 12: "The most effective tools for improving program performance
were careful analysis of the router output to find inefficient routing
patterns, statistical measures of routing patterns, and profiles of the
CPU usage."  This module provides those statistical measures: per-channel
occupancy, regional utilization, hotspot lists, and wire-length
distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - base install without [fast]
    np = None

from repro.board.board import Board
from repro.board.nets import Connection
from repro.channels.segment import FILL_OWNER
from repro.channels.workspace import RoutingWorkspace
from repro.grid.geometry import Box, Orientation


def _require_numpy(what: str) -> None:
    if np is None:
        raise ImportError(
            f"{what} returns numpy arrays; install the extra: "
            "pip install repro[fast]"
        )


def channel_occupancy(
    workspace: RoutingWorkspace, layer_index: int
) -> "np.ndarray":
    """Fraction of each channel's cells in use (0..1), one entry per
    channel of the layer.  Fill segments are excluded (they are
    temporary)."""
    _require_numpy("channel_occupancy")
    layer = workspace.layers[layer_index]
    occupancy = np.zeros(layer.n_channels)
    for channel_index, channel in enumerate(layer.channels):
        used = sum(
            seg.length for seg in channel if seg.owner != FILL_OWNER
        )
        occupancy[channel_index] = used / layer.channel_length
    return occupancy


def cell_usage_grid(workspace: RoutingWorkspace) -> "np.ndarray":
    """(ny, nx) array counting, per routing-grid cell, how many layers
    have copper there — the aggregate congestion picture."""
    _require_numpy("cell_usage_grid")
    grid = workspace.grid
    usage = np.zeros((grid.ny, grid.nx), dtype=np.int16)
    for layer in workspace.layers:
        for channel_index, channel in enumerate(layer.channels):
            for seg in channel:
                if seg.owner == FILL_OWNER:
                    continue
                if layer.orientation is Orientation.HORIZONTAL:
                    usage[channel_index, seg.lo : seg.hi + 1] += 1
                else:
                    usage[seg.lo : seg.hi + 1, channel_index] += 1
    return usage


@dataclass(frozen=True)
class Hotspot:
    """One congested channel."""

    layer_index: int
    channel_index: int
    occupancy: float


def hotspots(
    workspace: RoutingWorkspace, top_n: int = 10
) -> List[Hotspot]:
    """The most-occupied channels across all layers, worst first."""
    found: List[Hotspot] = []
    for layer_index in range(workspace.n_layers):
        occupancy = channel_occupancy(workspace, layer_index)
        for channel_index, value in enumerate(occupancy):
            if value > 0:
                found.append(
                    Hotspot(layer_index, channel_index, float(value))
                )
    found.sort(key=lambda h: -h.occupancy)
    return found[:top_n]


def region_utilization(
    workspace: RoutingWorkspace, box: Box
) -> float:
    """Used / available channel cells within a grid-coordinate box."""
    used = 0
    supply = 0
    for layer in workspace.layers:
        c_lo, c_hi, lo, hi = layer.box_cc(box)
        c_lo, c_hi = max(c_lo, 0), min(c_hi, layer.n_channels - 1)
        lo, hi = max(lo, 0), min(hi, layer.channel_length - 1)
        if c_hi < c_lo or hi < lo:
            continue
        supply += (c_hi - c_lo + 1) * (hi - lo + 1)
        for channel_index in range(c_lo, c_hi + 1):
            for seg in layer.channel(channel_index).overlapping(lo, hi):
                if seg.owner == FILL_OWNER:
                    continue
                used += min(seg.hi, hi) - max(seg.lo, lo) + 1
    if supply == 0:
        return 0.0
    return used / supply


def wire_length_stats(
    workspace: RoutingWorkspace, connections: Sequence[Connection]
) -> Dict[str, float]:
    """Detour statistics: installed wire length vs Manhattan lower bound."""
    grid = workspace.grid
    ratios = []
    total_wire = 0
    total_manhattan = 0
    for conn in connections:
        record = workspace.records.get(conn.conn_id)
        if record is None:
            continue
        manhattan_cells = conn.manhattan_length * grid.grid_per_via
        total_wire += record.wire_length
        total_manhattan += manhattan_cells
        if manhattan_cells:
            ratios.append(record.wire_length / manhattan_cells)
    if not ratios:
        return {
            "routes": 0, "total_wire": 0, "total_manhattan": 0,
            "mean_detour": 0.0, "max_detour": 0.0,
        }
    return {
        "routes": len(ratios),
        "total_wire": total_wire,
        "total_manhattan": total_manhattan,
        "mean_detour": sum(ratios) / len(ratios),
        "max_detour": max(ratios),
    }


def render_congestion(
    board: Board,
    workspace: RoutingWorkspace,
    path: Optional[str] = None,
    cell: int = 3,
):
    """Grayscale congestion heatmap (darker = more layers occupied)."""
    _require_numpy("render_congestion")
    from repro.viz.ppm import Canvas, write_ppm

    usage = cell_usage_grid(workspace)
    n_layers = max(workspace.n_layers, 1)
    height, width = usage.shape
    canvas = Canvas(width * cell, height * cell)
    shade = (255 - (usage.astype(np.float64) / n_layers) * 255).astype(
        np.uint8
    )
    expanded = np.kron(shade[::-1], np.ones((cell, cell), dtype=np.uint8))
    canvas.pixels[:, :, 0] = expanded
    canvas.pixels[:, :, 1] = expanded
    canvas.pixels[:, :, 2] = expanded
    if path:
        write_ppm(canvas, path)
    return canvas
