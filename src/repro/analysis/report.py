"""Plain-text table formatting in the style of the paper's Table 1."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Align a list of dict rows into a monospace table.

    Columns default to the union of keys in first-appearance order.
    """
    if not rows:
        return title
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    rendered: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        rendered.append([_cell(row.get(c)) for c in columns])
    widths = [
        max(len(line[i]) for line in rendered) for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.rjust(w) for h, w in zip(rendered[0], widths))
    lines.append(header)
    lines.append("-" * len(header))
    for line in rendered[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(line, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    """Render one table cell."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}".rstrip("0").rstrip(".")
    return str(value)
