"""Metrics, congestion analysis and reporting (Table 1 quantities plus
the Section 12 "statistical measures of routing patterns")."""

from repro.analysis.congestion import (
    Hotspot,
    cell_usage_grid,
    channel_occupancy,
    hotspots,
    region_utilization,
    render_congestion,
    wire_length_stats,
)
from repro.analysis.metrics import (
    channel_demand,
    channel_supply,
    percent_chan,
    table1_row,
)
from repro.analysis.report import format_table

__all__ = [
    "Hotspot",
    "cell_usage_grid",
    "channel_demand",
    "channel_occupancy",
    "channel_supply",
    "format_table",
    "hotspots",
    "percent_chan",
    "region_utilization",
    "render_congestion",
    "table1_row",
    "wire_length_stats",
]
