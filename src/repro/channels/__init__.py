"""Section 4 data structure: layers as channel arrays of used segments.

Each signal layer is an array of channels aligned with the layer's preferred
orientation.  A channel holds the *used* intervals (segments) along one grid
line; free space is implicit.  A separate via map caches per-via-site usage
counts because via availability inquiries are two to four orders of
magnitude more frequent than updates.
"""

from repro.channels.alternatives import MovingHeadChannel, TreeChannel
from repro.channels.channel import Channel, ChannelConflictError
from repro.channels.gap_cache import GapCache
from repro.channels.layer_data import LayerData
from repro.channels.segment import FILL_OWNER, Segment, is_rippable_owner
from repro.channels.via_map import ViaMap
from repro.channels.workspace import RouteRecord, RoutingWorkspace

__all__ = [
    "Channel",
    "ChannelConflictError",
    "FILL_OWNER",
    "GapCache",
    "LayerData",
    "MovingHeadChannel",
    "RouteRecord",
    "RoutingWorkspace",
    "Segment",
    "TreeChannel",
    "ViaMap",
    "is_rippable_owner",
]
