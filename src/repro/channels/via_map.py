"""The via map: cached per-via-site usage counts (Section 4).

"Inquiries about the availability of via sites are two to four orders of
magnitude more frequent than updates of via site usage. ... a separate via
map is maintained, and updated each time segments are added and deleted from
a layer.  The via map is indexed by (x,y) in via coordinates ... and holds
the number of traces that are using this via location on any layer.  This
number will be zero if the via location is free. ... It will be equal to the
number of signal layers for a used via."

Besides the count this implementation tracks, per site, the *sole owner* of
the covering segments (or a MIXED marker) so that a connection can reuse its
own via sites, and the owner of an actually drilled via.

The count grid is a flat stdlib ``array('i')`` — scalar probes index it
faster than a numpy array, and it keeps the core numpy-free (numpy is the
optional ``[fast]`` extra).  The fastpath kernels batch their probes
through :meth:`ViaMap.available_mask`, which lazily wraps the same buffer
in a zero-copy numpy view — writes through the scalar path are visible to
the view immediately, so the two access paths can never disagree.
"""

from __future__ import annotations

from array import array
from typing import Callable, Dict, FrozenSet, Iterator, Optional, Set

from repro.grid.coords import ViaPoint

class _MixedMarker:
    """Singleton marker that survives pickling with identity intact.

    Workspace snapshots (:meth:`repro.channels.workspace.RoutingWorkspace.
    snapshot`) round-trip the via map through pickle; ``is MIXED`` checks
    must keep working in the copy, so the marker reduces to the module
    singleton instead of a fresh anonymous object.
    """

    _instance: Optional["_MixedMarker"] = None

    def __new__(cls) -> "_MixedMarker":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (_MixedMarker, ())

    def __repr__(self) -> str:
        return "MIXED"


#: Marker meaning segments from more than one owner cover the site.
MIXED = _MixedMarker()


class ViaMap:
    """Per-via-site usage counts and ownership."""

    def __init__(self, via_nx: int, via_ny: int, n_layers: int) -> None:
        self.via_nx = via_nx
        self.via_ny = via_ny
        self.n_layers = n_layers
        #: Flat row-major (vx * via_ny + vy) cover counts.
        self._count = array("i", [0]) * (via_nx * via_ny)
        #: Lazy zero-copy numpy view over ``_count`` (None until the
        #: first :meth:`available_mask` call; never pickled).
        self._view = None
        self._sole: Dict[ViaPoint, object] = {}
        self._drilled: Dict[ViaPoint, int] = {}
        #: Instrumentation for the Section 4 claim that availability
        #: probes are "two to four orders of magnitude more frequent
        #: than updates" (measured by benchmarks/bench_via_map.py).
        self.probe_count = 0
        self.update_count = 0
        #: Per-via-row / per-via-column mutation generations, bumped by
        #: every cover change at a site in that row/column.  The
        #: :class:`repro.core.bounds.LowerBoundCache` stamps its entries
        #: with these — the via-grid analogue of ``Channel.generation``
        #: (both are bumped by the same add/remove-segment funnel), at
        #: exactly the granularity a target's arrival bands depend on.
        self.row_gen = array("l", [0]) * via_ny
        self.col_gen = array("l", [0]) * via_nx

    # ------------------------------------------------------------------
    # probes (the hot path)
    # ------------------------------------------------------------------

    def count(self, via: ViaPoint) -> int:
        """Number of layer segments covering the site."""
        return self._count[via.vx * self.via_ny + via.vy]

    def is_available(
        self, via: ViaPoint, passable: FrozenSet[int] = frozenset()
    ) -> bool:
        """True if a via may be drilled here by a connection in ``passable``.

        Free sites (count zero) are available to everyone; covered sites are
        available only when every covering segment belongs to a passable
        owner (typically the connection's own traces or pins).
        """
        self.probe_count += 1
        if not self._count[via.vx * self.via_ny + via.vy]:
            return True
        sole = self._sole.get(via)
        return sole is not MIXED and sole in passable

    def is_available_xy(
        self, vx: int, vy: int, passable: FrozenSet[int]
    ) -> bool:
        """:meth:`is_available` on bare coordinates.

        The fastpath site collector filters candidates before it builds
        ``ViaPoint`` objects for the survivors; only the rare covered
        site pays for a tuple key (which hashes identically to the
        ``ViaPoint`` NamedTuple keys of the sole-owner dict).
        """
        self.probe_count += 1
        if not self._count[vx * self.via_ny + vy]:
            return True
        sole = self._sole.get((vx, vy))
        return sole is not MIXED and sole in passable

    def available_mask(self, vx, vy, passable: FrozenSet[int]):
        """Vectorized :meth:`is_available` over parallel index arrays.

        ``vx``/``vy`` are equal-length integer ndarrays; returns a bool
        ndarray.  Bit-identical to per-site :meth:`is_available` calls
        (``probe_count`` included), evaluated in one fancy-indexed sweep
        over the zero-copy count view, with only the rare covered sites
        falling back to the sole-owner dict.
        """
        self.probe_count += len(vx)
        view = self._view
        if view is None:
            view = self._grid_view()
        mask = view[vx, vy] == 0
        if not mask.all():
            sole_get = self._sole.get
            for i in (~mask).nonzero()[0]:
                # A plain (vx, vy) tuple hashes identically to the
                # ViaPoint NamedTuple keys of the sole-owner dict.
                sole = sole_get((int(vx[i]), int(vy[i])))
                if sole is not MIXED and sole in passable:
                    mask[i] = True
        return mask

    def _grid_view(self):
        """Build (and memoize) the numpy view over the flat counts."""
        import numpy as np

        view = np.frombuffer(self._count, dtype=np.intc).reshape(
            self.via_nx, self.via_ny
        )
        self._view = view
        return view

    def drilled_owner(self, via: ViaPoint) -> Optional[int]:
        """Owner of the via drilled at the site, or None."""
        return self._drilled.get(via)

    def is_drilled(self, via: ViaPoint) -> bool:
        """True if an actual via (or pin hole) exists at the site."""
        return via in self._drilled

    def used_via_count(self) -> int:
        """Number of drilled vias (the vias column of Table 1 counts these)."""
        return len(self._drilled)

    # ------------------------------------------------------------------
    # audit accessors (read-only views for repro.obs.audit)
    # ------------------------------------------------------------------

    def sole_owner(self, via: ViaPoint) -> Optional[object]:
        """Cached sole owner at the site: an owner id, MIXED, or None.

        None means the cache holds nothing for the site (count zero).
        Unlike :meth:`is_available` this does not bump ``probe_count`` —
        it exists for the auditor, not the routing hot path.
        """
        return self._sole.get(via)

    def covered_sites(self) -> Iterator[ViaPoint]:
        """Every site with a nonzero cover count, in scan order."""
        ny = self.via_ny
        for i, count in enumerate(self._count):
            if count > 0:
                yield ViaPoint(i // ny, i % ny)

    # ------------------------------------------------------------------
    # updates (rare relative to probes)
    # ------------------------------------------------------------------

    def add_cover(self, via: ViaPoint, owner: int) -> None:
        """Record one more layer segment covering the site."""
        self.update_count += 1
        self.row_gen[via.vy] += 1
        self.col_gen[via.vx] += 1
        flat = via.vx * self.via_ny + via.vy
        count = self._count[flat]
        self._count[flat] = count + 1
        if count == 0:
            self._sole[via] = owner
        elif self._sole.get(via) != owner:
            self._sole[via] = MIXED

    def remove_cover(
        self,
        via: ViaPoint,
        owner: int,
        recompute_owners: Optional[Callable[[ViaPoint], Set[int]]] = None,
    ) -> None:
        """Record removal of a covering segment.

        If the site had mixed owners, the sole-owner cache can only be
        restored by rescanning the layers; ``recompute_owners`` provides
        that (the workspace passes its layer query).  Without it the site
        conservatively stays MIXED until it empties.
        """
        self.update_count += 1
        self.row_gen[via.vy] += 1
        self.col_gen[via.vx] += 1
        flat = via.vx * self.via_ny + via.vy
        count = self._count[flat]
        if count <= 0:
            raise ValueError(f"via map underflow at {via}")
        self._count[flat] = count - 1
        if count == 1:
            self._sole.pop(via, None)
            return
        if self._sole.get(via) is MIXED and recompute_owners is not None:
            owners = recompute_owners(via)
            if len(owners) == 1:
                self._sole[via] = next(iter(owners))

    def drill(self, via: ViaPoint, owner: int) -> None:
        """Mark a via as drilled by ``owner`` (hole through all layers)."""
        if via in self._drilled:
            raise ValueError(f"via {via} already drilled")
        self._drilled[via] = owner

    def undrill(self, via: ViaPoint, owner: int) -> None:
        """Remove a drilled via; owner must match."""
        if self._drilled.get(via) != owner:
            raise ValueError(f"via {via} not drilled by {owner}")
        del self._drilled[via]

    def drilled_sites(self) -> Dict[ViaPoint, int]:
        """Snapshot of every drilled via and its owner (for power planes)."""
        return dict(self._drilled)

    # ------------------------------------------------------------------
    # pickling: snapshots carry counts, not the numpy view
    # ------------------------------------------------------------------

    def __getstate__(self):
        state = self.__dict__.copy()
        # The view is a zero-copy alias of ``_count``; pickling it would
        # ship a detached copy that silently stops tracking updates.
        state["_view"] = None
        return state
