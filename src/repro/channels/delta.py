"""Compact workspace deltas for incremental pool synchronization.

The persistent worker pool (:mod:`repro.parallel.worker`) ships each
worker one full workspace snapshot at startup; after that, waves only
need to communicate *what changed* — the routes the merge step installed
(and, later, anything the serial residue ripped up).  A
:class:`WorkspaceDelta` is exactly that: the ordered list of route-level
operations applied to the master workspace between two synchronization
points.

Deltas are recorded at route granularity, not segment granularity: the
two route-level mutators (:meth:`RoutingWorkspace.commit_record` and
:meth:`RoutingWorkspace.remove_connection`) are the only ways routed
wiring appears or disappears, and a :class:`~repro.channels.workspace.
RouteRecord` already carries every segment and via of its route.  Pins
and tesselation fill are installed before the pool starts and never
change mid-call, so they ride in the startup snapshot.  The one
exception is an ECO part move between routing calls, which ships the
affected pin sites as explicit ``drill``/``undrill`` ops (see
:mod:`repro.eco`) so a kept pool's replicas track the edit too.

Applying a delta replays the operations in recorded order through the
same ``add``/``remove`` primitives routing itself uses, so channel
generations bump exactly as they did on the master — which is what lets
a worker's warm :class:`~repro.channels.gap_cache.GapCache` entries
survive the sync: only the channels the delta touches are invalidated.

The folding property (verified by a hypothesis suite)::

    snapshot(t0) + fold(deltas t0..tN) == canonical_state(tN)

holds for *any* interleaving of route / rip-up / putback on the master,
because the delta log records the operations in application order.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import List, Tuple, Union

from repro.channels.workspace import RouteRecord

#: Operation tags (slot 0 of every op tuple).
OP_ADD = "add"
OP_REMOVE = "remove"
#: Pin-level operations (ECO part moves): a pin's drilled via appearing
#: at or disappearing from a site, payload ``(ViaPoint, owner_token)``,
#: plus the board-side relocation ``(pin_id, ViaPoint)`` that keeps a
#: replica's :class:`~repro.board.board.Board` consistent with its
#: workspace (the invariant auditor reconciles the two).
OP_DRILL = "drill"
OP_UNDRILL = "undrill"
OP_MOVE_PIN = "move_pin"

#: One recorded operation: ``("add", RouteRecord)`` installs a route,
#: ``("remove", conn_id)`` rips one up, ``("drill"/"undrill",
#: (via, owner))`` moves a pin's drilled site (ECO part moves only —
#: batch routing never changes pins mid-call).
DeltaOp = Union[Tuple[str, RouteRecord], Tuple[str, int], Tuple[str, tuple]]


class DeltaConflictError(RuntimeError):
    """A delta operation could not be replayed on the target workspace.

    Raised when an ``add`` finds its claimed space occupied or a
    ``remove`` names an unrouted connection — either means the target
    was not at the sync state the delta was recorded against, which is a
    protocol bug, never a recoverable routing condition.
    """


@dataclass
class WorkspaceDelta:
    """The ordered route-level changes between two sync points."""

    #: Operations in the order they were applied to the source.
    ops: List[DeltaOp] = field(default_factory=list)

    def record_add(self, record: RouteRecord) -> None:
        """Log the installation of one route."""
        self.ops.append((OP_ADD, record))

    def record_remove(self, conn_id: int) -> None:
        """Log the rip-up of one route."""
        self.ops.append((OP_REMOVE, conn_id))

    def record_drill(self, via, owner: int) -> None:
        """Log a pin via being drilled at a site (ECO part move)."""
        self.ops.append((OP_DRILL, (via, owner)))

    def record_undrill(self, via, owner: int) -> None:
        """Log a pin via being removed from a site (ECO part move)."""
        self.ops.append((OP_UNDRILL, (via, owner)))

    def record_move_pin(self, pin_id: int, via) -> None:
        """Log a pin's board-side relocation (ECO part move)."""
        self.ops.append((OP_MOVE_PIN, (pin_id, via)))

    def __len__(self) -> int:
        return len(self.ops)

    def __bool__(self) -> bool:
        return bool(self.ops)

    @property
    def added(self) -> int:
        """Routes installed by this delta."""
        return sum(1 for op in self.ops if op[0] == OP_ADD)

    @property
    def removed(self) -> int:
        """Routes ripped up by this delta."""
        return sum(1 for op in self.ops if op[0] == OP_REMOVE)

    def removed_ids(self) -> List[int]:
        """Connection ids of every ``remove`` op, in order."""
        return [op[1] for op in self.ops if op[0] == OP_REMOVE]

    def added_ids(self) -> List[int]:
        """Connection ids of every ``add`` op, in order."""
        return [op[1].conn_id for op in self.ops if op[0] == OP_ADD]

    def to_payload(self) -> bytes:
        """Pickle once for broadcast to every pool worker."""
        return pickle.dumps(self.ops, pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_payload(cls, payload: bytes) -> "WorkspaceDelta":
        """Rebuild a delta from a broadcast payload."""
        return cls(ops=pickle.loads(payload))
