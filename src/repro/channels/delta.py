"""Compact workspace deltas for incremental pool synchronization.

The persistent worker pool (:mod:`repro.parallel.worker`) ships each
worker one full workspace snapshot at startup; after that, waves only
need to communicate *what changed* — the routes the merge step installed
(and, later, anything the serial residue ripped up).  A
:class:`WorkspaceDelta` is exactly that: the ordered list of route-level
operations applied to the master workspace between two synchronization
points.

Deltas are recorded at route granularity, not segment granularity: the
two route-level mutators (:meth:`RoutingWorkspace.commit_record` and
:meth:`RoutingWorkspace.remove_connection`) are the only ways routed
wiring appears or disappears, and a :class:`~repro.channels.workspace.
RouteRecord` already carries every segment and via of its route.  Pins
and tesselation fill are installed before the pool starts and never
change mid-call, so they ride in the startup snapshot.

Applying a delta replays the operations in recorded order through the
same ``add``/``remove`` primitives routing itself uses, so channel
generations bump exactly as they did on the master — which is what lets
a worker's warm :class:`~repro.channels.gap_cache.GapCache` entries
survive the sync: only the channels the delta touches are invalidated.

The folding property (verified by a hypothesis suite)::

    snapshot(t0) + fold(deltas t0..tN) == canonical_state(tN)

holds for *any* interleaving of route / rip-up / putback on the master,
because the delta log records the operations in application order.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import List, Tuple, Union

from repro.channels.workspace import RouteRecord

#: Operation tags (slot 0 of every op tuple).
OP_ADD = "add"
OP_REMOVE = "remove"

#: One recorded operation: ``("add", RouteRecord)`` installs a route,
#: ``("remove", conn_id)`` rips one up.
DeltaOp = Union[Tuple[str, RouteRecord], Tuple[str, int]]


class DeltaConflictError(RuntimeError):
    """A delta operation could not be replayed on the target workspace.

    Raised when an ``add`` finds its claimed space occupied or a
    ``remove`` names an unrouted connection — either means the target
    was not at the sync state the delta was recorded against, which is a
    protocol bug, never a recoverable routing condition.
    """


@dataclass
class WorkspaceDelta:
    """The ordered route-level changes between two sync points."""

    #: Operations in the order they were applied to the source.
    ops: List[DeltaOp] = field(default_factory=list)

    def record_add(self, record: RouteRecord) -> None:
        """Log the installation of one route."""
        self.ops.append((OP_ADD, record))

    def record_remove(self, conn_id: int) -> None:
        """Log the rip-up of one route."""
        self.ops.append((OP_REMOVE, conn_id))

    def __len__(self) -> int:
        return len(self.ops)

    def __bool__(self) -> bool:
        return bool(self.ops)

    @property
    def added(self) -> int:
        """Routes installed by this delta."""
        return sum(1 for op in self.ops if op[0] == OP_ADD)

    @property
    def removed(self) -> int:
        """Routes ripped up by this delta."""
        return sum(1 for op in self.ops if op[0] == OP_REMOVE)

    def to_payload(self) -> bytes:
        """Pickle once for broadcast to every pool worker."""
        return pickle.dumps(self.ops, pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_payload(cls, payload: bytes) -> "WorkspaceDelta":
        """Rebuild a delta from a broadcast payload."""
        return cls(ops=pickle.loads(payload))
