"""Segments: used intervals in a channel, with ownership conventions.

Owner ids encode what a segment belongs to and whether rip-up may remove it:

* ``owner >= 0`` — a routed connection (rippable);
* ``-(pin_id + 1)`` — a part pin's via (immovable);
* :data:`FILL_OWNER` — tesselation filler blocking the other logic family's
  tiles during a routing pass (immovable, Section 10.2).
"""

from __future__ import annotations

from typing import NamedTuple

#: Reserved owner for ECL/TTL tesselation fill segments (Section 10.2).
FILL_OWNER = -(10**9)


def is_rippable_owner(owner: int) -> bool:
    """True if rip-up may remove segments with this owner (connections only)."""
    return owner >= 0


def pin_owner(pin_id: int) -> int:
    """Immovable owner token for a pin's via."""
    return -(pin_id + 1)


def owner_pin_id(owner: int) -> int:
    """Inverse of :func:`pin_owner`; only valid for pin owners."""
    if owner >= 0 or owner == FILL_OWNER:
        raise ValueError(f"{owner} is not a pin owner")
    return -owner - 1


class Segment(NamedTuple):
    """A used interval ``[lo, hi]`` (inclusive) along a channel."""

    lo: int
    hi: int
    owner: int

    @property
    def length(self) -> int:
        """Number of grid cells covered."""
        return self.hi - self.lo + 1

    def overlaps(self, lo: int, hi: int) -> bool:
        """True if the segment shares at least one cell with ``[lo, hi]``."""
        return self.lo <= hi and lo <= self.hi
