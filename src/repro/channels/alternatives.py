"""The paper's two historical channel structures, for the E7 ablation.

Section 12: "In earlier versions, each channel was represented as a binary
tree of segments ... The change from binary tree to doubly linked list with
a moving head-of-list pointer halved the running time on most problems."

Both structures implement the probe/update subset used by the benchmark:
``add``, ``remove``, ``overlapping``, ``is_free`` and ``free_gaps``, with
the same disjoint-segment semantics as the production
:class:`repro.channels.channel.Channel`.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Optional, Tuple

from repro.channels.channel import ChannelConflictError
from repro.channels.segment import Segment

NO_PASSABLE: FrozenSet[int] = frozenset()


class _QueryMixin:
    """Derived probes shared by both alternative structures."""

    def overlapping(self, lo: int, hi: int) -> Iterator[Segment]:
        raise NotImplementedError

    def is_free(
        self, lo: int, hi: int, passable: FrozenSet[int] = NO_PASSABLE
    ) -> bool:
        """True if no cell in ``[lo, hi]`` is used by a non-passable owner."""
        for seg in self.overlapping(lo, hi):
            if seg.owner not in passable:
                return False
        return True

    def free_gaps(
        self, lo: int, hi: int, passable: FrozenSet[int] = NO_PASSABLE
    ) -> List[Tuple[int, int]]:
        """Maximal free-or-passable sub-intervals of ``[lo, hi]``."""
        gaps: List[Tuple[int, int]] = []
        cursor = lo
        for seg in self.overlapping(lo, hi):
            if seg.owner in passable:
                continue
            if seg.lo > cursor:
                gaps.append((cursor, seg.lo - 1))
            cursor = max(cursor, seg.hi + 1)
            if cursor > hi:
                break
        if cursor <= hi:
            gaps.append((cursor, hi))
        return gaps

    def owner_set(self) -> FrozenSet[int]:
        """All owners with at least one segment in this channel."""
        return frozenset(seg.owner for seg in self)

    def has_any_owner(self, owners: FrozenSet[int]) -> bool:
        """True if any of ``owners`` has at least one segment here."""
        for seg in self:
            if seg.owner in owners:
                return True
        return False


class _ListNode:
    """Doubly-linked list node holding one segment."""

    __slots__ = ("lo", "hi", "owner", "prev", "next")

    def __init__(self, lo: int, hi: int, owner: int) -> None:
        self.lo = lo
        self.hi = hi
        self.owner = owner
        self.prev: Optional["_ListNode"] = None
        self.next: Optional["_ListNode"] = None


class MovingHeadChannel(_QueryMixin):
    """Doubly-linked segment list with a moving head-of-list pointer.

    The head pointer is left at the last node touched, so the run of probes
    a router makes while working one connection starts near the right place
    — the locality argument of Section 12.
    """

    def __init__(self) -> None:
        self._first: Optional[_ListNode] = None
        self._head: Optional[_ListNode] = None  # moving locality pointer
        self._count = 0
        #: Mutation counter; same protocol as ``Channel.generation`` so
        #: the alternative structures stay drop-in channel factories.
        self.generation = 0

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Segment]:
        node = self._first
        while node is not None:
            yield Segment(node.lo, node.hi, node.owner)
            node = node.next

    def _seek(self, lo: int) -> Optional[_ListNode]:
        """First node with ``hi >= lo``, walking from the moving head."""
        node = self._head or self._first
        if node is None:
            return None
        # Walk backward while the previous node still ends at/after lo.
        while node.prev is not None and node.prev.hi >= lo:
            node = node.prev
        # Walk forward to the first node ending at/after lo.
        while node is not None and node.hi < lo:
            node = node.next
        if node is not None:
            self._head = node
        return node

    def overlapping(self, lo: int, hi: int) -> Iterator[Segment]:
        node = self._seek(lo)
        while node is not None and node.lo <= hi:
            yield Segment(node.lo, node.hi, node.owner)
            node = node.next

    def add(
        self,
        lo: int,
        hi: int,
        owner: int,
        passable: FrozenSet[int] = NO_PASSABLE,
    ) -> List[Tuple[int, int]]:
        """Insert with same-owner/passable clipping; see ``Channel.add``."""
        if hi < lo:
            raise ValueError(f"empty interval [{lo}, {hi}]")
        for seg in self.overlapping(lo, hi):
            if seg.owner != owner and seg.owner not in passable:
                raise ChannelConflictError(
                    f"[{lo},{hi}] owner {owner} overlaps {seg}"
                )
        pieces: List[Tuple[int, int]] = []
        cursor = lo
        for seg in list(self.overlapping(lo, hi)):
            if seg.lo > cursor:
                pieces.append((cursor, min(seg.lo - 1, hi)))
            cursor = max(cursor, seg.hi + 1)
        if cursor <= hi:
            pieces.append((cursor, hi))
        for plo, phi in pieces:
            self._insert(plo, phi, owner)
        if pieces:
            self.generation += 1
        return pieces

    def _insert(self, lo: int, hi: int, owner: int) -> None:
        new = _ListNode(lo, hi, owner)
        after = self._seek(lo)  # first node with hi >= lo, i.e. successor
        if after is None:
            # Append at the end.
            if self._first is None:
                self._first = new
            else:
                node = self._head or self._first
                while node.next is not None:
                    node = node.next
                node.next = new
                new.prev = node
        else:
            new.prev = after.prev
            new.next = after
            if after.prev is not None:
                after.prev.next = new
            else:
                self._first = new
            after.prev = new
        self._head = new
        self._count += 1

    def remove(self, lo: int, hi: int, owner: int) -> None:
        """Remove the segment with exactly these bounds and owner."""
        node = self._seek(lo)
        if (
            node is not None
            and node.lo == lo
            and node.hi == hi
            and node.owner == owner
        ):
            if node.prev is not None:
                node.prev.next = node.next
            else:
                self._first = node.next
            if node.next is not None:
                node.next.prev = node.prev
            self._head = node.prev or node.next
            self._count -= 1
            self.generation += 1
            return
        raise KeyError(f"no segment [{lo},{hi}] owned by {owner}")


class _TreeNode:
    """Binary search tree node keyed by segment start."""

    __slots__ = ("lo", "hi", "owner", "left", "right", "max_hi")

    def __init__(self, lo: int, hi: int, owner: int) -> None:
        self.lo = lo
        self.hi = hi
        self.owner = owner
        self.left: Optional["_TreeNode"] = None
        self.right: Optional["_TreeNode"] = None
        self.max_hi = hi  # interval-tree augmentation


class TreeChannel(_QueryMixin):
    """Unbalanced interval BST keyed by segment start (the pre-1987 design).

    Random probes are O(log n), but the tree has no locality: successive
    probes while routing one connection re-descend from the root each time.
    """

    def __init__(self) -> None:
        self._root: Optional[_TreeNode] = None
        self._count = 0
        #: Mutation counter; same protocol as ``Channel.generation``.
        self.generation = 0

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Segment]:
        yield from self._inorder(self._root)

    def _inorder(self, node: Optional[_TreeNode]) -> Iterator[Segment]:
        if node is None:
            return
        yield from self._inorder(node.left)
        yield Segment(node.lo, node.hi, node.owner)
        yield from self._inorder(node.right)

    def overlapping(self, lo: int, hi: int) -> Iterator[Segment]:
        yield from self._overlap(self._root, lo, hi)

    def _overlap(
        self, node: Optional[_TreeNode], lo: int, hi: int
    ) -> Iterator[Segment]:
        if node is None or node.max_hi < lo:
            return
        yield from self._overlap(node.left, lo, hi)
        if node.lo <= hi and lo <= node.hi:
            yield Segment(node.lo, node.hi, node.owner)
        if node.lo <= hi:
            yield from self._overlap(node.right, lo, hi)

    def add(
        self,
        lo: int,
        hi: int,
        owner: int,
        passable: FrozenSet[int] = NO_PASSABLE,
    ) -> List[Tuple[int, int]]:
        """Insert with same-owner/passable clipping; see ``Channel.add``."""
        if hi < lo:
            raise ValueError(f"empty interval [{lo}, {hi}]")
        blockers = sorted(self.overlapping(lo, hi), key=lambda s: s.lo)
        for seg in blockers:
            if seg.owner != owner and seg.owner not in passable:
                raise ChannelConflictError(
                    f"[{lo},{hi}] owner {owner} overlaps {seg}"
                )
        pieces: List[Tuple[int, int]] = []
        cursor = lo
        for seg in blockers:
            if seg.lo > cursor:
                pieces.append((cursor, min(seg.lo - 1, hi)))
            cursor = max(cursor, seg.hi + 1)
        if cursor <= hi:
            pieces.append((cursor, hi))
        for plo, phi in pieces:
            self._root = self._insert(self._root, plo, phi, owner)
            self._count += 1
        if pieces:
            self.generation += 1
        return pieces

    def _insert(
        self, node: Optional[_TreeNode], lo: int, hi: int, owner: int
    ) -> _TreeNode:
        if node is None:
            return _TreeNode(lo, hi, owner)
        if lo < node.lo:
            node.left = self._insert(node.left, lo, hi, owner)
        else:
            node.right = self._insert(node.right, lo, hi, owner)
        node.max_hi = max(node.max_hi, hi)
        return node

    def remove(self, lo: int, hi: int, owner: int) -> None:
        """Remove the segment with exactly these bounds and owner."""
        found = [
            s
            for s in self.overlapping(lo, hi)
            if s.lo == lo and s.hi == hi and s.owner == owner
        ]
        if not found:
            raise KeyError(f"no segment [{lo},{hi}] owned by {owner}")
        # Rebuild without the removed segment (deletion in an augmented BST
        # is involved; this structure exists only for benchmarking probes).
        segments = [s for s in self if not (s.lo == lo and s.hi == hi)]
        self._root = None
        self._count = 0
        self.generation += 1
        for seg in segments:
            self._root = self._insert(self._root, seg.lo, seg.hi, seg.owner)
            self._count += 1
