"""Per-layer channel array with orientation-aware coordinate mapping.

Section 4: "each layer is represented as an array of channels.  For a
vertical layer the channels are aligned vertically, so the array runs in the
horizontal dimension.  For a horizontal layer, the array runs vertically."

All single-layer algorithms work in *channel coordinates*: a grid point maps
to ``(channel_index, coord)`` where ``coord`` runs along the channel.  On a
horizontal layer the channel index is the row ``gy`` and the coordinate is
``gx``; on a vertical layer they swap.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterator, List, Optional, Tuple

from repro.board.layers import Layer
from repro.channels.channel import Channel
from repro.channels.gap_cache import GapCache
from repro.grid.coords import GridPoint, ViaPoint
from repro.grid.geometry import Box, Orientation
from repro.grid.routing_grid import RoutingGrid

#: A path piece inside one channel: (channel_index, lo, hi).
ChannelPiece = Tuple[int, int, int]


class LayerData:
    """Channel array for one signal layer."""

    def __init__(
        self,
        layer: Layer,
        grid: RoutingGrid,
        channel_factory: Callable[[], Channel] = Channel,
    ) -> None:
        if layer.orientation is None:
            raise ValueError("LayerData requires a signal layer")
        self.layer = layer
        self.grid = grid
        self.orientation = layer.orientation
        if self.orientation is Orientation.HORIZONTAL:
            self.n_channels = grid.ny
            self.channel_length = grid.nx
        else:
            self.n_channels = grid.nx
            self.channel_length = grid.ny
        self.channels: List[Channel] = [
            channel_factory() for _ in range(self.n_channels)
        ]
        #: Generation-stamped free-gap memo shared by every search on
        #: this layer (see :mod:`repro.channels.gap_cache`).
        self.gap_cache = GapCache(self)
        #: Resolved search backend ("python" or "numpy") consulted by the
        #: single-layer searches on every dispatch; set through
        #: :meth:`repro.channels.workspace.RoutingWorkspace.set_backend`.
        #: Travels with pickled snapshots, so pool workers and forked
        #: children inherit the selection automatically.
        self.backend = "python"

    # ------------------------------------------------------------------
    # coordinate mapping
    # ------------------------------------------------------------------

    def point_cc(self, point: GridPoint) -> Tuple[int, int]:
        """Grid point -> (channel index, along-channel coordinate)."""
        if self.orientation is Orientation.HORIZONTAL:
            return point.gy, point.gx
        return point.gx, point.gy

    def cc_point(self, channel_index: int, coord: int) -> GridPoint:
        """(channel index, coordinate) -> grid point."""
        if self.orientation is Orientation.HORIZONTAL:
            return GridPoint(coord, channel_index)
        return GridPoint(channel_index, coord)

    def box_cc(self, box: Box) -> Tuple[int, int, int, int]:
        """Box -> (channel_lo, channel_hi, coord_lo, coord_hi)."""
        if self.orientation is Orientation.HORIZONTAL:
            return box.y_lo, box.y_hi, box.x_lo, box.x_hi
        return box.x_lo, box.x_hi, box.y_lo, box.y_hi

    # ------------------------------------------------------------------
    # via-site geometry
    # ------------------------------------------------------------------

    def is_via_channel(self, channel_index: int) -> bool:
        """True if the channel passes through a row/column of via sites."""
        return channel_index % self.grid.grid_per_via == 0

    def via_sites_in(
        self, channel_index: int, lo: int, hi: int
    ) -> Iterator[ViaPoint]:
        """Via sites covered by ``[lo, hi]`` of the given channel.

        Pure grid arithmetic: on a via channel every ``grid_per_via``-th
        coordinate is a site, and the via cell indices are the integer
        quotients — no per-site grid-point round trip.  This runs on
        every *Vias* search gap, so the per-site cost matters.
        """
        g = self.grid.grid_per_via
        if channel_index % g:
            return
        v_channel = channel_index // g
        v_lo = (lo + g - 1) // g  # first site at or after lo
        v_hi = hi // g  # last site at or before hi
        if self.orientation is Orientation.HORIZONTAL:
            for v in range(v_lo, v_hi + 1):
                yield ViaPoint(v, v_channel)
        else:
            for v in range(v_lo, v_hi + 1):
                yield ViaPoint(v_channel, v)

    # ------------------------------------------------------------------
    # channel access
    # ------------------------------------------------------------------

    def channel(self, channel_index: int) -> Channel:
        """The channel at the given index."""
        return self.channels[channel_index]

    def owner_at(self, point: GridPoint) -> Optional[int]:
        """Owner of the segment covering ``point``, or None if free."""
        c, x = self.point_cc(point)
        return self.channels[c].owner_at(x)

    def is_point_free(
        self, point: GridPoint, passable: FrozenSet[int] = frozenset()
    ) -> bool:
        """True if ``point`` is free or covered only by passable owners."""
        owner = self.owner_at(point)
        return owner is None or owner in passable

    def used_cells(self) -> int:
        """Total grid cells covered by segments (density metric)."""
        return sum(
            seg.length for channel in self.channels for seg in channel
        )
