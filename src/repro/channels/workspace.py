"""The routing workspace: all signal layers plus the via map, kept coherent.

Every mutation of the board wiring goes through this class so that the via
map stays synchronised with the channels (the paper's critical consistency
requirement), and so that each connection's occupancy is recorded for
rip-up, putback and length tuning.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Set, Tuple

from repro.board.board import Board
from repro.channels.channel import Channel, ChannelConflictError
from repro.channels.layer_data import ChannelPiece, LayerData
from repro.channels.segment import FILL_OWNER
from repro.channels.via_map import ViaMap
from repro.grid.coords import GridPoint, ViaPoint
from repro.grid.geometry import Box

#: One installed segment: (layer_index, channel_index, lo, hi).
InstalledSegment = Tuple[int, int, int, int]


@dataclass
class RouteLink:
    """One single-layer stretch of a routed connection (between two vias)."""

    layer_index: int
    a: GridPoint
    b: GridPoint
    pieces: List[ChannelPiece]

    @property
    def wire_length(self) -> int:
        """Trace length in routing-grid units (cells spanned minus one)."""
        along = sum(hi - lo for _, lo, hi in self.pieces)
        across = max(len(self.pieces) - 1, 0)
        return along + across


@dataclass
class RouteRecord:
    """Everything a routed connection occupies, for exact removal/putback."""

    conn_id: int
    links: List[RouteLink] = field(default_factory=list)
    vias: List[ViaPoint] = field(default_factory=list)
    segments: List[InstalledSegment] = field(default_factory=list)

    @property
    def via_count(self) -> int:
        """Vias added by this connection (pins are not counted)."""
        return len(self.vias)

    @property
    def wire_length(self) -> int:
        """Total trace length in routing-grid units."""
        return sum(link.wire_length for link in self.links)


@dataclass
class FillRecord:
    """Tesselation filler occupancy, for exact unfilling (Section 10.2)."""

    segments: List[InstalledSegment] = field(default_factory=list)


class RoutingWorkspace:
    """Mutable wiring state for one board."""

    def __init__(
        self,
        board: Board,
        channel_factory: Callable[[], Channel] = Channel,
        install_pins: bool = True,
        gap_cache: bool = True,
    ) -> None:
        self.board = board
        self.grid = board.grid
        self.layers: List[LayerData] = [
            LayerData(layer, board.grid, channel_factory)
            for layer in board.stack.signal_layers
        ]
        if not gap_cache:
            # Ablation/benchmark switch: every gap-list request recomputes
            # (the pre-cache behaviour), so A/B runs share one code path.
            for layer in self.layers:
                layer.gap_cache.enabled = False
        self.via_map = ViaMap(
            board.grid.via_nx, board.grid.via_ny, len(self.layers)
        )
        self.records: Dict[int, RouteRecord] = {}
        #: Lazily-built :class:`repro.core.bounds.LowerBoundCache` (the
        #: import is deferred — repro.core sits above repro.channels).
        self._lower_bounds = None
        #: Active delta recorder (see :meth:`begin_delta`); None when the
        #: route-level mutators are not being logged.
        self._delta_log = None
        if install_pins:
            self.install_pins()

    @property
    def n_layers(self) -> int:
        """Number of signal (routing) layers."""
        return len(self.layers)

    # ------------------------------------------------------------------
    # low-level coherent mutations
    # ------------------------------------------------------------------

    def add_segment(
        self,
        layer_index: int,
        channel_index: int,
        lo: int,
        hi: int,
        owner: int,
        passable: FrozenSet[int] = frozenset(),
    ) -> List[InstalledSegment]:
        """Insert a segment, updating the via map; returns installed pieces."""
        layer = self.layers[layer_index]
        if not 0 <= channel_index < layer.n_channels:
            raise ValueError(
                f"channel {channel_index} outside layer {layer_index}"
            )
        if lo < 0 or hi >= layer.channel_length:
            raise ValueError(
                f"segment [{lo},{hi}] outside channel of length "
                f"{layer.channel_length}"
            )
        pieces = layer.channel(channel_index).add(lo, hi, owner, passable)
        installed = []
        for plo, phi in pieces:
            for via in layer.via_sites_in(channel_index, plo, phi):
                self.via_map.add_cover(via, owner)
            installed.append((layer_index, channel_index, plo, phi))
        return installed

    def remove_segment(
        self, layer_index: int, channel_index: int, lo: int, hi: int, owner: int
    ) -> None:
        """Remove an exact previously installed segment."""
        layer = self.layers[layer_index]
        layer.channel(channel_index).remove(lo, hi, owner)
        for via in layer.via_sites_in(channel_index, lo, hi):
            self.via_map.remove_cover(via, owner, self.owners_covering)

    def owners_covering(self, via: ViaPoint) -> Set[int]:
        """Owners of all layer segments covering a via site (map rescan)."""
        point = self.grid.via_to_grid(via)
        owners = set()
        for layer in self.layers:
            owner = layer.owner_at(point)
            if owner is not None:
                owners.add(owner)
        return owners

    def drill_via(self, via: ViaPoint, owner: int) -> List[InstalledSegment]:
        """Drill a via: unit segments on every layer plus the drill record.

        A drill hole makes a potential connection to all layers, so the site
        must be coverable on every layer (Section 4).
        """
        point = self.grid.via_to_grid(via)
        installed: List[InstalledSegment] = []
        try:
            for layer_index, layer in enumerate(self.layers):
                c, x = layer.point_cc(point)
                installed.extend(
                    self.add_segment(layer_index, c, x, x, owner)
                )
        except ChannelConflictError:
            for seg in installed:
                self.remove_segment(*seg, owner=owner)
            raise
        self.via_map.drill(via, owner)
        return installed

    def remove_via(self, via: ViaPoint, owner: int) -> None:
        """Remove a drilled via and its per-layer unit segments."""
        self.via_map.undrill(via, owner)
        point = self.grid.via_to_grid(via)
        for layer_index, layer in enumerate(self.layers):
            c, x = layer.point_cc(point)
            if layer.channel(c).owner_at(x) == owner:
                # The unit cell may have been absorbed into a same-owner
                # trace piece; only remove exact unit segments.
                try:
                    self.remove_segment(layer_index, c, x, x, owner)
                except KeyError:
                    pass

    def install_pins(self) -> None:
        """Drill every part pin: pins connect to all routing layers."""
        for pin in self.board.pins:
            self.drill_via(pin.position, pin.owner_token)

    def drill_pin(self, via: ViaPoint, owner: int) -> None:
        """Drill one pin site, logging it into any active delta.

        The ECO path (:mod:`repro.eco`) moves pins between routing
        calls; unlike :meth:`install_pins` (which runs before any delta
        recording exists) the change must reach a kept worker pool's
        replicas, so it rides the delta log as an explicit op.
        """
        self.drill_via(via, owner)
        if self._delta_log is not None:
            self._delta_log.record_drill(via, owner)

    def undrill_pin(self, via: ViaPoint, owner: int) -> None:
        """Remove one pin site's via, logging it into any active delta."""
        self.remove_via(via, owner)
        if self._delta_log is not None:
            self._delta_log.record_undrill(via, owner)

    def note_pin_moved(self, pin_id: int, position: ViaPoint) -> None:
        """Log a pin's board-side relocation into any active delta.

        The board itself was already updated by
        :meth:`Board.move_part`; this only records the fact so replicas
        replaying the delta keep their own ``Board`` consistent with
        the drilled vias (the auditor reconciles the two).
        """
        if self._delta_log is not None:
            self._delta_log.record_move_pin(pin_id, position)

    # ------------------------------------------------------------------
    # route-level operations
    # ------------------------------------------------------------------

    def route_builder(
        self, conn_id: int, passable: FrozenSet[int] = frozenset()
    ) -> "RouteBuilder":
        """Start building (or extending) a route for a connection."""
        return RouteBuilder(self, conn_id, passable)

    def commit_record(self, record: RouteRecord) -> None:
        """Register a finished route (called by the builder)."""
        if record.conn_id in self.records:
            raise ValueError(f"connection {record.conn_id} already routed")
        self.records[record.conn_id] = record
        if self._delta_log is not None:
            self._delta_log.record_add(record)

    def is_routed(self, conn_id: int) -> bool:
        """True if the connection currently has an installed route."""
        return conn_id in self.records

    def remove_connection(self, conn_id: int) -> RouteRecord:
        """Rip up a routed connection; returns its record for putback."""
        record = self.records.pop(conn_id)
        for seg in record.segments:
            self.remove_segment(*seg, owner=conn_id)
        for via in record.vias:
            if self.via_map.drilled_owner(via) == conn_id:
                self.via_map.undrill(via, conn_id)
        if self._delta_log is not None:
            self._delta_log.record_remove(conn_id)
        return record

    def restore_record(self, record: RouteRecord) -> bool:
        """Try to put a ripped-up route back exactly where it was.

        Section 8.3: "an attempt is made to put the ripped-up connections
        back exactly where they were.  Most can be re-inserted."  Returns
        False (leaving the workspace untouched) if anything now blocks it.
        """
        conn = record.conn_id
        for layer_index, channel_index, lo, hi in record.segments:
            channel = self.layers[layer_index].channel(channel_index)
            if not channel.is_free(lo, hi, frozenset((conn,))):
                return False
        for via in record.vias:
            if self.via_map.is_drilled(via):
                return False
        for layer_index, channel_index, lo, hi in record.segments:
            self.add_segment(layer_index, channel_index, lo, hi, conn)
        for via in record.vias:
            self.via_map.drill(via, conn)
        self.commit_record(record)
        return True

    # ------------------------------------------------------------------
    # snapshot / merge (parallel wave routing)
    # ------------------------------------------------------------------

    def snapshot(self) -> "RoutingWorkspace":
        """An independent deep copy of the whole workspace.

        Parallel workers route against a snapshot while the master stays
        untouched; their :class:`RouteRecord` results are merged back with
        :meth:`apply_record`.  The copy is made with pickle (everything the
        workspace holds is plain data), so it is also exactly what a
        ``spawn``-based worker receives on the wire.  Fork-based pools get
        the copy for free from the OS and never call this.

        Channel generations are carried verbatim while the per-layer
        :class:`~repro.channels.gap_cache.GapCache` entries are reset by
        unpickling — the copy starts cold but coherent, and its own
        mutations bump its own generations independently of the master's.
        """
        return pickle.loads(pickle.dumps(self, pickle.HIGHEST_PROTOCOL))

    # ------------------------------------------------------------------
    # incremental deltas (persistent pool synchronization)
    # ------------------------------------------------------------------

    def begin_delta(self) -> None:
        """Start logging route-level mutations into a fresh delta.

        Every :meth:`commit_record` and :meth:`remove_connection` until
        the matching :meth:`end_delta` is appended, in order, to the
        delta — the wave merge and the serial residue both mutate routes
        exclusively through those two methods, so the log is exact.
        Recording is not reentrant; a second ``begin_delta`` while one is
        open is a protocol bug and raises.
        """
        from repro.channels.delta import WorkspaceDelta

        if self._delta_log is not None:
            raise RuntimeError("delta recording already active")
        self._delta_log = WorkspaceDelta()

    def end_delta(self):
        """Stop logging and return the recorded :class:`WorkspaceDelta`."""
        if self._delta_log is None:
            raise RuntimeError("no delta recording active")
        delta, self._delta_log = self._delta_log, None
        return delta

    @property
    def delta_active(self) -> bool:
        """True while route-level mutations are being logged."""
        return self._delta_log is not None

    def drain_delta(self):
        """Return the ops recorded so far and keep recording.

        The ECO session keeps one *continuous* recording open across
        mutations and reroutes; each pool synchronization point drains
        the log (ops since the previous drain) without closing it, so
        no mutation can ever fall between two recording windows.
        """
        from repro.channels.delta import WorkspaceDelta

        if self._delta_log is None:
            raise RuntimeError("no delta recording active")
        delta, self._delta_log = self._delta_log, WorkspaceDelta()
        return delta

    def apply_delta(self, delta) -> None:
        """Replay a delta recorded on another workspace copy.

        The ops replay in recorded order through the same primitives
        routing uses, so generations bump exactly as on the source and
        warm :class:`~repro.channels.gap_cache.GapCache` entries of
        untouched channels stay valid.  The target must be at the sync
        state the delta was recorded against; any op that does not apply
        cleanly raises :class:`~repro.channels.delta.DeltaConflictError`
        (state divergence is a protocol bug, not a routing condition).
        """
        from repro.channels.delta import (
            OP_ADD,
            OP_DRILL,
            OP_MOVE_PIN,
            OP_REMOVE,
            OP_UNDRILL,
            DeltaConflictError,
        )

        for op, payload in delta.ops:
            if op == OP_ADD:
                if payload.conn_id in self.records:
                    raise DeltaConflictError(
                        f"delta add of already-routed connection "
                        f"{payload.conn_id}"
                    )
                if not self.restore_record(payload):
                    raise DeltaConflictError(
                        f"delta add of connection {payload.conn_id} "
                        "collides with existing state"
                    )
            elif op == OP_REMOVE:
                if payload not in self.records:
                    raise DeltaConflictError(
                        f"delta remove of unrouted connection {payload}"
                    )
                self.remove_connection(payload)
            elif op == OP_DRILL:
                via, owner = payload
                try:
                    self.drill_via(via, owner)
                except (ChannelConflictError, ValueError) as exc:
                    raise DeltaConflictError(
                        f"delta drill at {via} does not apply: {exc}"
                    ) from exc
            elif op == OP_UNDRILL:
                via, owner = payload
                try:
                    self.remove_via(via, owner)
                except ValueError as exc:
                    raise DeltaConflictError(
                        f"delta undrill at {via} does not apply: {exc}"
                    ) from exc
            elif op == OP_MOVE_PIN:
                pin_id, via = payload
                try:
                    self.board.relocate_pin(pin_id, via)
                except (IndexError, KeyError) as exc:
                    raise DeltaConflictError(
                        f"delta pin move of {pin_id} does not apply: {exc}"
                    ) from exc
            else:
                raise DeltaConflictError(f"unknown delta op {op!r}")

    def __getstate__(self):
        """Pickle everything except an active delta log.

        Snapshots and spawn payloads must never carry a half-recorded
        delta: the copy starts its own synchronization epoch.
        """
        state = self.__dict__.copy()
        state["_delta_log"] = None
        return state

    def apply_record(self, record: RouteRecord) -> bool:
        """Merge a route produced against a snapshot into this workspace.

        Deterministic conflict detection for wave merging: the record is
        installed if and only if every segment and via it claims is still
        free here; otherwise the workspace is left untouched and False is
        returned (the caller demotes the connection to a later wave).  A
        connection that is already routed is a conflict by definition.
        """
        if record.conn_id in self.records:
            return False
        return self.restore_record(record)

    def canonical_state(self) -> Tuple:
        """Order-independent value equal for equal wiring states.

        Two workspaces that hold the same installed segments, drilled vias
        and route records compare equal regardless of the order mutations
        were applied in — the merge tests use this to check that snapshot →
        route → merge leaves the master identical to routing serially.
        """
        layers = tuple(
            tuple(
                sorted(
                    (ci, seg.lo, seg.hi, seg.owner)
                    for ci, channel in enumerate(layer.channels)
                    for seg in channel
                )
            )
            for layer in self.layers
        )
        vias = tuple(sorted(self.via_map.drilled_sites().items()))
        records = tuple(
            sorted(
                (
                    conn_id,
                    tuple(sorted(rec.segments)),
                    tuple(sorted(rec.vias)),
                )
                for conn_id, rec in self.records.items()
            )
        )
        return (layers, vias, records)

    def state_digest(self) -> str:
        """Stable hex digest of :meth:`canonical_state` (for artifacts)."""
        return hashlib.sha256(
            repr(self.canonical_state()).encode()
        ).hexdigest()

    # ------------------------------------------------------------------
    # tesselation fill (Section 10.2)
    # ------------------------------------------------------------------

    def fill_free_space(self, layer_index: int, box: Box) -> FillRecord:
        """Block all free space of a layer region with filler segments."""
        layer = self.layers[layer_index]
        c_lo, c_hi, lo, hi = layer.box_cc(box.clipped_to(self.grid.bounds))
        record = FillRecord()
        if c_hi < c_lo or hi < lo:
            return record
        for c in range(max(c_lo, 0), min(c_hi, layer.n_channels - 1) + 1):
            for glo, ghi in layer.channel(c).free_gaps(lo, hi):
                record.segments.extend(
                    self.add_segment(layer_index, c, glo, ghi, FILL_OWNER)
                )
        return record

    def unfill(self, record: FillRecord) -> None:
        """Remove previously added filler segments."""
        for seg in record.segments:
            self.remove_segment(*seg, owner=FILL_OWNER)

    # ------------------------------------------------------------------
    # audit accessors (read-only views for repro.obs.audit)
    # ------------------------------------------------------------------

    def iter_installed_segments(self):
        """Every installed segment: yields (layer_index, channel_index, seg).

        The flat enumeration the :class:`repro.obs.audit.WorkspaceAuditor`
        reconciles against route records; includes pin and fill segments.
        """
        for layer_index, layer in enumerate(self.layers):
            for channel_index, channel in enumerate(layer.channels):
                for seg in channel:
                    yield layer_index, channel_index, seg

    def set_backend(self, backend: str) -> None:
        """Select the resolved search backend for every layer.

        ``backend`` must already be resolved ("python" or "numpy" — see
        :func:`repro.core.fastpath.resolve_backend`); the single-layer
        searches dispatch on ``layer.backend`` at every call.  The
        selection pickles with the layers, so snapshots, forked workers
        and delta-synced pools inherit it without extra plumbing.
        """
        if backend not in ("python", "numpy"):
            raise ValueError(
                f"set_backend wants a resolved backend, got {backend!r}"
            )
        for layer in self.layers:
            layer.backend = backend

    @property
    def backend(self) -> str:
        """The resolved backend the layers are currently dispatching on."""
        return self.layers[0].backend if self.layers else "python"

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    def gap_cache_stats(self) -> Tuple[int, int, int]:
        """Aggregate (hits, misses, bypassed) over every layer's cache."""
        hits = sum(layer.gap_cache.hits for layer in self.layers)
        misses = sum(layer.gap_cache.misses for layer in self.layers)
        bypassed = sum(layer.gap_cache.bypassed for layer in self.layers)
        return hits, misses, bypassed

    @property
    def lower_bounds(self):
        """The goal-mode lower-bound cache, built on first use.

        Shares the workspace's lifetime the way the per-layer gap caches
        do: snapshots carry it (cold — entries are dropped in pickling,
        and rebuilt values are pure functions of board state, so warm
        and cold replicas can never disagree), and ECO edits or delta
        replays invalidate entries purely through the via map's row and
        column generation stamps.
        """
        if self._lower_bounds is None:
            from repro.core.bounds import LowerBoundCache

            self._lower_bounds = LowerBoundCache(self)
        return self._lower_bounds

    def bounds_stats(self) -> Tuple[int, int]:
        """(hits, rebuilds) of the lower-bound cache; zeros when unused."""
        if self._lower_bounds is None:
            return (0, 0)
        return self._lower_bounds.stats()

    def used_cells(self) -> int:
        """Grid cells covered by segments over all layers."""
        return sum(layer.used_cells() for layer in self.layers)

    def channel_supply(self) -> int:
        """Total routable channel space over all layers, in grid cells."""
        return sum(
            layer.n_channels * layer.channel_length for layer in self.layers
        )


class RouteBuilder:
    """Incrementally install a route with rollback on failure.

    The Lee retrace installs hop by hop (later hops must see earlier hops'
    segments as passable); if any hop fails the whole attempt is aborted.
    """

    def __init__(
        self,
        workspace: RoutingWorkspace,
        conn_id: int,
        passable: FrozenSet[int] = frozenset(),
    ) -> None:
        self.workspace = workspace
        self.conn_id = conn_id
        self.passable = passable
        self.record = RouteRecord(conn_id=conn_id)
        self._committed = False

    def add_link(
        self,
        layer_index: int,
        a: GridPoint,
        b: GridPoint,
        pieces: List[ChannelPiece],
    ) -> None:
        """Install the channel pieces of one single-layer link."""
        link = RouteLink(layer_index=layer_index, a=a, b=b, pieces=pieces)
        for channel_index, lo, hi in pieces:
            self.record.segments.extend(
                self.workspace.add_segment(
                    layer_index,
                    channel_index,
                    lo,
                    hi,
                    self.conn_id,
                    self.passable,
                )
            )
        self.record.links.append(link)

    def drill(self, via: ViaPoint) -> None:
        """Drill an intermediate via (reusing one we already own is a no-op)."""
        if self.workspace.via_map.drilled_owner(via) == self.conn_id:
            return
        self.record.segments.extend(
            self.workspace.drill_via(via, self.conn_id)
        )
        self.record.vias.append(via)

    def commit(self) -> RouteRecord:
        """Finish the route and register it with the workspace."""
        self.workspace.commit_record(self.record)
        self._committed = True
        return self.record

    def abort(self) -> None:
        """Roll back everything installed so far."""
        if self._committed:
            raise RuntimeError("route already committed")
        for seg in self.record.segments:
            self.workspace.remove_segment(*seg, owner=self.conn_id)
        for via in self.record.vias:
            if self.workspace.via_map.drilled_owner(via) == self.conn_id:
                self.workspace.via_map.undrill(via, self.conn_id)
        self.record = RouteRecord(conn_id=self.conn_id)
