"""Generation-stamped free-gap cache shared across searches.

Section 7's three single-layer searches (*Trace*, *Vias*, *Obstructions*)
all walk the same derived view — per-channel lists of maximal free gaps —
and the Lee loop issues hundreds of such probes between consecutive board
mutations.  Recomputing every channel's gap list per search (what the
per-search ``_FreeSpace`` memo used to do) therefore repeats identical
work hundreds of times.

The cache memoizes, per channel:

* a **base** full-span gap list (``passable`` ignored).  A probe whose
  passable set is disjoint from the owners present in the channel gets
  the *same* gap list a passable-aware recompute would produce (an O(1)
  owner-count probe on the channel decides this), so one base entry
  serves every connection — the common case, since a connection's own
  segments and pins live in a handful of channels;
* **passable-specific** full-span lists for the channels that do contain
  a passable owner's segments; and
* the **box-clipped** lists derived from either — a bisect-bounded slice
  with the two end gaps clamped, O(log gaps + answer) instead of an
  O(overlap) segment walk.

Full-span views are built lazily, on the *second* distinct box probed
per generation: the first probe after a mutation is served by a direct
box-limited recompute (exactly what an uncached router would do) and
only repeat traffic pays for — and then amortizes — the full-span
build.  Channels probed once between mutations therefore cost the same
as with no cache at all, while the hot channels of a Lee search get the
full memoized treatment.

Every entry is stamped with the channel's ``generation`` (a monotonic
counter bumped by ``Channel.add``/``remove``); a lookup that finds a
stale stamp discards that channel's entries and recomputes.  Because all
workspace mutations funnel through add/remove, explicit invalidation
calls are unnecessary and a stale read is structurally impossible — the
property the hypothesis suite and the :class:`~repro.obs.audit.
WorkspaceAuditor` (run under ``GRR_AUDIT=1``) both verify.

Snapshots (:meth:`RoutingWorkspace.snapshot`, used by parallel wave
workers) carry the generations with the channels but *reset* the cache:
entries are cheap to rebuild and shipping them to spawn-based workers
would be pure pickling overhead.  Forked workers inherit the parent's
warm cache copy-on-write, which stays coherent for the same reason the
parent's does — the generations travel with the channels.  The same
generation stamping is what lets pool workers keep their warm entries
across :meth:`RoutingWorkspace.apply_delta`: a delta bumps exactly the
generations of the channels it touches, so untouched channels keep
serving cached lists while touched ones recompute on first probe.

**Small channels are not memoized.**  Most channels on small boards hold
only a handful of segments, and recomputing their gap list directly from
the segment arrays is cheaper than the memo-key build, store lookups and
entry bookkeeping — especially under active routing, where every
mutation bumps the generation and throws the entry away anyway.  Probes
of channels at or below :data:`SMALL_CHANNEL_SEGMENTS` segments
therefore bypass the memo entirely (counted in ``bypassed``, neither a
hit nor a miss, so the hit *rate* keeps describing the memoized
traffic).  The threshold is an instance knob (``bypass_threshold``) so
ablation runs and unit tests can force either path.

**The cache also judges itself.**  The bypass threshold protects small
channels, but some boards defeat the memo at *any* channel size: when
routing mutates a channel between almost every pair of probes, entries
die before they earn a hit and every probe pays the miss-path
bookkeeping on top of the recompute it would have done anyway.  Channel
size cannot see this — it is a property of the probe/mutation rhythm,
not of the board — so each layer's cache starts on **probation**: for
its first :data:`ADAPTIVE_WARMUP_PROBES` memoized probes it never
builds a full-span view, only stores the boxed recomputes it had to do
anyway (a miss costs one dict insert more than an uncached probe), and
tallies how often an identical probe repeats within a generation.  At
the end of probation the tally is the verdict: a repeat fraction below
:data:`ADAPTIVE_MIN_HIT_RATE` flips the layer to whole-layer bypass for
the rest of the run; at or above it the layer graduates to the full
memo, promotion included.  Layers whose whole run ends inside probation
simply never pay for machinery they could not have amortized.  The
decision depends only on the (deterministic) probe stream, never on
timing, so routed results are unaffected and runs stay reproducible.
Measured on the Table 1 suite this bar cleanly separates the boards:
kdj11_2l layers repeat 30-37% of probes inside probation and graduate
(71-73% exact repeats by end of run), while every small-board layer
sits at 0-11% and sheds the memo — or finishes before the verdict,
having paid almost nothing.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Tuple

from repro.core.fastpath import MIN_VECTOR_SEGMENTS, free_gaps_vectorized

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.channels.layer_data import LayerData

#: One cached full-span view: (gap list, their lo bounds, their hi bounds).
_FullEntry = Tuple[List[Tuple[int, int]], List[int], List[int]]

#: Passable-specific full-span variants kept per channel (only channels
#: actually containing a passable owner's segments need one); exceeding
#: it clears the channel's passable store.  Searches for one connection
#: share a single passable set, so a handful covers the working set.
MAX_FULL_VARIANTS = 8

#: Distinct box-clipped lists kept per channel between mutations.
MAX_CLIPPED = 64

#: Entry slots: [generation, base full-span (None until promoted),
#: base clip store, passable full-span store, passable clip store].
_GEN, _BASE, _BASE_CLIPS, _PASS_FULLS, _PASS_CLIPS = range(5)

#: ``_PASS_FULLS`` marker: this passable set was probed once this
#: generation but its full-span view has not been built yet.
_PROBED_ONCE = False

#: Channels holding at most this many segments skip memoization: a
#: direct recompute beats the memo machinery below this size (measured
#: on the Table 1 small boards, where the pre-threshold cache *lost*
#: 10-25% of wall time to entry churn).
SMALL_CHANNEL_SEGMENTS = 16

#: Memoized probes each layer's cache stays on probation (boxed-only
#: stores, no full-span promotion) before judging itself — see the
#: module docstring.  Large enough that a congested board's layers can
#: demonstrate reuse, small enough that the verdict lands while most of
#: the run is still ahead.
ADAPTIVE_WARMUP_PROBES = 256

#: Exact-repeat fraction probation must reach; below it the layer flips
#: to whole-layer bypass for the rest of the run.  Measured margins on
#: the Table 1 suite: graduating layers (kdj11_2l) sit at 0.30-0.37 by
#: the verdict, every losing layer at or below 0.11.
ADAPTIVE_MIN_HIT_RATE = 0.20

#: ``bypass_threshold`` sentinel larger than any possible segment count:
#: every probe takes the bypass path.
_BYPASS_ALL = 1 << 30

class GapCache:
    """Memoized ``(channel, box-clip, passable) -> gap list`` per layer.

    One instance lives on each :class:`~repro.channels.layer_data.
    LayerData` and persists across searches; ``_FreeSpace`` delegates its
    gap-list fills here.  ``hits``/``misses`` count gap-list requests
    served without / with a fresh ``free_gaps`` recompute — including
    the per-search view's repeat serves, which credit ``hits`` directly,
    so the counters describe every request the searches make of the
    gap-serving subsystem.  ``bypassed`` counts small-channel requests
    that skipped memoization entirely (see the module docstring); they
    are requests but neither hits nor misses, so :attr:`hit_rate` keeps
    describing how well the memo serves the traffic it accepts.
    """

    __slots__ = (
        "layer",
        "enabled",
        "bypass_threshold",
        "hits",
        "misses",
        "bypassed",
        "_entries",
        "_probe_hits",
        "_probe_total",
    )

    def __init__(self, layer: "LayerData", enabled: bool = True) -> None:
        self.layer = layer
        self.enabled = enabled
        #: Channels with at most this many segments skip memoization;
        #: 0 memoizes everything (the pre-threshold behaviour).
        self.bypass_threshold = SMALL_CHANNEL_SEGMENTS
        self.hits = 0
        self.misses = 0
        self.bypassed = 0
        #: channel_index -> entry list (see the slot constants above);
        #: also holds the full-span views :meth:`full_bounds` serves to
        #: the fastpath kernels.
        self._entries: Dict[int, list] = {}
        # Store-level warmup tallies for the self-judgment (module
        # docstring); unlike ``hits``, ``_probe_hits`` excludes the
        # per-search view's repeat credits.
        self._probe_hits = 0
        self._probe_total = 0

    def gaps(
        self,
        channel_index: int,
        lo: int,
        hi: int,
        passable: FrozenSet[int],
    ) -> List[Tuple[int, int]]:
        """Free gaps of one channel clipped to ``[lo, hi]`` (memoized).

        Equal to ``channel.free_gaps(lo, hi, passable)`` always; callers
        must treat the returned list as immutable (it is shared).
        """
        channel = self.layer.channels[channel_index]
        if not self.enabled:
            self.misses += 1
            return channel.free_gaps(lo, hi, passable)
        if len(channel) <= self.bypass_threshold:
            # Small channel: a direct recompute from the segment arrays
            # beats the memo machinery (see the module docstring).
            self.bypassed += 1
            return channel.free_gaps(lo, hi, passable)
        probes = self._probe_total
        probation = probes <= ADAPTIVE_WARMUP_PROBES
        if probation:
            if (
                probes == ADAPTIVE_WARMUP_PROBES
                and self._probe_hits < ADAPTIVE_MIN_HIT_RATE * probes
            ):
                # Verdict: this layer mutates faster than probes repeat,
                # so entries die before they earn hits and the memo is a
                # pure bookkeeping tax.  Bypass everything from here on.
                self.bypass_threshold = _BYPASS_ALL
                self.bypassed += 1
                return channel.free_gaps(lo, hi, passable)
            self._probe_total = probes + 1
        generation = channel.generation
        entry = self._entries.get(channel_index)
        if entry is None:
            entry = [generation, None, {}, {}, {}]
            self._entries[channel_index] = entry
        elif entry[_GEN] != generation:
            # Reuse the stale entry in place: clearing the stores is
            # cheaper than reallocating the list and three dicts on
            # every mutation of a hot channel.
            entry[_GEN] = generation
            entry[_BASE] = None
            entry[_BASE_CLIPS].clear()
            if entry[_PASS_FULLS]:
                entry[_PASS_FULLS].clear()
            if entry[_PASS_CLIPS]:
                entry[_PASS_CLIPS].clear()
        span_hi = self.layer.channel_length - 1
        if not passable or not channel.has_any_owner(passable):
            # No passable owner has segments here: the passable-blind
            # base view is exact for this probe, so one base entry
            # serves every connection.  The memo key packs (lo, hi)
            # into one int — cheaper to hash than a tuple.
            clipped_store = entry[_BASE_CLIPS]
            key = lo * (span_hi + 1) + hi
            clipped = clipped_store.get(key)
            if clipped is not None:
                self.hits += 1
                self._probe_hits += 1
                return clipped
            full = entry[_BASE]
            if full is None:
                self.misses += 1
                if probation or (not clipped_store and key != span_hi):
                    # First box this generation: a direct box recompute
                    # is what an uncached probe would cost; promote to a
                    # full-span view only on a second distinct box —
                    # and never while on probation, whose misses must
                    # cost no more than an uncached probe.
                    gaps = self._base_gaps(channel, lo, hi)
                    if len(clipped_store) >= MAX_CLIPPED:
                        clipped_store.clear()
                    clipped_store[key] = gaps
                    return gaps
                gaps = self._base_gaps(channel, 0, span_hi)
                full = (gaps, [g[0] for g in gaps], [g[1] for g in gaps])
                entry[_BASE] = full
            else:
                self.hits += 1
                self._probe_hits += 1
        else:
            full_store: Dict[FrozenSet[int], object] = entry[_PASS_FULLS]
            clipped_store = entry[_PASS_CLIPS]
            key = (lo, hi, passable)
            clipped = clipped_store.get(key)
            if clipped is not None:
                self.hits += 1
                self._probe_hits += 1
                return clipped
            full = full_store.get(passable)
            if full is None or full is _PROBED_ONCE:
                self.misses += 1
                if len(full_store) >= MAX_FULL_VARIANTS:
                    full_store.clear()
                    clipped_store.clear()
                if probation or (
                    full is None and (lo, hi) != (0, span_hi)
                ):
                    # Same promote-on-reuse rule, tracked per passable
                    # set via the _PROBED_ONCE marker; probation stays
                    # boxed-only but still leaves the marker so reuse
                    # evidence survives graduation.
                    if full is None:
                        full_store[passable] = _PROBED_ONCE
                    gaps = channel.free_gaps(lo, hi, passable)
                    if len(clipped_store) >= MAX_CLIPPED:
                        clipped_store.clear()
                    clipped_store[key] = gaps
                    return gaps
                gaps = channel.free_gaps(0, span_hi, passable)
                full = (gaps, [g[0] for g in gaps], [g[1] for g in gaps])
                full_store[passable] = full
            else:
                self.hits += 1
                self._probe_hits += 1
        clipped = self._clip(full, lo, hi)
        if len(clipped_store) >= MAX_CLIPPED:
            clipped_store.clear()
        clipped_store[key] = clipped
        return clipped

    def _base_gaps(
        self, channel, lo: int, hi: int
    ) -> List[Tuple[int, int]]:
        """Passable-blind recompute, vectorized on the numpy backend.

        The base-entry recomputes are the hot ``free_gaps`` traffic; on
        large channels the numpy kernel turns the O(overlap) segment
        walk into two ``searchsorted`` calls plus array arithmetic.
        Small channels keep the python walk — the array-view build
        would cost more than it saves (see
        :data:`repro.core.fastpath.MIN_VECTOR_SEGMENTS`).
        """
        if (
            self.layer.backend != "python"
            and len(channel) >= MIN_VECTOR_SEGMENTS
        ):
            return free_gaps_vectorized(channel, lo, hi)
        return channel.free_gaps(lo, hi)

    def full_bounds(
        self, channel_index: int, passable: FrozenSet[int]
    ) -> Tuple[List[Tuple[int, int]], List[int], List[int]]:
        """Full-span ``(gaps, los, his)`` view of one channel (fastpath).

        The numpy kernels traverse whole-channel gap arrays and clamp
        extents to the search box on the fly, so a single full-span
        view per ``(channel, passable)`` serves *every* box between
        mutations — no per-box clip lists on the fast path.  The views
        are the same full-span entries :meth:`gaps` promotes into,
        under the same generation stamping.

        Unlike :meth:`gaps` this ignores both the adaptive bypass
        verdict *and* the static small-channel cutoff: those judge
        boxed-store churn (entries keyed by box die when boxes vary, and
        clipping a small list is nearly free), while full views are
        insensitive to box variation and only die on actual mutations —
        caching them is a win at every channel size.  Only ``enabled``
        is honored.  Returned lists are shared — treat them as
        immutable.
        """
        if not self.enabled:
            self.misses += 1
            channel = self.layer.channels[channel_index]
            gaps = channel.free_gaps(
                0, self.layer.channel_length - 1, passable
            )
            return (gaps, [g[0] for g in gaps], [g[1] for g in gaps])
        channel = self.layer.channels[channel_index]
        generation = channel.generation
        entry = self._entries.get(channel_index)
        if entry is None:
            entry = [generation, None, {}, {}, {}]
            self._entries[channel_index] = entry
        elif entry[_GEN] != generation:
            entry[_GEN] = generation
            entry[_BASE] = None
            entry[_BASE_CLIPS].clear()
            if entry[_PASS_FULLS]:
                entry[_PASS_FULLS].clear()
            if entry[_PASS_CLIPS]:
                entry[_PASS_CLIPS].clear()
        if not passable:
            full = entry[_BASE]
            if full is None:
                self.misses += 1
                gaps = self._base_gaps(
                    channel, 0, self.layer.channel_length - 1
                )
                full = (gaps, [g[0] for g in gaps], [g[1] for g in gaps])
                entry[_BASE] = full
            else:
                self.hits += 1
            return full
        full_store = entry[_PASS_FULLS]
        full = full_store.get(passable)
        if full is not None and full is not _PROBED_ONCE:
            self.hits += 1
            return full
        # Miss.  When the passable set owns nothing in this channel its
        # view IS the base view; an alias stored under the passable key
        # lets every later hit skip the ``has_any_owner`` scan.  Stale
        # aliases cannot survive: the generation bump above clears the
        # base and the store together.
        if len(full_store) >= MAX_FULL_VARIANTS:
            full_store.clear()
            entry[_PASS_CLIPS].clear()
        if not channel.has_any_owner(passable):
            full = entry[_BASE]
            if full is None:
                self.misses += 1
                gaps = self._base_gaps(
                    channel, 0, self.layer.channel_length - 1
                )
                full = (gaps, [g[0] for g in gaps], [g[1] for g in gaps])
                entry[_BASE] = full
            else:
                self.hits += 1
            full_store[passable] = full
            return full
        self.misses += 1
        gaps = channel.free_gaps(
            0, self.layer.channel_length - 1, passable
        )
        full = (gaps, [g[0] for g in gaps], [g[1] for g in gaps])
        full_store[passable] = full
        return full

    @staticmethod
    def _clip(
        full: _FullEntry, lo: int, hi: int
    ) -> List[Tuple[int, int]]:
        """Intersect a full-span gap list with ``[lo, hi]``.

        Freeness is pointwise, so the maximal free intervals of the box
        are exactly the full-span intervals intersected with it.
        """
        gaps, los, his = full
        i = bisect_left(his, lo)
        j = bisect_right(los, hi)
        if i >= j:
            return []
        clipped = gaps[i:j]
        first_lo, first_hi = clipped[0]
        if first_lo < lo:
            clipped[0] = (lo, first_hi)
        last_lo, last_hi = clipped[-1]
        if last_hi > hi:
            clipped[-1] = (last_lo, hi)
        return clipped

    # ------------------------------------------------------------------
    # stats / maintenance
    # ------------------------------------------------------------------

    @property
    def requests(self) -> int:
        """Total gap-list requests served (bypassed ones included)."""
        return self.hits + self.misses + self.bypassed

    @property
    def hit_rate(self) -> float:
        """Fraction of *memoized* requests served without a recompute.

        Bypassed small-channel requests are excluded from the
        denominator: they never consult the memo, so counting them would
        make the rate describe board topology rather than cache quality.
        """
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def graduate(self) -> None:
        """End probation immediately: enable full-span promotion.

        For tests and ablation runs that want the graduated memo
        without driving :data:`ADAPTIVE_WARMUP_PROBES` probes first.
        """
        self._probe_total = ADAPTIVE_WARMUP_PROBES + 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/bypass counters (entries are kept)."""
        self.hits = 0
        self.misses = 0
        self.bypassed = 0

    # ------------------------------------------------------------------
    # pickling: snapshots carry generations, not cache entries
    # ------------------------------------------------------------------

    def __getstate__(self):
        return (self.layer, self.enabled, self.bypass_threshold)

    def __setstate__(self, state) -> None:
        self.layer, self.enabled, self.bypass_threshold = state
        self.hits = 0
        self.misses = 0
        self.bypassed = 0
        self._entries = {}
        # Warmup tallies restart with the entries; a self-bypass verdict
        # already burned into ``bypass_threshold`` travels with it (same
        # board, same probe rhythm).
        self._probe_hits = 0
        self._probe_total = 0
