"""Generation-stamped free-gap cache shared across searches.

Section 7's three single-layer searches (*Trace*, *Vias*, *Obstructions*)
all walk the same derived view — per-channel lists of maximal free gaps —
and the Lee loop issues hundreds of such probes between consecutive board
mutations.  Recomputing every channel's gap list per search (what the
per-search ``_FreeSpace`` memo used to do) therefore repeats identical
work hundreds of times.

The cache memoizes, per channel:

* a **base** full-span gap list (``passable`` ignored).  A probe whose
  passable set is disjoint from the owners present in the channel gets
  the *same* gap list a passable-aware recompute would produce (an O(1)
  owner-count probe on the channel decides this), so one base entry
  serves every connection — the common case, since a connection's own
  segments and pins live in a handful of channels;
* **passable-specific** full-span lists for the channels that do contain
  a passable owner's segments; and
* the **box-clipped** lists derived from either — a bisect-bounded slice
  with the two end gaps clamped, O(log gaps + answer) instead of an
  O(overlap) segment walk.

Full-span views are built lazily, on the *second* distinct box probed
per generation: the first probe after a mutation is served by a direct
box-limited recompute (exactly what an uncached router would do) and
only repeat traffic pays for — and then amortizes — the full-span
build.  Channels probed once between mutations therefore cost the same
as with no cache at all, while the hot channels of a Lee search get the
full memoized treatment.

Every entry is stamped with the channel's ``generation`` (a monotonic
counter bumped by ``Channel.add``/``remove``); a lookup that finds a
stale stamp discards that channel's entries and recomputes.  Because all
workspace mutations funnel through add/remove, explicit invalidation
calls are unnecessary and a stale read is structurally impossible — the
property the hypothesis suite and the :class:`~repro.obs.audit.
WorkspaceAuditor` (run under ``GRR_AUDIT=1``) both verify.

Snapshots (:meth:`RoutingWorkspace.snapshot`, used by parallel wave
workers) carry the generations with the channels but *reset* the cache:
entries are cheap to rebuild and shipping them to spawn-based workers
would be pure pickling overhead.  Forked workers inherit the parent's
warm cache copy-on-write, which stays coherent for the same reason the
parent's does — the generations travel with the channels.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.channels.layer_data import LayerData

#: One cached full-span view: (gap list, their lo bounds, their hi bounds).
_FullEntry = Tuple[List[Tuple[int, int]], List[int], List[int]]

#: Passable-specific full-span variants kept per channel (only channels
#: actually containing a passable owner's segments need one); exceeding
#: it clears the channel's passable store.  Searches for one connection
#: share a single passable set, so a handful covers the working set.
MAX_FULL_VARIANTS = 8

#: Distinct box-clipped lists kept per channel between mutations.
MAX_CLIPPED = 64

#: Entry slots: [generation, base full-span (None until promoted),
#: base clip store, passable full-span store, passable clip store].
_GEN, _BASE, _BASE_CLIPS, _PASS_FULLS, _PASS_CLIPS = range(5)

#: ``_PASS_FULLS`` marker: this passable set was probed once this
#: generation but its full-span view has not been built yet.
_PROBED_ONCE = False


class GapCache:
    """Memoized ``(channel, box-clip, passable) -> gap list`` per layer.

    One instance lives on each :class:`~repro.channels.layer_data.
    LayerData` and persists across searches; ``_FreeSpace`` delegates its
    gap-list fills here.  ``hits``/``misses`` count gap-list requests
    served without / with a fresh ``free_gaps`` recompute — including
    the per-search view's repeat serves, which credit ``hits`` directly,
    so the counters describe every request the searches make of the
    gap-serving subsystem.
    """

    __slots__ = ("layer", "enabled", "hits", "misses", "_entries")

    def __init__(self, layer: "LayerData", enabled: bool = True) -> None:
        self.layer = layer
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        #: channel_index -> entry list (see the slot constants above).
        self._entries: Dict[int, list] = {}

    def gaps(
        self,
        channel_index: int,
        lo: int,
        hi: int,
        passable: FrozenSet[int],
    ) -> List[Tuple[int, int]]:
        """Free gaps of one channel clipped to ``[lo, hi]`` (memoized).

        Equal to ``channel.free_gaps(lo, hi, passable)`` always; callers
        must treat the returned list as immutable (it is shared).
        """
        channel = self.layer.channels[channel_index]
        if not self.enabled:
            self.misses += 1
            return channel.free_gaps(lo, hi, passable)
        generation = channel.generation
        entry = self._entries.get(channel_index)
        if entry is None or entry[_GEN] != generation:
            entry = [generation, None, {}, {}, {}]
            self._entries[channel_index] = entry
        full_span = (0, self.layer.channel_length - 1)
        if not passable or not channel.has_any_owner(passable):
            # No passable owner has segments here: the passable-blind
            # base view is exact for this probe, so one base entry
            # serves every connection.
            clipped_store = entry[_BASE_CLIPS]
            key = (lo, hi)
            clipped = clipped_store.get(key)
            if clipped is not None:
                self.hits += 1
                return clipped
            full = entry[_BASE]
            if full is None:
                self.misses += 1
                if not clipped_store and key != full_span:
                    # First box this generation: a direct box recompute
                    # is what an uncached probe would cost; promote to a
                    # full-span view only on a second distinct box.
                    gaps = channel.free_gaps(lo, hi)
                    clipped_store[key] = gaps
                    return gaps
                gaps = channel.free_gaps(*full_span)
                full = (gaps, [g[0] for g in gaps], [g[1] for g in gaps])
                entry[_BASE] = full
            else:
                self.hits += 1
        else:
            full_store: Dict[FrozenSet[int], object] = entry[_PASS_FULLS]
            clipped_store = entry[_PASS_CLIPS]
            key = (lo, hi, passable)
            clipped = clipped_store.get(key)
            if clipped is not None:
                self.hits += 1
                return clipped
            full = full_store.get(passable)
            if full is None or full is _PROBED_ONCE:
                self.misses += 1
                if len(full_store) >= MAX_FULL_VARIANTS:
                    full_store.clear()
                    clipped_store.clear()
                if full is None and (lo, hi) != full_span:
                    # Same promote-on-reuse rule, tracked per passable
                    # set via the _PROBED_ONCE marker.
                    full_store[passable] = _PROBED_ONCE
                    gaps = channel.free_gaps(lo, hi, passable)
                    if len(clipped_store) >= MAX_CLIPPED:
                        clipped_store.clear()
                    clipped_store[key] = gaps
                    return gaps
                gaps = channel.free_gaps(*full_span, passable)
                full = (gaps, [g[0] for g in gaps], [g[1] for g in gaps])
                full_store[passable] = full
            else:
                self.hits += 1
        clipped = self._clip(full, lo, hi)
        if len(clipped_store) >= MAX_CLIPPED:
            clipped_store.clear()
        clipped_store[key] = clipped
        return clipped

    @staticmethod
    def _clip(
        full: _FullEntry, lo: int, hi: int
    ) -> List[Tuple[int, int]]:
        """Intersect a full-span gap list with ``[lo, hi]``.

        Freeness is pointwise, so the maximal free intervals of the box
        are exactly the full-span intervals intersected with it.
        """
        gaps, los, his = full
        i = bisect_left(his, lo)
        j = bisect_right(los, hi)
        if i >= j:
            return []
        clipped = gaps[i:j]
        first_lo, first_hi = clipped[0]
        if first_lo < lo:
            clipped[0] = (lo, first_hi)
        last_lo, last_hi = clipped[-1]
        if last_hi > hi:
            clipped[-1] = (last_lo, hi)
        return clipped

    # ------------------------------------------------------------------
    # stats / maintenance
    # ------------------------------------------------------------------

    @property
    def requests(self) -> int:
        """Total gap-list requests served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served without a recompute (0..1)."""
        total = self.requests
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (entries are kept)."""
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # pickling: snapshots carry generations, not cache entries
    # ------------------------------------------------------------------

    def __getstate__(self):
        return (self.layer, self.enabled)

    def __setstate__(self, state) -> None:
        self.layer, self.enabled = state
        self.hits = 0
        self.misses = 0
        self._entries = {}
