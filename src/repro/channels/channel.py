"""The production channel: disjoint used segments with fast interval probes.

The paper stores each channel as a doubly-linked segment list with a moving
head-of-list pointer, exploiting the locality of probes while routing one
connection.  In Python the equivalent engineering choice is a sorted array
probed with C-implemented ``bisect`` — same disjoint-segment model, same
O(overlap) enumeration, without interpreter-speed pointer chasing.  The
paper's two historical structures (moving-head list and binary tree) are
implemented verbatim in :mod:`repro.channels.alternatives` and compared in
``benchmarks/bench_channel_structure.py`` (experiment E7).

Invariants (checked by tests and hypothesis properties):

* segments are disjoint — every grid cell has at most one owner;
* segments are sorted by ``lo``;
* ``add`` never merges: each inserted piece stays an individual segment so
  that removal by exact bounds is always possible.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import FrozenSet, Iterator, List, Optional, Tuple

from repro.channels.segment import Segment

NO_PASSABLE: FrozenSet[int] = frozenset()


class ChannelConflictError(ValueError):
    """An added segment overlaps a segment with a different owner."""


class Channel:
    """Used segments along one grid line, sorted and disjoint."""

    __slots__ = (
        "_los",
        "_his",
        "_owners",
        "_owner_counts",
        "generation",
        "array_mirror",
    )

    def __init__(self) -> None:
        self._los: List[int] = []
        self._his: List[int] = []
        self._owners: List[int] = []
        #: Generation-stamped ``(generation, lo array, hi array)`` mirror
        #: of the segment bounds, built lazily by the fastpath free-gap
        #: kernel (:func:`repro.core.fastpath.free_gaps_vectorized`) and
        #: discarded whenever the generation moves on.  Never pickled:
        #: snapshots rebuild it on first vectorized probe.
        self.array_mirror: Optional[tuple] = None
        #: owner -> live segment count, maintained by add/remove so
        #: owner-presence probes (the gap cache's base/passable routing
        #: decision) cost O(1) per owner instead of a segment scan.
        self._owner_counts: dict = {}
        #: Monotonic mutation counter: bumped by every :meth:`add` that
        #: inserts at least one piece and every successful :meth:`remove`.
        #: :class:`repro.channels.gap_cache.GapCache` stamps its memoized
        #: gap lists with this value, so a stale read is impossible as
        #: long as all mutations go through add/remove (they do: every
        #: workspace mutation funnels into these two methods).
        self.generation: int = 0

    def __len__(self) -> int:
        return len(self._los)

    def __iter__(self) -> Iterator[Segment]:
        for lo, hi, owner in zip(self._los, self._his, self._owners):
            yield Segment(lo, hi, owner)

    # ------------------------------------------------------------------
    # probes
    # ------------------------------------------------------------------

    def _first_overlap_index(self, lo: int) -> int:
        """Index of the first segment whose ``hi`` >= ``lo``.

        Because segments are disjoint and sorted, ``_his`` is sorted too,
        so a bisect on either array finds the scan start in O(log n).
        """
        return bisect_left(self._his, lo)

    def overlapping(self, lo: int, hi: int) -> Iterator[Segment]:
        """Segments sharing at least one cell with ``[lo, hi]``, in order."""
        i = self._first_overlap_index(lo)
        while i < len(self._los) and self._los[i] <= hi:
            yield Segment(self._los[i], self._his[i], self._owners[i])
            i += 1

    def owner_at(self, x: int) -> Optional[int]:
        """Owner of the segment covering cell ``x``, or None if free."""
        i = self._first_overlap_index(x)
        if i < len(self._los) and self._los[i] <= x:
            return self._owners[i]
        return None

    def is_free(
        self, lo: int, hi: int, passable: FrozenSet[int] = NO_PASSABLE
    ) -> bool:
        """True if no cell in ``[lo, hi]`` is used by a non-passable owner."""
        for seg in self.overlapping(lo, hi):
            if seg.owner not in passable:
                return False
        return True

    def free_gaps(
        self, lo: int, hi: int, passable: FrozenSet[int] = NO_PASSABLE
    ) -> List[Tuple[int, int]]:
        """Maximal sub-intervals of ``[lo, hi]`` free of non-passable owners.

        Passable segments count as free space, so gaps merge across them —
        this is how a connection walks over its own vias and traces.
        Works on the parallel arrays directly: this is the hottest probe
        in the router (every free-gap cache refill lands here), and the
        per-segment ``Segment`` construction of :meth:`overlapping` was
        measurable against it.
        """
        if hi < lo:
            return []
        los, his, owners = self._los, self._his, self._owners
        n = len(los)
        gaps: List[Tuple[int, int]] = []
        cursor = lo
        i = bisect_left(his, lo)
        while i < n and los[i] <= hi:
            if not passable or owners[i] not in passable:
                if los[i] > cursor:
                    gaps.append((cursor, los[i] - 1))
                # Disjoint + sorted means his[i] + 1 only ever grows.
                cursor = his[i] + 1
                if cursor > hi:
                    break
            i += 1
        if cursor <= hi:
            gaps.append((cursor, hi))
        return gaps

    def gap_at(
        self, x: int, passable: FrozenSet[int] = NO_PASSABLE
    ) -> Optional[Tuple[int, int]]:
        """Maximal free-or-passable interval containing ``x``, unclipped.

        Returns None if ``x`` is covered by a non-passable segment.  The
        interval may extend to +/- infinity; callers clip to their box, so
        the open ends are returned as None markers replaced by the caller.
        This implementation walks outward from ``x`` over the segment list.
        """
        i = self._first_overlap_index(x)
        if i < len(self._los) and self._los[i] <= x:
            if self._owners[i] not in passable:
                return None
        # Walk left from the segment before x for the nearest non-passable
        # boundary; passable segments merge into the gap.
        left = None
        k = i - 1
        while k >= 0:
            if self._owners[k] not in passable:
                left = self._his[k] + 1
                break
            k -= 1
        # Walk right.
        right = None
        k = i
        if k < len(self._los) and self._los[k] <= x:
            k += 1  # skip passable segment covering x
        while k < len(self._los):
            if self._owners[k] not in passable:
                right = self._los[k] - 1
                break
            k += 1
        lo = left if left is not None else -(1 << 60)
        hi = right if right is not None else (1 << 60)
        return (lo, hi)

    def segment_bounds(self) -> Tuple[List[int], List[int]]:
        """The raw sorted (lo, hi) bound lists — read-only kernel views.

        Callers must not mutate the returned lists; they are the live
        arrays behind every probe above.
        """
        return self._los, self._his

    def owner_set(self) -> FrozenSet[int]:
        """All owners with at least one segment in this channel."""
        return frozenset(self._owner_counts)

    def has_any_owner(self, owners: FrozenSet[int]) -> bool:
        """True if any of ``owners`` has at least one segment here."""
        counts = self._owner_counts
        for owner in owners:
            if owner in counts:
                return True
        return False

    def owners_in(
        self, lo: int, hi: int, passable: FrozenSet[int] = NO_PASSABLE
    ) -> set:
        """Owners of non-passable segments overlapping ``[lo, hi]``."""
        return {
            seg.owner
            for seg in self.overlapping(lo, hi)
            if seg.owner not in passable
        }

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------

    def add(
        self,
        lo: int,
        hi: int,
        owner: int,
        passable: FrozenSet[int] = NO_PASSABLE,
    ) -> List[Tuple[int, int]]:
        """Insert ``[lo, hi]`` for ``owner``; returns the pieces inserted.

        Cells already owned by ``owner`` or by a *passable* owner are
        skipped rather than conflicting: a connection may cross its own
        earlier pieces, and its traces start and end on cells occupied by
        its endpoint pins' vias.  The return value is the list of actually
        inserted sub-intervals — exactly what must later be removed.
        Overlap with any other owner raises :class:`ChannelConflictError`.
        """
        if hi < lo:
            raise ValueError(f"empty interval [{lo}, {hi}]")
        blockers = []
        for seg in self.overlapping(lo, hi):
            if seg.owner != owner and seg.owner not in passable:
                raise ChannelConflictError(
                    f"[{lo},{hi}] owner {owner} overlaps {seg}"
                )
            blockers.append(seg)
        pieces: List[Tuple[int, int]] = []
        cursor = lo
        for seg in blockers:
            if seg.lo > cursor:
                pieces.append((cursor, min(seg.lo - 1, hi)))
            cursor = max(cursor, seg.hi + 1)
        if cursor <= hi:
            pieces.append((cursor, hi))
        for plo, phi in pieces:
            i = bisect_right(self._los, plo)
            self._los.insert(i, plo)
            self._his.insert(i, phi)
            self._owners.insert(i, owner)
        if pieces:
            counts = self._owner_counts
            counts[owner] = counts.get(owner, 0) + len(pieces)
            self.generation += 1
        return pieces

    def remove(self, lo: int, hi: int, owner: int) -> None:
        """Remove the segment with exactly these bounds and owner.

        Disjointness makes ``lo`` values unique, but the lookup scans
        forward past any equal-``lo`` candidates defensively (a broken
        invariant should surface as a diagnosable KeyError below, not as
        a silently wrong deletion).  On failure the KeyError names the
        nearest actual segment, so auditor-reported removal failures say
        what *is* there instead of a bare bounds mismatch.
        """
        i = bisect_left(self._los, lo)
        j = i
        while j < len(self._los) and self._los[j] == lo:
            if self._his[j] == hi and self._owners[j] == owner:
                del self._los[j]
                del self._his[j]
                del self._owners[j]
                counts = self._owner_counts
                remaining = counts[owner] - 1
                if remaining:
                    counts[owner] = remaining
                else:
                    del counts[owner]
                self.generation += 1
                return
            j += 1
        raise KeyError(
            f"no segment [{lo},{hi}] owned by {owner}; "
            f"nearest is {self._nearest_description(lo)}"
        )

    def _nearest_description(self, lo: int) -> str:
        """Human-readable nearest segment to ``lo`` (for remove errors)."""
        if not self._los:
            return "nothing (channel is empty)"
        i = bisect_left(self._los, lo)
        candidates = [k for k in (i - 1, i) if 0 <= k < len(self._los)]
        k = min(candidates, key=lambda k: abs(self._los[k] - lo))
        return (
            f"[{self._los[k]},{self._his[k]}] owned by {self._owners[k]}"
        )

    # ------------------------------------------------------------------
    # pickling: snapshots carry segments, not the numpy mirror
    # ------------------------------------------------------------------

    def __getstate__(self):
        return (
            self._los,
            self._his,
            self._owners,
            self._owner_counts,
            self.generation,
        )

    def __setstate__(self, state) -> None:
        (
            self._los,
            self._his,
            self._owners,
            self._owner_counts,
            self.generation,
        ) = state
        self.array_mirror = None

    def check_invariants(self) -> None:
        """Assert sortedness and disjointness (used by property tests)."""
        for i in range(len(self._los)):
            if self._his[i] < self._los[i]:
                raise AssertionError(f"segment {i} inverted")
            if i and self._los[i] <= self._his[i - 1]:
                raise AssertionError(f"segments {i - 1},{i} overlap or unsorted")
