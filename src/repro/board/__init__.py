"""Printed-circuit-board substrate: technology rules, parts, nets, layers.

Models Section 2 of the paper: a board is a stack of layer pairs, parts have
through-hole pins on the via grid, nets divide into power nets (routed as
solid planes) and signal nets (routed as traces and vias by the router).
"""

from repro.board.board import Board
from repro.board.layers import Layer, LayerKind, LayerStack
from repro.board.nets import Connection, Net, NetKind
from repro.board.parts import Package, Part, Pin, PinRole, dip_package, sip_package
from repro.board.technology import LogicFamily, TechRules

__all__ = [
    "Board",
    "Connection",
    "Layer",
    "LayerKind",
    "LayerStack",
    "LogicFamily",
    "Net",
    "NetKind",
    "Package",
    "Part",
    "Pin",
    "PinRole",
    "TechRules",
    "dip_package",
    "sip_package",
]
