"""Layer stack: signal layers with orientation, power layers as planes.

Section 2: boards are stacks of layer pairs; in multi-layer boards often
half the copper layers are power planes.  Section 4: every signal layer has
a preferred orientation, and a board needs at least one horizontal and one
vertical layer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.grid.geometry import Orientation


class LayerKind(enum.Enum):
    """Signal layers carry traces; power layers are solid planes."""

    SIGNAL = "signal"
    POWER = "power"


@dataclass(frozen=True)
class Layer:
    """One manufactured copper layer."""

    index: int
    kind: LayerKind
    name: str = ""
    #: Preferred trace direction; only meaningful for signal layers.
    orientation: Optional[Orientation] = None
    #: Net id the plane belongs to; only meaningful for power layers.
    power_net_id: Optional[int] = None
    #: Outer layers propagate signals ~10% faster (Section 10.1).
    is_outer: bool = False

    def __post_init__(self) -> None:
        if self.kind is LayerKind.SIGNAL and self.orientation is None:
            raise ValueError("signal layers need an orientation")
        if self.kind is LayerKind.POWER and self.orientation is not None:
            raise ValueError("power layers have no routing orientation")


@dataclass
class LayerStack:
    """An ordered stack of layers, outermost first."""

    layers: List[Layer] = field(default_factory=list)

    @classmethod
    def signal_stack(cls, n_signal: int, n_power: int = 0) -> "LayerStack":
        """Build a conventional stack of alternating-orientation signal layers.

        The two outermost signal layers are flagged ``is_outer`` (they carry
        faster signals, Section 10.1).  Power planes, if any, are interleaved
        in the middle of the stack; their patterns are generated after
        routing (Appendix) and they do not participate in routing.
        """
        if n_signal < 1:
            raise ValueError("need at least one signal layer")
        layers: List[Layer] = []
        index = 0
        orientations = [Orientation.HORIZONTAL, Orientation.VERTICAL]
        for i in range(n_signal):
            layers.append(
                Layer(
                    index=index,
                    kind=LayerKind.SIGNAL,
                    name=f"sig{i}",
                    orientation=orientations[i % 2],
                    is_outer=(i == 0 or i == n_signal - 1),
                )
            )
            index += 1
        for i in range(n_power):
            layers.append(
                Layer(index=index, kind=LayerKind.POWER, name=f"pwr{i}")
            )
            index += 1
        return cls(layers)

    @property
    def signal_layers(self) -> List[Layer]:
        """Signal layers in stack order."""
        return [layer for layer in self.layers if layer.kind is LayerKind.SIGNAL]

    @property
    def power_layers(self) -> List[Layer]:
        """Power layers in stack order."""
        return [layer for layer in self.layers if layer.kind is LayerKind.POWER]

    @property
    def n_signal(self) -> int:
        """Number of routing layers."""
        return len(self.signal_layers)

    def __post_init__(self) -> None:
        signal = self.signal_layers
        if len(signal) >= 2:
            orientations = {layer.orientation for layer in signal}
            if len(orientations) < 2:
                raise ValueError(
                    "a multi-layer board needs both horizontal and vertical "
                    "signal layers (Section 4)"
                )

    def signal_by_orientation(self, orientation: Orientation) -> List[Layer]:
        """Signal layers with the given preferred orientation."""
        return [layer for layer in self.signal_layers if layer.orientation is orientation]
