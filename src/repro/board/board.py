"""The Board: grid + layer stack + placed parts + nets.

This is the problem description handed to the stringer and router.  It owns
id allocation for parts, pins and nets, and validates placement (pins on the
board, no two pins on one via site).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.board.layers import LayerStack
from repro.board.nets import Net, NetKind
from repro.board.parts import Package, Part, Pin, PinRole
from repro.board.technology import LogicFamily, TechRules
from repro.grid.coords import ViaPoint
from repro.grid.routing_grid import RoutingGrid


class PlacementError(ValueError):
    """A part or pin cannot be placed where requested."""


@dataclass
class Board:
    """A complete routing problem: geometry, parts, and nets."""

    grid: RoutingGrid
    stack: LayerStack
    rules: TechRules = field(default_factory=TechRules)
    name: str = "board"
    parts: List[Part] = field(default_factory=list)
    pins: List[Pin] = field(default_factory=list)
    nets: List[Net] = field(default_factory=list)
    _occupied: Dict[ViaPoint, int] = field(default_factory=dict, repr=False)

    @classmethod
    def create(
        cls,
        via_nx: int,
        via_ny: int,
        n_signal_layers: int,
        n_power_layers: int = 0,
        rules: Optional[TechRules] = None,
        name: str = "board",
    ) -> "Board":
        """Convenience constructor from board extent and layer counts."""
        rules = rules or TechRules()
        grid = RoutingGrid(
            via_nx=via_nx,
            via_ny=via_ny,
            grid_per_via=rules.grid_per_via,
            via_pitch_mils=rules.via_pitch,
        )
        stack = LayerStack.signal_stack(n_signal_layers, n_power_layers)
        return cls(grid=grid, stack=stack, rules=rules, name=name)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def add_part(
        self,
        package: Package,
        origin: ViaPoint,
        name: str = "",
        roles: Optional[Sequence[PinRole]] = None,
    ) -> Part:
        """Place a package instance; allocates the part and its pins.

        ``roles`` optionally assigns a role per pin (default UNUSED until a
        net claims the pin).
        """
        part = Part(
            part_id=len(self.parts),
            package=package,
            origin=origin,
            name=name or f"{package.name}_{len(self.parts)}",
        )
        positions = part.pin_positions()
        for pos in positions:
            if not self.grid.contains_via(pos):
                raise PlacementError(
                    f"pin of {part.name} at {pos} is off the board"
                )
            if pos in self._occupied:
                raise PlacementError(
                    f"via site {pos} already occupied by pin "
                    f"{self._occupied[pos]}"
                )
        if roles is not None and len(roles) != len(positions):
            raise PlacementError("one role per pin required")
        for i, pos in enumerate(positions):
            pin = Pin(
                pin_id=len(self.pins),
                part_id=part.part_id,
                position=pos,
                role=roles[i] if roles is not None else PinRole.UNUSED,
            )
            self.pins.append(pin)
            part.pins.append(pin)
            self._occupied[pos] = pin.pin_id
        self.parts.append(part)
        return part

    def move_part(
        self, part_id: int, origin: ViaPoint
    ) -> List[tuple]:
        """Relocate a placed part; returns ``(pin, old_position)`` pairs.

        Placement rules are re-validated against the *vacated* board
        (the part's own current sites do not block the move), and the
        board is untouched if any destination site is off-board or
        occupied by another part.  Routing state is not touched here;
        the ECO layer (:mod:`repro.eco`) is responsible for undrilling
        the old pin sites and drilling the new ones.
        """
        if not 0 <= part_id < len(self.parts):
            raise ValueError(f"unknown part id {part_id}")
        part = self.parts[part_id]
        own_pins = {pin.pin_id for pin in part.pins}
        new_positions = [
            ViaPoint(origin.vx + dx, origin.vy + dy)
            for dx, dy in part.package.pin_offsets
        ]
        for pos in new_positions:
            if not self.grid.contains_via(pos):
                raise PlacementError(
                    f"pin of {part.name} at {pos} is off the board"
                )
            occupant = self._occupied.get(pos)
            if occupant is not None and occupant not in own_pins:
                raise PlacementError(
                    f"via site {pos} already occupied by pin {occupant}"
                )
        moves = []
        for pin in part.pins:
            del self._occupied[pin.position]
        for pin, pos in zip(part.pins, new_positions):
            moves.append((pin, pin.position))
            pin.position = pos
            self._occupied[pos] = pin.pin_id
        part.origin = origin
        return moves

    def relocate_pin(self, pin_id: int, position: ViaPoint) -> None:
        """Move one pin's site bookkeeping (delta replay on replicas).

        Replays the board-side half of an ECO part move on a workspace
        replica (worker pool copies) so the invariant auditor's
        pin-vs-via reconciliation stays coherent.  No validation: the
        master already validated the move in :meth:`move_part`.
        """
        pin = self.pins[pin_id]
        if self._occupied.get(pin.position) == pin_id:
            del self._occupied[pin.position]
        pin.position = position
        self._occupied[position] = pin_id

    def part_can_fit(self, package: Package, origin: ViaPoint) -> bool:
        """True if every pin site is on-board and unoccupied."""
        for dx, dy in package.pin_offsets:
            pos = ViaPoint(origin.vx + dx, origin.vy + dy)
            if not self.grid.contains_via(pos) or pos in self._occupied:
                return False
        return True

    def pin_at(self, position: ViaPoint) -> Optional[Pin]:
        """The pin occupying a via site, if any."""
        pin_id = self._occupied.get(position)
        if pin_id is None:
            return None
        return self.pins[pin_id]

    # ------------------------------------------------------------------
    # nets
    # ------------------------------------------------------------------

    def add_net(
        self,
        pin_ids: Sequence[int],
        name: str = "",
        kind: NetKind = NetKind.SIGNAL,
        family: LogicFamily = LogicFamily.ECL,
    ) -> Net:
        """Create a net over existing pins; marks the pins as members."""
        for pin_id in pin_ids:
            if not 0 <= pin_id < len(self.pins):
                raise ValueError(f"unknown pin id {pin_id}")
            if self.pins[pin_id].net_id != -1:
                raise ValueError(
                    f"pin {pin_id} already belongs to net "
                    f"{self.pins[pin_id].net_id}"
                )
        net = Net(
            net_id=len(self.nets),
            name=name or f"net{len(self.nets)}",
            kind=kind,
            family=family,
            pin_ids=list(pin_ids),
        )
        for pin_id in pin_ids:
            self.pins[pin_id].net_id = net.net_id
        self.nets.append(net)
        return net

    @property
    def signal_nets(self) -> List[Net]:
        """Nets the router must connect."""
        return [n for n in self.nets if n.kind is NetKind.SIGNAL]

    @property
    def power_nets(self) -> List[Net]:
        """Nets realised as power planes."""
        return [n for n in self.nets if n.kind is NetKind.POWER]

    def free_terminator_pins(self) -> List[Pin]:
        """Terminating-resistor pins not yet claimed by any net."""
        return [
            p
            for p in self.pins
            if p.role is PinRole.TERMINATOR and p.net_id == -1
        ]

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    @property
    def pin_density_per_sq_inch(self) -> float:
        """Average pin density (the pins/in² column of Table 1)."""
        area = self.grid.area_sq_inches
        if area == 0:
            return 0.0
        return len(self.pins) / area
