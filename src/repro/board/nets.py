"""Nets and pin-to-pin connections.

Section 2: nets split into *power nets* (routed as solid planes, not by the
router) and *signal nets* (routed as traces and vias).  Section 3: before
routing, the stringer reduces each signal net to a chain of independent
pin-to-pin :class:`Connection` objects, which is all the router ever sees.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.board.technology import LogicFamily
from repro.grid.coords import ViaPoint, manhattan


class NetKind(enum.Enum):
    """Power nets get planes; signal nets get traces (Section 2)."""

    SIGNAL = "signal"
    POWER = "power"


@dataclass
class Net:
    """A collection of pins that must be electrically interconnected."""

    net_id: int
    name: str = ""
    kind: NetKind = NetKind.SIGNAL
    family: LogicFamily = LogicFamily.ECL
    pin_ids: List[int] = field(default_factory=list)


@dataclass
class Connection:
    """One pin-to-pin connection produced by the stringer (Section 3).

    Connections "can be considered independently and in any order"; the
    router never needs the net topology back.  Positions are in via-grid
    coordinates because both endpoints are pins, and pins lie on the via
    grid (Section 11).
    """

    conn_id: int
    net_id: int
    pin_a: int
    pin_b: int
    a: ViaPoint
    b: ViaPoint
    family: LogicFamily = LogicFamily.ECL
    #: Target propagation delay in nanoseconds for length tuning
    #: (Section 10.1); ``None`` means untuned.
    target_delay_ns: Optional[float] = None

    @property
    def dx(self) -> int:
        """Horizontal separation in via units."""
        return abs(self.a.vx - self.b.vx)

    @property
    def dy(self) -> int:
        """Vertical separation in via units."""
        return abs(self.a.vy - self.b.vy)

    @property
    def manhattan_length(self) -> int:
        """Minimal path length in via units."""
        return manhattan(self.a, self.b)

    def sort_key(self) -> tuple:
        """The paper's two sort keys (Section 6): straightness then length.

        ``min(dx, dy)`` approximates the number of minimal Manhattan paths —
        straight connections have exactly one — and ``max(dx, dy)`` breaks
        ties by length, so the shortest straight connections come first and
        the longest diagonal ones last.
        """
        small, large = sorted((self.dx, self.dy))
        return (small, large, self.conn_id)
