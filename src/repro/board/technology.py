"""Manufacturing rules and logic families.

Figure 1 of the paper gives the reference process: 8-mil traces, 8-mil
spacing, 60-mil via pads for a 37-mil drilled via, 100-mil via pitch.  The
rules here feed the grid model and the power-plane generator; the router
itself only sees the grid they imply.

Logic families matter to routing in two ways (Sections 3 and 10):

* **ECL** nets are transmission lines — pins must be chained output-first
  with a terminating resistor at the far end, and trace length controls
  delay (length tuning);
* **TTL** nets may be connected in any order, but TTL traces must be kept
  away from ECL traces (tesselation separation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LogicFamily(enum.Enum):
    """Signal family of a net; drives stringing and tesselation rules."""

    ECL = "ecl"
    TTL = "ttl"

    @property
    def needs_termination(self) -> bool:
        """ECL chains end in a terminating resistor (Section 3)."""
        return self is LogicFamily.ECL

    @property
    def order_matters(self) -> bool:
        """ECL pins must be chained with all outputs before inputs."""
        return self is LogicFamily.ECL


@dataclass(frozen=True)
class TechRules:
    """Physical process rules (mils), defaulting to the paper's Figure 1."""

    trace_width: float = 8.0
    trace_spacing: float = 8.0
    via_pad_diameter: float = 60.0
    via_drill_diameter: float = 37.0
    via_pitch: float = 100.0
    #: Clearance-disk diameter etched around a non-connected via on a power
    #: layer (Appendix); pad diameter plus spacing on both sides.
    power_clearance_diameter: float = 76.0
    #: Signal propagation speed on inner layers, inches per nanosecond
    #: (Section 10.1: "around six inches per nanosecond").
    inner_speed_in_per_ns: float = 6.0
    #: Outer layers are about 10% faster (Section 10.1).
    outer_speed_factor: float = 1.10

    def __post_init__(self) -> None:
        if self.trace_width <= 0 or self.trace_spacing <= 0:
            raise ValueError("trace width/spacing must be positive")
        if self.via_pad_diameter < self.via_drill_diameter:
            raise ValueError("via pad must be at least as large as the drill")
        if self.via_pitch <= self.via_pad_diameter:
            raise ValueError("via pitch must exceed the via pad diameter")

    @property
    def tracks_between_vias(self) -> int:
        """How many minimum-pitch traces fit between adjacent via pads.

        With the Figure 1 numbers: pitch 100, pad 60 leaves 40 mils; each
        track needs width + spacing = 16 mils with 8-mil clearance to each
        pad, giving 2 tracks — hence the paper's 3-steps-per-via grid.
        """
        gap = self.via_pitch - self.via_pad_diameter
        track = self.trace_width + self.trace_spacing
        count = int((gap - self.trace_spacing) // track)
        return max(count, 0)

    @property
    def grid_per_via(self) -> int:
        """Routing-grid steps per via pitch implied by the rules."""
        return self.tracks_between_vias + 1

    def layer_speed(self, is_outer: bool) -> float:
        """Signal speed (in/ns) on an outer or inner layer (Section 10.1)."""
        if is_outer:
            return self.inner_speed_in_per_ns * self.outer_speed_factor
        return self.inner_speed_in_per_ns
